//! TCP gateway: newline-delimited JSON framing for remote game clients.
//!
//! Demonstrates the middleware across a real socket: remote clients speak
//! [`ClientToGame`]/[`GameToClient`] as one JSON object per line; the
//! gateway bridges each connection onto the in-process cluster, keeping
//! the client's current server in sync with `SwitchServer` instructions it
//! relays (so the remote client stays oblivious to topology, §3.2.1).
//!
//! `UpdateBatch` frames arrive delta-compressed (absolute `[x,y,bytes]`
//! keyframes interleaved with `["d",dx,dy,bytes]` offsets — see
//! `matrix_core::codec`); the gateway relays them verbatim, and remote
//! clients rebuild absolute origins with
//! `matrix_core::reconstruct_updates`, resetting their stream base on
//! every (re)join exactly as [`TcpGameClient`]'s in-process counterpart
//! (`RtClient`) does.

use crate::node::{NodeHandle, NodeMsg};
use crate::router::Router;
use matrix_core::codec::{self, CodecError, StatsFormat};
use matrix_core::{render_prometheus, ClientToGame, GameToClient, TelemetrySnapshot};
use matrix_geometry::ServerId;
use tokio::io::{AsyncBufReadExt, AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream, ToSocketAddrs};
use tokio::sync::mpsc;

/// Errors from the TCP layer.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame was not valid JSON for the expected message type.
    BadFrame(CodecError),
    /// The peer closed the connection.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadFrame(e) => write!(f, "malformed frame: {e}"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::BadFrame(e)
    }
}

/// Binds a TCP gateway in front of a running cluster. Returns the local
/// address; the accept loop runs until the listener task is dropped.
///
/// # Errors
///
/// Returns any bind error from the operating system.
pub async fn spawn_gateway(
    addr: impl ToSocketAddrs,
    router: Router,
    entry: ServerId,
) -> Result<std::net::SocketAddr, WireError> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                break;
            };
            tokio::spawn(serve_connection(stream, router.clone(), entry));
        }
    });
    Ok(local)
}

/// The gateway's per-connection view of the remote client's session:
/// the last position and state size it uploaded, carried into the
/// transparent re-join the gateway performs on `SwitchServer` — exactly
/// what the in-process `RtClient` does for itself. Re-joining with the
/// *real* position keeps the restored session where the player actually
/// is (a promoted standby already holds it there from the replica), so
/// no corrective move is needed after a failover.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RemoteSession {
    pos: matrix_geometry::Point,
    state_bytes: u64,
}

impl RemoteSession {
    fn new() -> RemoteSession {
        RemoteSession {
            pos: matrix_geometry::Point::ORIGIN,
            state_bytes: 0,
        }
    }

    /// Folds one upload into the tracked session.
    fn observe(&mut self, msg: &ClientToGame) {
        match msg {
            ClientToGame::Join { pos, state_bytes } => {
                self.pos = *pos;
                self.state_bytes = *state_bytes;
            }
            ClientToGame::Move { pos } | ClientToGame::Action { pos, .. } => self.pos = *pos,
            ClientToGame::Leave => {}
        }
    }

    /// The re-join the gateway sends on the client's behalf after a
    /// `SwitchServer`.
    fn rejoin(&self) -> ClientToGame {
        ClientToGame::Join {
            pos: self.pos,
            state_bytes: self.state_bytes,
        }
    }
}

async fn serve_connection(stream: TcpStream, router: Router, entry: ServerId) {
    let client_id = router.allocate_client_id();
    let (inbox_tx, mut inbox_rx) = mpsc::unbounded_channel::<GameToClient>();
    router.register_client(client_id, inbox_tx);

    let (read_half, mut write_half) = stream.into_split();
    let mut lines = BufReader::new(read_half).lines();
    // The gateway tracks which server currently owns this client so
    // uploads land at the right node, and the client's last position so
    // a transparent re-join lands where the player actually is.
    let mut current = entry;
    let mut session = RemoteSession::new();

    loop {
        tokio::select! {
            line = lines.next_line() => {
                match line {
                    Ok(Some(text)) => {
                        match codec::decode_client_to_game(&text) {
                            Ok(msg) => {
                                session.observe(&msg);
                                router.send_node(current, NodeMsg::FromClient(client_id, msg));
                            }
                            Err(_) => break, // corrupt frame: drop the session
                        }
                    }
                    _ => break,
                }
            }
            msg = inbox_rx.recv() => {
                let Some(msg) = msg else { break };
                if let GameToClient::SwitchServer { to } = &msg {
                    current = *to;
                    // Transparent re-join on the client's behalf, at the
                    // client's real position and state size; the remote
                    // end still sees the SwitchServer for observability.
                    router.send_node(
                        current,
                        NodeMsg::FromClient(client_id, session.rejoin()),
                    );
                }
                let mut framed = codec::encode_game_to_client(&msg);
                framed.push('\n');
                if write_half.write_all(framed.as_bytes()).await.is_err() {
                    break;
                }
            }
        }
    }
    router.unregister_client(client_id);
}

/// Binds the live stats endpoint in front of a set of node handles.
/// Returns the local address; the accept loop runs until the listener
/// task is dropped.
///
/// Protocol: one stats-query line per connection
/// (`matrix_core::codec::encode_stats_query`), answered with either a
/// single JSON stats-reply line ([`StatsFormat::Json`]) or
/// Prometheus-style text exposition ([`StatsFormat::Prom`]), then the
/// server closes the connection. Nodes with telemetry off contribute
/// nothing, so the reply is empty — not an error — on a dark cluster.
///
/// # Errors
///
/// Returns any bind error from the operating system.
pub async fn spawn_stats_endpoint(
    addr: impl ToSocketAddrs,
    nodes: Vec<NodeHandle>,
) -> Result<std::net::SocketAddr, WireError> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                break;
            };
            tokio::spawn(serve_stats(stream, nodes.clone()));
        }
    });
    Ok(local)
}

async fn serve_stats(stream: TcpStream, nodes: Vec<NodeHandle>) {
    let (read_half, mut write_half) = stream.into_split();
    let mut lines = BufReader::new(read_half).lines();
    let Ok(Some(line)) = lines.next_line().await else {
        return;
    };
    let Ok(fmt) = codec::decode_stats_query(&line) else {
        return; // malformed or wrong-version query: drop the session
    };
    let mut snaps: Vec<(ServerId, TelemetrySnapshot)> = Vec::new();
    for node in &nodes {
        if let Some(snap) = node.snapshot().await {
            if let Some(telemetry) = snap.telemetry {
                snaps.push((snap.id, telemetry));
            }
        }
    }
    let mut reply = match fmt {
        StatsFormat::Json => codec::encode_stats_reply(&snaps),
        StatsFormat::Prom => render_prometheus(&snaps),
    };
    if !reply.ends_with('\n') {
        reply.push('\n');
    }
    let _ = write_half.write_all(reply.as_bytes()).await;
    // Both halves drop here, closing the socket: the client reads to
    // EOF, which is what ends a multi-line Prometheus response.
}

/// A remote consumer of the live stats endpoint: one query per
/// connection, like `curl` against a metrics port.
pub struct TcpStatsClient;

impl TcpStatsClient {
    /// Fetches the cluster's per-node telemetry snapshots as structured
    /// data (the JSON stats reply, decoded).
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] if the endpoint hangs up without replying,
    /// socket errors, or [`WireError::BadFrame`] for a malformed reply.
    pub async fn fetch_json(
        addr: impl ToSocketAddrs,
    ) -> Result<Vec<(ServerId, TelemetrySnapshot)>, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, mut write_half) = stream.into_split();
        let mut framed = codec::encode_stats_query(StatsFormat::Json);
        framed.push('\n');
        write_half.write_all(framed.as_bytes()).await?;
        let mut lines = BufReader::new(read_half).lines();
        let line = lines.next_line().await?.ok_or(WireError::Closed)?;
        Ok(codec::decode_stats_reply(&line)?)
    }

    /// Fetches the Prometheus-style text exposition (reads to EOF).
    ///
    /// # Errors
    ///
    /// Socket errors from connecting, writing the query or reading the
    /// response.
    pub async fn fetch_text(addr: impl ToSocketAddrs) -> Result<String, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, mut write_half) = stream.into_split();
        let mut framed = codec::encode_stats_query(StatsFormat::Prom);
        framed.push('\n');
        write_half.write_all(framed.as_bytes()).await?;
        let mut lines = BufReader::new(read_half).lines();
        let mut out = String::new();
        while let Some(line) = lines.next_line().await? {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }
}

/// A replication stream over a real TCP socket: newline-delimited,
/// versioned JSON frames (`matrix_core::codec::encode_replica_batch` /
/// `encode_replica_ack`).
///
/// The in-process cluster ships replica batches over the router; this
/// endpoint carries the same batches between *machines* — a primary
/// connects to its standby's listener (or vice versa; the framing is
/// symmetric) and streams snapshots + ops one frame per line, reading
/// acks off the same socket. Version mismatches surface as
/// [`WireError::BadFrame`] before any state is adopted.
pub struct ReplicaStream {
    reader: tokio::io::Lines<BufReader<tokio::net::tcp::OwnedReadHalf>>,
    writer: tokio::net::tcp::OwnedWriteHalf,
}

impl ReplicaStream {
    /// Wraps an accepted or established socket.
    pub fn new(stream: TcpStream) -> ReplicaStream {
        let (read_half, write_half) = stream.into_split();
        ReplicaStream {
            reader: BufReader::new(read_half).lines(),
            writer: write_half,
        }
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Returns connection errors from the operating system.
    pub async fn connect(addr: impl ToSocketAddrs) -> Result<ReplicaStream, WireError> {
        Ok(ReplicaStream::new(TcpStream::connect(addr).await?))
    }

    async fn send_line(&mut self, mut line: String) -> Result<(), WireError> {
        line.push('\n');
        self.writer.write_all(line.as_bytes()).await?;
        Ok(())
    }

    async fn recv_line(&mut self) -> Result<String, WireError> {
        self.reader.next_line().await?.ok_or(WireError::Closed)
    }

    /// Ships one replication batch (snapshot or ops).
    ///
    /// # Errors
    ///
    /// Socket errors; encoding cannot fail.
    pub async fn send_batch(&mut self, batch: &matrix_core::ReplicaBatch) -> Result<(), WireError> {
        self.send_line(codec::encode_replica_batch(batch)).await
    }

    /// Receives the next replication batch.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] on hangup; [`WireError::BadFrame`] for
    /// malformed frames or an unsupported replication format version.
    pub async fn recv_batch(&mut self) -> Result<matrix_core::ReplicaBatch, WireError> {
        let line = self.recv_line().await?;
        Ok(codec::decode_replica_batch(&line)?)
    }

    /// Acknowledges a batch (`resync` requests a fresh full snapshot).
    ///
    /// # Errors
    ///
    /// Socket errors; encoding cannot fail.
    pub async fn send_ack(&mut self, seq: u64, resync: bool) -> Result<(), WireError> {
        self.send_line(codec::encode_replica_ack(seq, resync)).await
    }

    /// Receives the next acknowledgement as `(seq, resync)`.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] on hangup; [`WireError::BadFrame`] for
    /// malformed or version-mismatched frames.
    pub async fn recv_ack(&mut self) -> Result<(u64, bool), WireError> {
        let line = self.recv_line().await?;
        Ok(codec::decode_replica_ack(&line)?)
    }
}

/// A remote TCP game client speaking the JSON-lines protocol.
pub struct TcpGameClient {
    reader: tokio::io::Lines<BufReader<tokio::net::tcp::OwnedReadHalf>>,
    writer: tokio::net::tcp::OwnedWriteHalf,
}

impl TcpGameClient {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Returns connection errors from the operating system.
    pub async fn connect(addr: impl ToSocketAddrs) -> Result<TcpGameClient, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, write_half) = stream.into_split();
        Ok(TcpGameClient {
            reader: BufReader::new(read_half).lines(),
            writer: write_half,
        })
    }

    /// Sends one client message.
    ///
    /// # Errors
    ///
    /// Returns socket errors; serialisation of these types cannot fail.
    pub async fn send(&mut self, msg: &ClientToGame) -> Result<(), WireError> {
        let mut framed = codec::encode_client_to_game(msg);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes()).await?;
        Ok(())
    }

    /// Receives the next server message.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the server hangs up, or socket/frame
    /// errors.
    pub async fn recv(&mut self) -> Result<GameToClient, WireError> {
        let line = self.reader.next_line().await?.ok_or(WireError::Closed)?;
        Ok(codec::decode_game_to_client(&line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_geometry::Point;

    #[test]
    fn remote_session_tracks_the_last_uploaded_position() {
        let mut s = RemoteSession::new();
        assert_eq!(
            s.rejoin(),
            ClientToGame::Join {
                pos: Point::ORIGIN,
                state_bytes: 0
            }
        );
        s.observe(&ClientToGame::Join {
            pos: Point::new(100.0, 100.0),
            state_bytes: 512,
        });
        s.observe(&ClientToGame::Move {
            pos: Point::new(110.0, 105.0),
        });
        s.observe(&ClientToGame::Action {
            pos: Point::new(112.0, 105.0),
            payload_bytes: 64,
        });
        s.observe(&ClientToGame::Leave);
        assert_eq!(
            s.rejoin(),
            ClientToGame::Join {
                pos: Point::new(112.0, 105.0),
                state_bytes: 512,
            },
            "the transparent re-join carries the real position and state"
        );
    }
}
