//! TCP gateway: dual-codec framing for remote game clients.
//!
//! Demonstrates the middleware across a real socket: remote clients speak
//! [`ClientToGame`]/[`GameToClient`] either as wire protocol v2 —
//! length-prefixed binary frames (`matrix_core::codec_v2`,
//! `docs/WIRE.md`) — or as v1 newline-delimited JSON
//! (`matrix_core::codec`). The gateway bridges each connection onto the
//! in-process cluster, keeping the client's current server in sync with
//! `SwitchServer` instructions it relays (so the remote client stays
//! oblivious to topology, §3.2.1).
//!
//! # Version negotiation
//!
//! A byte stream is self-identifying: no JSON line starts with the
//! binary magic byte `0xD7`, and no binary frame starts with `{`. The
//! gateway sniffs the first byte of each connection and speaks whatever
//! the client opened with. A v2 client opens with a binary
//! [`Frame::Hello`] followed by a single newline pad byte: a v2 gateway
//! skips the pad (stream resync) and answers with its own `Hello`,
//! while a legacy v1 gateway reads one garbage "line", fails to parse
//! it and closes — which the client treats as "fall back to JSON and
//! reconnect" ([`TcpGameClient::connect`]).
//!
//! `UpdateBatch` frames arrive delta-compressed in both codecs (see
//! `matrix_core::codec` for the JSON item grammar and
//! `matrix_core::codec_v2` for the binary item layout); the gateway
//! relays them verbatim, and remote clients rebuild absolute origins
//! with `matrix_core::reconstruct_updates`, resetting their stream base
//! on every (re)join exactly as [`TcpGameClient`]'s in-process
//! counterpart (`RtClient`) does.

use crate::node::{NodeHandle, NodeMsg};
use crate::router::Router;
use matrix_core::codec::{self, CodecError, StatsFormat};
use matrix_core::codec_v2::{self, Frame, FrameAccumulator, FrameMeta};
use matrix_core::{render_prometheus, ClientToGame, GameToClient, TelemetrySnapshot, WireCodec};
use matrix_geometry::ServerId;
use tokio::io::{AsyncBufReadExt, AsyncChunkReadExt, AsyncWriteExt, BufReader, Chunks};
use tokio::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
use tokio::net::{TcpListener, TcpStream, ToSocketAddrs};
use tokio::sync::mpsc;

/// Errors from the TCP layer.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame was not valid (JSON or binary) for the expected message
    /// type.
    BadFrame(CodecError),
    /// The peer closed the connection.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadFrame(e) => write!(f, "malformed frame: {e}"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::BadFrame(e)
    }
}

fn bad_frame(reason: impl Into<String>) -> WireError {
    WireError::BadFrame(CodecError {
        reason: reason.into(),
    })
}

/// Outgoing binary-frame bookkeeping: the per-connection sequence
/// counter and millisecond clock stamped into every v2 frame header.
struct FrameClock {
    seq: u64,
    started: std::time::Instant,
    crc: bool,
}

impl FrameClock {
    fn new(crc: bool) -> FrameClock {
        FrameClock {
            seq: 0,
            started: std::time::Instant::now(),
            crc,
        }
    }

    fn meta(&mut self) -> FrameMeta {
        let meta = FrameMeta {
            seq: self.seq,
            stamp_ms: self.started.elapsed().as_millis() as u32,
        };
        self.seq += 1;
        meta
    }
}

/// Assembles newline-delimited lines from raw chunks — used on sniffed
/// connections, where a dedicated line reader cannot own the socket.
#[derive(Debug, Default)]
struct LineAssembler {
    buf: Vec<u8>,
}

impl LineAssembler {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn next_line(&mut self) -> Option<Result<String, CodecError>> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop();
        while line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8(line).map_err(|_| CodecError {
            reason: "line is not UTF-8".into(),
        }))
    }
}

/// Per-connection receive state: undecided until the first byte
/// arrives, then pinned to whichever codec the client opened with.
enum SessionCodec {
    Undecided,
    Json(LineAssembler),
    Binary(FrameAccumulator),
}

/// Gateway behaviour knobs (see [`spawn_gateway_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayOptions {
    /// Accept binary (v2) openers. Off simulates a legacy v1 gateway:
    /// binary openers are dropped, which is exactly what a JSON-only
    /// peer's parse-and-close does — used to exercise client fallback.
    pub accept_binary: bool,
    /// Append CRC32 trailers to outgoing binary frames.
    pub frame_crc: bool,
}

impl Default for GatewayOptions {
    fn default() -> Self {
        GatewayOptions {
            accept_binary: true,
            frame_crc: true,
        }
    }
}

impl GatewayOptions {
    /// Options matching a game-server config: the gateway accepts
    /// binary unless the node is pinned to the JSON codec, and mirrors
    /// its CRC policy.
    pub fn from_config(cfg: &matrix_core::GameServerConfig) -> GatewayOptions {
        GatewayOptions {
            accept_binary: cfg.codec == WireCodec::BinaryV2,
            frame_crc: cfg.frame_crc,
        }
    }
}

/// Binds a TCP gateway in front of a running cluster with default
/// options (binary accepted, CRC on). Returns the local address; the
/// accept loop runs until the listener task is dropped.
///
/// # Errors
///
/// Returns any bind error from the operating system.
pub async fn spawn_gateway(
    addr: impl ToSocketAddrs,
    router: Router,
    entry: ServerId,
) -> Result<std::net::SocketAddr, WireError> {
    spawn_gateway_with(addr, router, entry, GatewayOptions::default()).await
}

/// Binds a TCP gateway with explicit [`GatewayOptions`].
///
/// # Errors
///
/// Returns any bind error from the operating system.
pub async fn spawn_gateway_with(
    addr: impl ToSocketAddrs,
    router: Router,
    entry: ServerId,
    opts: GatewayOptions,
) -> Result<std::net::SocketAddr, WireError> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                break;
            };
            tokio::spawn(serve_connection(stream, router.clone(), entry, opts));
        }
    });
    Ok(local)
}

/// The gateway's per-connection view of the remote client's session:
/// the last position and state size it uploaded, carried into the
/// transparent re-join the gateway performs on `SwitchServer` — exactly
/// what the in-process `RtClient` does for itself. Re-joining with the
/// *real* position keeps the restored session where the player actually
/// is (a promoted standby already holds it there from the replica), so
/// no corrective move is needed after a failover.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RemoteSession {
    pos: matrix_geometry::Point,
    state_bytes: u64,
}

impl RemoteSession {
    fn new() -> RemoteSession {
        RemoteSession {
            pos: matrix_geometry::Point::ORIGIN,
            state_bytes: 0,
        }
    }

    /// Folds one upload into the tracked session.
    fn observe(&mut self, msg: &ClientToGame) {
        match msg {
            ClientToGame::Join { pos, state_bytes } => {
                self.pos = *pos;
                self.state_bytes = *state_bytes;
            }
            ClientToGame::Move { pos } | ClientToGame::Action { pos, .. } => self.pos = *pos,
            ClientToGame::TraceAck { .. } | ClientToGame::Leave => {}
        }
    }

    /// The re-join the gateway sends on the client's behalf after a
    /// `SwitchServer`.
    fn rejoin(&self) -> ClientToGame {
        ClientToGame::Join {
            pos: self.pos,
            state_bytes: self.state_bytes,
        }
    }
}

async fn serve_connection(
    stream: TcpStream,
    router: Router,
    entry: ServerId,
    opts: GatewayOptions,
) {
    let client_id = router.allocate_client_id();
    let (inbox_tx, mut inbox_rx) = mpsc::unbounded_channel::<GameToClient>();
    router.register_client(client_id, inbox_tx);

    let (read_half, mut write_half) = stream.into_split();
    let mut chunks = read_half.into_chunks();
    // The gateway tracks which server currently owns this client so
    // uploads land at the right node, and the client's last position so
    // a transparent re-join lands where the player actually is.
    let mut current = entry;
    let mut session = RemoteSession::new();
    let mut rx = SessionCodec::Undecided;
    let mut clock = FrameClock::new(opts.frame_crc);

    'conn: loop {
        tokio::select! {
            chunk = chunks.next_chunk() => {
                let Ok(Some(bytes)) = chunk else { break };
                if bytes.is_empty() {
                    continue;
                }
                if let SessionCodec::Undecided = rx {
                    rx = if bytes[0] == codec_v2::MAGIC[0] {
                        if !opts.accept_binary {
                            break; // legacy gateway: binary opener is garbage
                        }
                        SessionCodec::Binary(FrameAccumulator::new())
                    } else {
                        SessionCodec::Json(LineAssembler::default())
                    };
                }
                match &mut rx {
                    SessionCodec::Undecided => unreachable!("decided above"),
                    SessionCodec::Json(lines) => {
                        lines.push(&bytes);
                        while let Some(line) = lines.next_line() {
                            let msg = line
                                .ok()
                                .and_then(|l| codec::decode_client_to_game(&l).ok());
                            match msg {
                                Some(msg) => {
                                    session.observe(&msg);
                                    router.send_node(current, NodeMsg::FromClient(client_id, msg));
                                }
                                None => break 'conn, // corrupt frame: drop the session
                            }
                        }
                    }
                    SessionCodec::Binary(acc) => {
                        acc.push(&bytes);
                        while let Some(item) = acc.next() {
                            match item {
                                Ok((Frame::Hello { .. }, _)) => {
                                    // Advertise v2 back; the client is
                                    // waiting on this before it joins.
                                    let hello = Frame::Hello {
                                        version: codec_v2::WIRE_VERSION,
                                    };
                                    let bytes =
                                        codec_v2::encode_frame(&hello, clock.meta(), clock.crc);
                                    if write_half.write_all(&bytes).await.is_err() {
                                        break 'conn;
                                    }
                                }
                                Ok((Frame::Client(msg), _)) => {
                                    session.observe(&msg);
                                    router.send_node(current, NodeMsg::FromClient(client_id, msg));
                                }
                                // A client has no business sending
                                // server/replica/stats frames.
                                Ok(_) => break 'conn,
                                // Corrupt region: the accumulator already
                                // resynced at the next magic boundary (this
                                // also swallows the newline pad after the
                                // client's Hello).
                                Err(_) => continue,
                            }
                        }
                    }
                }
            }
            msg = inbox_rx.recv() => {
                let Some(msg) = msg else { break };
                if let GameToClient::SwitchServer { to } = &msg {
                    current = *to;
                    // Transparent re-join on the client's behalf, at the
                    // client's real position and state size; the remote
                    // end still sees the SwitchServer for observability.
                    router.send_node(
                        current,
                        NodeMsg::FromClient(client_id, session.rejoin()),
                    );
                }
                let framed = match &rx {
                    // Binary out only once the client opened with binary;
                    // before that (or on a JSON session) speak v1.
                    SessionCodec::Binary(_) => {
                        codec_v2::encode_server_frame(&msg, clock.meta(), clock.crc)
                    }
                    _ => {
                        let mut line = codec::encode_game_to_client(&msg);
                        line.push('\n');
                        line.into_bytes()
                    }
                };
                if write_half.write_all(&framed).await.is_err() {
                    break;
                }
            }
        }
    }
    router.unregister_client(client_id);
}

/// Binds the live stats endpoint in front of a set of node handles.
/// Returns the local address; the accept loop runs until the listener
/// task is dropped.
///
/// Protocol: one stats query per connection — either a JSON line
/// (`matrix_core::codec::encode_stats_query`) or a binary
/// `Frame::StatsQuery` (sniffed, like the gateway) — answered in the
/// same codec: a stats-reply line or frame for [`StatsFormat::Json`],
/// or Prometheus-style text exposition for [`StatsFormat::Prom`]
/// (always plain text, in both codecs), then the server closes the
/// connection. Nodes with telemetry off contribute nothing, so the
/// reply is empty — not an error — on a dark cluster.
///
/// When an `slo` probe is supplied, the coordinator's freshness-SLO
/// gauges (`slo_*`) are appended as pseudo-node `ServerId(0)` — the
/// coordinator is not a game server, but its tracker is cluster state
/// an operator scrapes from the same port. A dark tracker (no ring
/// targets configured) contributes nothing, keeping pre-SLO replies
/// byte-identical.
///
/// # Errors
///
/// Returns any bind error from the operating system.
pub async fn spawn_stats_endpoint(
    addr: impl ToSocketAddrs,
    nodes: Vec<NodeHandle>,
    slo: Option<crate::cluster::SloProbe>,
) -> Result<std::net::SocketAddr, WireError> {
    let listener = TcpListener::bind(addr).await?;
    let local = listener.local_addr()?;
    tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else {
                break;
            };
            tokio::spawn(serve_stats(stream, nodes.clone(), slo.clone()));
        }
    });
    Ok(local)
}

/// Reads one stats query off the socket, in whichever codec the peer
/// opened with. Returns the format and whether the query was binary.
async fn read_stats_query(chunks: &mut Chunks) -> Option<(StatsFormat, bool)> {
    let mut rx = SessionCodec::Undecided;
    loop {
        let bytes = chunks.next_chunk().await.ok()??;
        if bytes.is_empty() {
            continue;
        }
        if let SessionCodec::Undecided = rx {
            rx = if bytes[0] == codec_v2::MAGIC[0] {
                SessionCodec::Binary(FrameAccumulator::new())
            } else {
                SessionCodec::Json(LineAssembler::default())
            };
        }
        match &mut rx {
            SessionCodec::Undecided => unreachable!("decided above"),
            SessionCodec::Json(lines) => {
                if let Some(line) = lines.next_line_after(&bytes) {
                    let fmt = codec::decode_stats_query(&line.ok()?).ok()?;
                    return Some((fmt, false));
                }
            }
            SessionCodec::Binary(acc) => {
                acc.push(&bytes);
                while let Some(item) = acc.next() {
                    match item {
                        Ok((Frame::StatsQuery(fmt), _)) => return Some((fmt, true)),
                        Ok(_) => return None, // wrong frame type: drop
                        Err(_) => continue,   // resync and keep reading
                    }
                }
            }
        }
    }
}

impl LineAssembler {
    /// Pushes `bytes`, then pops the first completed line (the stats
    /// path only ever wants one).
    fn next_line_after(&mut self, bytes: &[u8]) -> Option<Result<String, CodecError>> {
        self.push(bytes);
        self.next_line()
    }
}

async fn serve_stats(
    stream: TcpStream,
    nodes: Vec<NodeHandle>,
    slo: Option<crate::cluster::SloProbe>,
) {
    let (read_half, mut write_half) = stream.into_split();
    let mut chunks = read_half.into_chunks();
    let Some((fmt, binary)) = read_stats_query(&mut chunks).await else {
        return; // malformed or wrong-version query: drop the session
    };
    let mut snaps: Vec<(ServerId, TelemetrySnapshot)> = Vec::new();
    if let Some(probe) = &slo {
        if let Some(snap) = probe.snapshot().await {
            if !snap.is_empty() {
                snaps.push((ServerId(0), snap));
            }
        }
    }
    for node in &nodes {
        if let Some(snap) = node.snapshot().await {
            if let Some(telemetry) = snap.telemetry {
                snaps.push((snap.id, telemetry));
            }
        }
    }
    let reply: Vec<u8> = match (fmt, binary) {
        (StatsFormat::Json, true) => {
            codec_v2::encode_frame(&Frame::StatsReply(snaps), FrameMeta::default(), true)
        }
        (StatsFormat::Json, false) => {
            let mut line = codec::encode_stats_reply(&snaps);
            line.push('\n');
            line.into_bytes()
        }
        (StatsFormat::Prom, _) => {
            let mut text = render_prometheus(&snaps);
            if !text.ends_with('\n') {
                text.push('\n');
            }
            text.into_bytes()
        }
    };
    let _ = write_half.write_all(&reply).await;
    // Both halves drop here, closing the socket: the client reads to
    // EOF, which is what ends a multi-line Prometheus response.
}

/// A remote consumer of the live stats endpoint: one query per
/// connection, like `curl` against a metrics port.
pub struct TcpStatsClient;

impl TcpStatsClient {
    /// Fetches the cluster's per-node telemetry snapshots as structured
    /// data over the v1 JSON codec (any language can speak it).
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] if the endpoint hangs up without replying,
    /// socket errors, or [`WireError::BadFrame`] for a malformed reply.
    pub async fn fetch_json(
        addr: impl ToSocketAddrs,
    ) -> Result<Vec<(ServerId, TelemetrySnapshot)>, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, mut write_half) = stream.into_split();
        let mut framed = codec::encode_stats_query(StatsFormat::Json);
        framed.push('\n');
        write_half.write_all(framed.as_bytes()).await?;
        let mut lines = BufReader::new(read_half).lines();
        let line = lines.next_line().await?.ok_or(WireError::Closed)?;
        Ok(codec::decode_stats_reply(&line)?)
    }

    /// Fetches the same structured snapshots over the v2 binary codec.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] if the endpoint hangs up without replying,
    /// socket errors, or [`WireError::BadFrame`] for a malformed or
    /// unexpected reply frame.
    pub async fn fetch_json_v2(
        addr: impl ToSocketAddrs,
    ) -> Result<Vec<(ServerId, TelemetrySnapshot)>, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, mut write_half) = stream.into_split();
        let query = codec_v2::encode_frame(
            &Frame::StatsQuery(StatsFormat::Json),
            FrameMeta::default(),
            true,
        );
        write_half.write_all(&query).await?;
        let mut chunks = read_half.into_chunks();
        let mut acc = FrameAccumulator::new();
        loop {
            if let Some(item) = acc.next() {
                match item {
                    Ok((Frame::StatsReply(nodes), _)) => return Ok(nodes),
                    Ok(_) => return Err(bad_frame("expected a stats-reply frame")),
                    Err(e) => return Err(WireError::BadFrame(e)),
                }
            }
            match chunks.next_chunk().await? {
                Some(bytes) => acc.push(&bytes),
                None => return Err(WireError::Closed),
            }
        }
    }

    /// Fetches the Prometheus-style text exposition (reads to EOF).
    ///
    /// # Errors
    ///
    /// Socket errors from connecting, writing the query or reading the
    /// response.
    pub async fn fetch_text(addr: impl ToSocketAddrs) -> Result<String, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, mut write_half) = stream.into_split();
        let mut framed = codec::encode_stats_query(StatsFormat::Prom);
        framed.push('\n');
        write_half.write_all(framed.as_bytes()).await?;
        let mut lines = BufReader::new(read_half).lines();
        let mut out = String::new();
        while let Some(line) = lines.next_line().await? {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }
}

/// Receive side of a dual-codec stream: a line reader for v1, a chunk
/// reader plus frame accumulator for v2.
enum StreamReader {
    Json(tokio::io::Lines<BufReader<OwnedReadHalf>>),
    Binary(Chunks, FrameAccumulator),
}

impl StreamReader {
    fn new(read_half: OwnedReadHalf, codec: WireCodec) -> StreamReader {
        match codec {
            WireCodec::Json => StreamReader::Json(BufReader::new(read_half).lines()),
            WireCodec::BinaryV2 => {
                StreamReader::Binary(read_half.into_chunks(), FrameAccumulator::new())
            }
        }
    }

    /// Next binary frame (only valid on a binary reader).
    async fn next_frame(&mut self) -> Result<Frame, WireError> {
        let StreamReader::Binary(chunks, acc) = self else {
            unreachable!("next_frame on a JSON reader");
        };
        loop {
            if let Some(item) = acc.next() {
                match item {
                    Ok((frame, _)) => return Ok(frame),
                    Err(e) => return Err(WireError::BadFrame(e)),
                }
            }
            match chunks.next_chunk().await? {
                Some(bytes) => acc.push(&bytes),
                None => return Err(WireError::Closed),
            }
        }
    }

    /// Next line (only valid on a JSON reader).
    async fn next_json_line(&mut self) -> Result<String, WireError> {
        let StreamReader::Json(lines) = self else {
            unreachable!("next_json_line on a binary reader");
        };
        lines.next_line().await?.ok_or(WireError::Closed)
    }
}

/// A replication stream over a real TCP socket, in either codec: v1
/// newline-delimited versioned JSON frames
/// (`matrix_core::codec::encode_replica_batch` / `encode_replica_ack`)
/// or v2 binary frames (`Frame::Replica` / `Frame::ReplicaAck`).
///
/// The in-process cluster ships replica batches over the router; this
/// endpoint carries the same batches between *machines* — a primary
/// connects to its standby's listener (or vice versa; the framing is
/// symmetric) and streams snapshots + ops, reading acks off the same
/// socket. Both ends are deployed from the same config, so the codec is
/// chosen explicitly rather than negotiated. Version mismatches surface
/// as [`WireError::BadFrame`] before any state is adopted.
pub struct ReplicaStream {
    reader: StreamReader,
    writer: OwnedWriteHalf,
    codec: WireCodec,
    clock: FrameClock,
}

impl ReplicaStream {
    /// Wraps an accepted or established socket speaking v1 JSON.
    pub fn new(stream: TcpStream) -> ReplicaStream {
        ReplicaStream::new_with(stream, WireCodec::Json, true)
    }

    /// Wraps a socket speaking the given codec (`frame_crc` applies to
    /// binary frames only).
    pub fn new_with(stream: TcpStream, codec: WireCodec, frame_crc: bool) -> ReplicaStream {
        let (read_half, write_half) = stream.into_split();
        ReplicaStream {
            reader: StreamReader::new(read_half, codec),
            writer: write_half,
            codec,
            clock: FrameClock::new(frame_crc),
        }
    }

    /// Connects to a listening peer, speaking v1 JSON.
    ///
    /// # Errors
    ///
    /// Returns connection errors from the operating system.
    pub async fn connect(addr: impl ToSocketAddrs) -> Result<ReplicaStream, WireError> {
        Ok(ReplicaStream::new(TcpStream::connect(addr).await?))
    }

    /// Connects to a listening peer, speaking the given codec.
    ///
    /// # Errors
    ///
    /// Returns connection errors from the operating system.
    pub async fn connect_with(
        addr: impl ToSocketAddrs,
        codec: WireCodec,
        frame_crc: bool,
    ) -> Result<ReplicaStream, WireError> {
        Ok(ReplicaStream::new_with(
            TcpStream::connect(addr).await?,
            codec,
            frame_crc,
        ))
    }

    /// The codec this stream speaks.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    async fn send_line(&mut self, mut line: String) -> Result<(), WireError> {
        line.push('\n');
        self.writer.write_all(line.as_bytes()).await?;
        Ok(())
    }

    /// Ships one replication batch (snapshot or ops).
    ///
    /// # Errors
    ///
    /// Socket errors; encoding cannot fail.
    pub async fn send_batch(&mut self, batch: &matrix_core::ReplicaBatch) -> Result<(), WireError> {
        match self.codec {
            WireCodec::Json => self.send_line(codec::encode_replica_batch(batch)).await,
            WireCodec::BinaryV2 => {
                let bytes =
                    codec_v2::encode_replica_batch_frame(batch, self.clock.meta(), self.clock.crc);
                self.writer.write_all(&bytes).await?;
                Ok(())
            }
        }
    }

    /// Receives the next replication batch.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] on hangup; [`WireError::BadFrame`] for
    /// malformed frames or an unsupported replication format version.
    pub async fn recv_batch(&mut self) -> Result<matrix_core::ReplicaBatch, WireError> {
        match self.codec {
            WireCodec::Json => {
                let line = self.reader.next_json_line().await?;
                Ok(codec::decode_replica_batch(&line)?)
            }
            WireCodec::BinaryV2 => match self.reader.next_frame().await? {
                Frame::Replica(batch) => Ok(*batch),
                _ => Err(bad_frame("expected a replica frame")),
            },
        }
    }

    /// Acknowledges a batch (`resync` requests a fresh full snapshot).
    ///
    /// # Errors
    ///
    /// Socket errors; encoding cannot fail.
    pub async fn send_ack(&mut self, seq: u64, resync: bool) -> Result<(), WireError> {
        match self.codec {
            WireCodec::Json => self.send_line(codec::encode_replica_ack(seq, resync)).await,
            WireCodec::BinaryV2 => {
                let frame = Frame::ReplicaAck { seq, resync };
                let bytes = codec_v2::encode_frame(&frame, self.clock.meta(), self.clock.crc);
                self.writer.write_all(&bytes).await?;
                Ok(())
            }
        }
    }

    /// Receives the next acknowledgement as `(seq, resync)`.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] on hangup; [`WireError::BadFrame`] for
    /// malformed or version-mismatched frames.
    pub async fn recv_ack(&mut self) -> Result<(u64, bool), WireError> {
        match self.codec {
            WireCodec::Json => {
                let line = self.reader.next_json_line().await?;
                Ok(codec::decode_replica_ack(&line)?)
            }
            WireCodec::BinaryV2 => match self.reader.next_frame().await? {
                Frame::ReplicaAck { seq, resync } => Ok((seq, resync)),
                _ => Err(bad_frame("expected a replica-ack frame")),
            },
        }
    }
}

/// A remote TCP game client speaking whichever protocol version the
/// gateway supports: it advertises v2 with a binary `Hello` and falls
/// back to v1 JSON when the peer hangs up instead of answering.
pub struct TcpGameClient {
    reader: StreamReader,
    writer: OwnedWriteHalf,
    codec: WireCodec,
    clock: FrameClock,
}

impl TcpGameClient {
    /// Connects to a gateway, negotiating the protocol version: opens
    /// with a binary `Hello` (plus a newline pad, so a v1 JSON gateway
    /// completes a line read, fails to parse and closes), and falls
    /// back to a fresh v1 JSON connection if the peer hangs up without
    /// answering.
    ///
    /// # Errors
    ///
    /// Returns connection errors from the operating system.
    pub async fn connect(addr: impl ToSocketAddrs + Clone) -> Result<TcpGameClient, WireError> {
        match TcpGameClient::connect_binary(addr.clone()).await {
            Ok(client) => Ok(client),
            // The peer hung up on (or garbled) our Hello: it speaks v1.
            Err(WireError::Closed | WireError::BadFrame(_) | WireError::Io(_)) => {
                TcpGameClient::connect_with(addr, WireCodec::Json).await
            }
        }
    }

    /// Connects speaking exactly the given codec — no negotiation, no
    /// fallback.
    ///
    /// # Errors
    ///
    /// Connection errors; for [`WireCodec::BinaryV2`] additionally
    /// [`WireError::Closed`] when the peer does not speak v2.
    pub async fn connect_with(
        addr: impl ToSocketAddrs,
        codec: WireCodec,
    ) -> Result<TcpGameClient, WireError> {
        match codec {
            WireCodec::BinaryV2 => TcpGameClient::connect_binary(addr).await,
            WireCodec::Json => {
                let stream = TcpStream::connect(addr).await?;
                let (read_half, writer) = stream.into_split();
                Ok(TcpGameClient {
                    reader: StreamReader::new(read_half, WireCodec::Json),
                    writer,
                    codec: WireCodec::Json,
                    clock: FrameClock::new(true),
                })
            }
        }
    }

    async fn connect_binary(addr: impl ToSocketAddrs) -> Result<TcpGameClient, WireError> {
        let stream = TcpStream::connect(addr).await?;
        let (read_half, mut writer) = stream.into_split();
        let mut clock = FrameClock::new(true);
        let mut hello = codec_v2::encode_frame(
            &Frame::Hello {
                version: codec_v2::WIRE_VERSION,
            },
            clock.meta(),
            clock.crc,
        );
        // Newline pad: lets a v1 line reader complete (and reject) a
        // read instead of blocking forever on a frame with no newline.
        hello.push(b'\n');
        writer.write_all(&hello).await?;
        let mut reader = StreamReader::new(read_half, WireCodec::BinaryV2);
        match reader.next_frame().await? {
            Frame::Hello { .. } => Ok(TcpGameClient {
                reader,
                writer,
                codec: WireCodec::BinaryV2,
                clock,
            }),
            _ => Err(bad_frame("expected a hello frame")),
        }
    }

    /// The protocol the negotiation settled on.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// Sends one client message.
    ///
    /// # Errors
    ///
    /// Returns socket errors; serialisation of these types cannot fail.
    pub async fn send(&mut self, msg: &ClientToGame) -> Result<(), WireError> {
        let framed = match self.codec {
            WireCodec::Json => {
                let mut line = codec::encode_client_to_game(msg);
                line.push('\n');
                line.into_bytes()
            }
            WireCodec::BinaryV2 => {
                codec_v2::encode_client_frame(msg, self.clock.meta(), self.clock.crc)
            }
        };
        self.writer.write_all(&framed).await?;
        Ok(())
    }

    /// Receives the next server message.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the server hangs up, or socket/frame
    /// errors.
    pub async fn recv(&mut self) -> Result<GameToClient, WireError> {
        match self.codec {
            WireCodec::Json => {
                let line = self.reader.next_json_line().await?;
                Ok(codec::decode_game_to_client(&line)?)
            }
            WireCodec::BinaryV2 => loop {
                match self.reader.next_frame().await? {
                    Frame::Server(msg) => return Ok(msg),
                    Frame::Hello { .. } => continue, // late re-advertisement
                    _ => return Err(bad_frame("unexpected frame from gateway")),
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_geometry::Point;

    #[test]
    fn remote_session_tracks_the_last_uploaded_position() {
        let mut s = RemoteSession::new();
        assert_eq!(
            s.rejoin(),
            ClientToGame::Join {
                pos: Point::ORIGIN,
                state_bytes: 0
            }
        );
        s.observe(&ClientToGame::Join {
            pos: Point::new(100.0, 100.0),
            state_bytes: 512,
        });
        s.observe(&ClientToGame::Move {
            pos: Point::new(110.0, 105.0),
        });
        s.observe(&ClientToGame::Action {
            pos: Point::new(112.0, 105.0),
            payload_bytes: 64,
        });
        s.observe(&ClientToGame::Leave);
        assert_eq!(
            s.rejoin(),
            ClientToGame::Join {
                pos: Point::new(112.0, 105.0),
                state_bytes: 512,
            },
            "the transparent re-join carries the real position and state"
        );
    }

    #[test]
    fn line_assembler_splits_on_newlines_across_chunks() {
        let mut lines = LineAssembler::default();
        lines.push(b"{\"t\":\"le");
        assert!(lines.next_line().is_none(), "no newline yet");
        lines.push(b"ave\"}\r\n{\"t\":");
        assert_eq!(lines.next_line().unwrap().unwrap(), "{\"t\":\"leave\"}");
        assert!(lines.next_line().is_none(), "second line incomplete");
        lines.push(b"\"leave\"}\n");
        assert_eq!(lines.next_line().unwrap().unwrap(), "{\"t\":\"leave\"}");
    }
}
