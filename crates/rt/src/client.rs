//! The in-process game client.
//!
//! Implements the client side of the paper's contract: clients talk only
//! to game servers, obey `SwitchServer` instructions by re-joining the
//! named server, and are otherwise oblivious to Matrix (§3.2.1).
//!
//! The client also mirrors the server's dissemination pipeline on the
//! receive side: `UpdateBatch` items arrive delta-compressed
//! ([`matrix_core::BatchItem`]), so the client threads a per-stream base
//! through [`matrix_core::reconstruct_updates`] and resets it whenever
//! the stream restarts (join, server switch) — exactly when the server's
//! encoder keyframes.
//!
//! Velocity-tagged items additionally feed a dead-reckoning
//! [`Extrapolator`]: between flushes the client can render every
//! visible entity at its *extrapolated* position
//! ([`RtClient::extrapolated`]) instead of its last reported one — the
//! receiver half of predictive dissemination, whose server half
//! suppresses updates while this extrapolation stays within the ring's
//! error budget.

use crate::node::NodeMsg;
use crate::router::Router;
use matrix_core::{reconstruct_updates, ClientId, ClientToGame, Extrapolator, GameToClient};
use matrix_geometry::{Point, ServerId};
use matrix_sim::SimTime;
use tokio::sync::mpsc;

/// Counters a client accumulates over its session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Action acknowledgements received.
    pub acks: u64,
    /// World updates received (batched updates count individually).
    pub updates: u64,
    /// `UpdateBatch` messages received.
    pub batches: u64,
    /// Absolute keyframe items among the batched updates.
    pub keyframes: u64,
    /// Delta-encoded items among the batched updates.
    pub deltas: u64,
    /// Items that arrived through an outer vision ring (ring > 0):
    /// sampled periphery the client should render at reduced fidelity.
    pub far_items: u64,
    /// Items that carried a dead-reckoning velocity — each one rebased
    /// this client's extrapolation for its entity.
    pub velocity_items: u64,
    /// Items that carried a causal trace tag — for each one the client
    /// measured delivery latency and staleness-at-apply and echoed a
    /// `TraceAck` upstream.
    pub traced_items: u64,
    /// Server switches performed.
    pub switches: u64,
}

/// An in-process client connection.
pub struct RtClient {
    id: ClientId,
    router: Router,
    rx: mpsc::UnboundedReceiver<GameToClient>,
    server: ServerId,
    pos: Point,
    state_bytes: u64,
    /// Delta-stream base: the last reconstructed update origin.
    delta_base: Option<Point>,
    /// Dead-reckoning state: the last received basis per visible
    /// entity, advanced on demand between flushes.
    extrap: Extrapolator,
    counters: ClientCounters,
}

impl RtClient {
    /// Connects (registers an inbox and sends the initial `Join`).
    pub(crate) fn connect(router: Router, server: ServerId, pos: Point) -> RtClient {
        let id = router.allocate_client_id();
        let (tx, rx) = mpsc::unbounded_channel();
        router.register_client(id, tx);
        let client = RtClient {
            id,
            router,
            rx,
            server,
            pos,
            state_bytes: 1_024,
            delta_base: None,
            extrap: Extrapolator::new(),
            counters: ClientCounters::default(),
        };
        client.send(ClientToGame::Join {
            pos,
            state_bytes: client.state_bytes,
        });
        client
    }

    /// This client's globally unique id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The server currently serving this client.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Current position.
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Session counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// The origin of the most recent reconstructed *batched* update,
    /// i.e. this client's delta-stream base. Singleton
    /// `GameToClient::Update` messages are outside the delta stream and
    /// do not move it.
    pub fn last_update_origin(&self) -> Option<Point> {
        self.delta_base
    }

    /// Where this client currently renders `entity`: its dead-reckoning
    /// extrapolation at `at`, or `None` before any velocity-tagged
    /// update arrived for it. Between flushes this is how a predicted
    /// entity keeps moving on screen while the server suppresses
    /// updates.
    pub fn extrapolated(&self, entity: u64, at: SimTime) -> Option<Point> {
        self.extrap.predict(entity, at.as_secs_f64())
    }

    /// Number of entities this client holds a dead-reckoning basis for.
    pub fn extrapolated_entities(&self) -> usize {
        self.extrap.tracked()
    }

    /// Culls dead-reckoning bases last rebased before `cutoff`,
    /// returning how many were dropped. Call periodically from the
    /// render loop: an entity silent that long has left the area of
    /// interest (or the game) and must stop being extrapolated — there
    /// is no explicit departure message for mere AOI exits.
    pub fn prune_extrapolations(&mut self, cutoff: SimTime) -> usize {
        self.extrap.prune_older_than(cutoff.as_secs_f64())
    }

    fn send(&self, msg: ClientToGame) {
        self.router
            .send_node(self.server, NodeMsg::FromClient(self.id, msg));
    }

    /// Moves to `pos` and tells the server.
    pub fn move_to(&mut self, pos: Point) {
        self.pos = pos;
        self.send(ClientToGame::Move { pos });
    }

    /// Performs an action at the current position.
    pub fn action(&mut self, payload_bytes: usize) {
        self.send(ClientToGame::Action {
            pos: self.pos,
            payload_bytes,
        });
    }

    /// Leaves the game and releases the inbox.
    pub fn leave(mut self) {
        self.send(ClientToGame::Leave);
        self.rx.close();
        self.router.unregister_client(self.id);
    }

    /// Digests one server message: updates counters, the delta-stream
    /// base and the current-server bookkeeping. Returns `false` for
    /// `SwitchServer`, which is handled transparently (re-join) and
    /// never surfaced to callers.
    fn digest(&mut self, msg: &GameToClient) -> bool {
        match msg {
            GameToClient::SwitchServer { to } => {
                self.counters.switches += 1;
                self.server = *to;
                // The new server's encoder starts our stream fresh, and
                // so does its prediction mirror.
                self.delta_base = None;
                self.extrap.reset();
                self.send(ClientToGame::Join {
                    pos: self.pos,
                    state_bytes: self.state_bytes,
                });
                false
            }
            GameToClient::Ack { .. } => {
                self.counters.acks += 1;
                true
            }
            GameToClient::Update { origin: _, .. } => {
                // Singleton updates are outside the batch pipeline: the
                // server's encoder does not advance its base for them,
                // so neither may the client, or the streams desync.
                self.counters.updates += 1;
                true
            }
            GameToClient::UpdateBatch { updates } => {
                self.counters.batches += 1;
                self.counters.updates += updates.len() as u64;
                for item in updates {
                    if item.is_keyframe() {
                        self.counters.keyframes += 1;
                    } else {
                        self.counters.deltas += 1;
                    }
                    if item.ring() > 0 {
                        self.counters.far_items += 1;
                    }
                }
                // Reconstruction threads the base forward; the server
                // keyframes after every resync, so a failure here means
                // a protocol bug — drop the base and recover on the next
                // keyframe rather than panicking a live client.
                match reconstruct_updates(&mut self.delta_base, updates) {
                    Some(items) => {
                        // EVERY attributed item rebases the extrapolator,
                        // exactly as the sender's mirror rebases on every
                        // transmission: a velocity-tagged item keeps the
                        // entity moving between flushes, and a
                        // velocity-free one pins it at the reported
                        // position (an entity that stopped must stop on
                        // screen too — its zero velocity is *information*,
                        // it just travels as the omitted default).
                        let at = self.router.now();
                        let now = at.as_secs_f64();
                        for u in items {
                            if u.has_velocity() {
                                self.counters.velocity_items += 1;
                            }
                            if u.entity != 0 {
                                self.extrap.update(u.entity, u.origin, (u.vx, u.vy), now);
                            }
                            // Close the causal trace: measure this item
                            // end-to-end on the receiver's clock and echo
                            // the numbers to the serving node, which folds
                            // them into its per-ring freshness histograms.
                            if let Some(tag) = u.trace {
                                self.counters.traced_items += 1;
                                self.send(ClientToGame::TraceAck {
                                    ring: u.ring,
                                    latency_us: tag.latency_us(at.as_micros()),
                                    staleness_us: tag.staleness_us(at.as_micros()),
                                });
                            }
                        }
                    }
                    None => self.delta_base = None,
                }
                true
            }
            GameToClient::Joined { server } => {
                self.server = *server;
                // A (re)join restarts the delta stream on the server —
                // and the prediction stream with it.
                self.delta_base = None;
                self.extrap.reset();
                true
            }
        }
    }

    /// Receives the next server message, transparently handling switches
    /// (re-joining the new server, as the paper's clients do).
    pub async fn recv(&mut self) -> Option<GameToClient> {
        loop {
            let msg = self.rx.recv().await?;
            if self.digest(&msg) {
                return Some(msg);
            }
        }
    }

    /// Drains any immediately available messages without waiting.
    pub fn drain(&mut self) -> Vec<GameToClient> {
        let mut out = Vec::new();
        while let Ok(msg) = self.rx.try_recv() {
            if self.digest(&msg) {
                out.push(msg);
            }
        }
        out
    }
}
