//! The in-process game client.
//!
//! Implements the client side of the paper's contract: clients talk only
//! to game servers, obey `SwitchServer` instructions by re-joining the
//! named server, and are otherwise oblivious to Matrix (§3.2.1).

use crate::node::NodeMsg;
use crate::router::Router;
use matrix_core::{ClientId, ClientToGame, GameToClient};
use matrix_geometry::{Point, ServerId};
use tokio::sync::mpsc;

/// Counters a client accumulates over its session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Action acknowledgements received.
    pub acks: u64,
    /// World updates received (batched updates count individually).
    pub updates: u64,
    /// `UpdateBatch` messages received.
    pub batches: u64,
    /// Server switches performed.
    pub switches: u64,
}

/// An in-process client connection.
pub struct RtClient {
    id: ClientId,
    router: Router,
    rx: mpsc::UnboundedReceiver<GameToClient>,
    server: ServerId,
    pos: Point,
    state_bytes: u64,
    counters: ClientCounters,
}

impl RtClient {
    /// Connects (registers an inbox and sends the initial `Join`).
    pub(crate) fn connect(router: Router, server: ServerId, pos: Point) -> RtClient {
        let id = router.allocate_client_id();
        let (tx, rx) = mpsc::unbounded_channel();
        router.register_client(id, tx);
        let client = RtClient {
            id,
            router,
            rx,
            server,
            pos,
            state_bytes: 1_024,
            counters: ClientCounters::default(),
        };
        client.send(ClientToGame::Join {
            pos,
            state_bytes: client.state_bytes,
        });
        client
    }

    /// This client's globally unique id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The server currently serving this client.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Current position.
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Session counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    fn send(&self, msg: ClientToGame) {
        self.router
            .send_node(self.server, NodeMsg::FromClient(self.id, msg));
    }

    /// Moves to `pos` and tells the server.
    pub fn move_to(&mut self, pos: Point) {
        self.pos = pos;
        self.send(ClientToGame::Move { pos });
    }

    /// Performs an action at the current position.
    pub fn action(&mut self, payload_bytes: usize) {
        self.send(ClientToGame::Action {
            pos: self.pos,
            payload_bytes,
        });
    }

    /// Leaves the game and releases the inbox.
    pub fn leave(mut self) {
        self.send(ClientToGame::Leave);
        self.rx.close();
        self.router.unregister_client(self.id);
    }

    /// Receives the next server message, transparently handling switches
    /// (re-joining the new server, as the paper's clients do).
    pub async fn recv(&mut self) -> Option<GameToClient> {
        loop {
            let msg = self.rx.recv().await?;
            match &msg {
                GameToClient::SwitchServer { to } => {
                    self.counters.switches += 1;
                    self.server = *to;
                    self.send(ClientToGame::Join {
                        pos: self.pos,
                        state_bytes: self.state_bytes,
                    });
                    // The switch itself is invisible to callers.
                    continue;
                }
                GameToClient::Ack { .. } => self.counters.acks += 1,
                GameToClient::Update { .. } => self.counters.updates += 1,
                GameToClient::UpdateBatch { updates } => {
                    self.counters.batches += 1;
                    self.counters.updates += updates.len() as u64;
                }
                GameToClient::Joined { server } => {
                    self.server = *server;
                }
            }
            return Some(msg);
        }
    }

    /// Drains any immediately available messages without waiting.
    pub fn drain(&mut self) -> Vec<GameToClient> {
        let mut out = Vec::new();
        while let Ok(msg) = self.rx.try_recv() {
            match &msg {
                GameToClient::SwitchServer { to } => {
                    self.counters.switches += 1;
                    self.server = *to;
                    self.send(ClientToGame::Join {
                        pos: self.pos,
                        state_bytes: self.state_bytes,
                    });
                    continue;
                }
                GameToClient::Ack { .. } => self.counters.acks += 1,
                GameToClient::Update { .. } => self.counters.updates += 1,
                GameToClient::UpdateBatch { updates } => {
                    self.counters.batches += 1;
                    self.counters.updates += updates.len() as u64;
                }
                GameToClient::Joined { server } => self.server = *server,
            }
            out.push(msg);
        }
        out
    }
}
