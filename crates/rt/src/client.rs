//! The in-process game client.
//!
//! Implements the client side of the paper's contract: clients talk only
//! to game servers, obey `SwitchServer` instructions by re-joining the
//! named server, and are otherwise oblivious to Matrix (§3.2.1).
//!
//! The client also mirrors the server's dissemination pipeline on the
//! receive side: `UpdateBatch` items arrive delta-compressed
//! ([`matrix_core::BatchItem`]), so the client threads a per-stream base
//! through [`matrix_core::reconstruct_updates`] and resets it whenever
//! the stream restarts (join, server switch) — exactly when the server's
//! encoder keyframes.

use crate::node::NodeMsg;
use crate::router::Router;
use matrix_core::{reconstruct_updates, ClientId, ClientToGame, GameToClient};
use matrix_geometry::{Point, ServerId};
use tokio::sync::mpsc;

/// Counters a client accumulates over its session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Action acknowledgements received.
    pub acks: u64,
    /// World updates received (batched updates count individually).
    pub updates: u64,
    /// `UpdateBatch` messages received.
    pub batches: u64,
    /// Absolute keyframe items among the batched updates.
    pub keyframes: u64,
    /// Delta-encoded items among the batched updates.
    pub deltas: u64,
    /// Items that arrived through an outer vision ring (ring > 0):
    /// sampled periphery the client should render at reduced fidelity.
    pub far_items: u64,
    /// Server switches performed.
    pub switches: u64,
}

/// An in-process client connection.
pub struct RtClient {
    id: ClientId,
    router: Router,
    rx: mpsc::UnboundedReceiver<GameToClient>,
    server: ServerId,
    pos: Point,
    state_bytes: u64,
    /// Delta-stream base: the last reconstructed update origin.
    delta_base: Option<Point>,
    counters: ClientCounters,
}

impl RtClient {
    /// Connects (registers an inbox and sends the initial `Join`).
    pub(crate) fn connect(router: Router, server: ServerId, pos: Point) -> RtClient {
        let id = router.allocate_client_id();
        let (tx, rx) = mpsc::unbounded_channel();
        router.register_client(id, tx);
        let client = RtClient {
            id,
            router,
            rx,
            server,
            pos,
            state_bytes: 1_024,
            delta_base: None,
            counters: ClientCounters::default(),
        };
        client.send(ClientToGame::Join {
            pos,
            state_bytes: client.state_bytes,
        });
        client
    }

    /// This client's globally unique id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The server currently serving this client.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Current position.
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Session counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// The origin of the most recent reconstructed *batched* update,
    /// i.e. this client's delta-stream base. Singleton
    /// `GameToClient::Update` messages are outside the delta stream and
    /// do not move it.
    pub fn last_update_origin(&self) -> Option<Point> {
        self.delta_base
    }

    fn send(&self, msg: ClientToGame) {
        self.router
            .send_node(self.server, NodeMsg::FromClient(self.id, msg));
    }

    /// Moves to `pos` and tells the server.
    pub fn move_to(&mut self, pos: Point) {
        self.pos = pos;
        self.send(ClientToGame::Move { pos });
    }

    /// Performs an action at the current position.
    pub fn action(&mut self, payload_bytes: usize) {
        self.send(ClientToGame::Action {
            pos: self.pos,
            payload_bytes,
        });
    }

    /// Leaves the game and releases the inbox.
    pub fn leave(mut self) {
        self.send(ClientToGame::Leave);
        self.rx.close();
        self.router.unregister_client(self.id);
    }

    /// Digests one server message: updates counters, the delta-stream
    /// base and the current-server bookkeeping. Returns `false` for
    /// `SwitchServer`, which is handled transparently (re-join) and
    /// never surfaced to callers.
    fn digest(&mut self, msg: &GameToClient) -> bool {
        match msg {
            GameToClient::SwitchServer { to } => {
                self.counters.switches += 1;
                self.server = *to;
                // The new server's encoder starts our stream fresh.
                self.delta_base = None;
                self.send(ClientToGame::Join {
                    pos: self.pos,
                    state_bytes: self.state_bytes,
                });
                false
            }
            GameToClient::Ack { .. } => {
                self.counters.acks += 1;
                true
            }
            GameToClient::Update { origin: _, .. } => {
                // Singleton updates are outside the batch pipeline: the
                // server's encoder does not advance its base for them,
                // so neither may the client, or the streams desync.
                self.counters.updates += 1;
                true
            }
            GameToClient::UpdateBatch { updates } => {
                self.counters.batches += 1;
                self.counters.updates += updates.len() as u64;
                for item in updates {
                    if item.is_keyframe() {
                        self.counters.keyframes += 1;
                    } else {
                        self.counters.deltas += 1;
                    }
                    if item.ring() > 0 {
                        self.counters.far_items += 1;
                    }
                }
                // Reconstruction threads the base forward; the server
                // keyframes after every resync, so a failure here means
                // a protocol bug — drop the base and recover on the next
                // keyframe rather than panicking a live client.
                match reconstruct_updates(&mut self.delta_base, updates) {
                    Some(_) => {}
                    None => self.delta_base = None,
                }
                true
            }
            GameToClient::Joined { server } => {
                self.server = *server;
                // A (re)join restarts the delta stream on the server.
                self.delta_base = None;
                true
            }
        }
    }

    /// Receives the next server message, transparently handling switches
    /// (re-joining the new server, as the paper's clients do).
    pub async fn recv(&mut self) -> Option<GameToClient> {
        loop {
            let msg = self.rx.recv().await?;
            if self.digest(&msg) {
                return Some(msg);
            }
        }
    }

    /// Drains any immediately available messages without waiting.
    pub fn drain(&mut self) -> Vec<GameToClient> {
        let mut out = Vec::new();
        while let Ok(msg) = self.rx.try_recv() {
            if self.digest(&msg) {
                out.push(msg);
            }
        }
        out
    }
}
