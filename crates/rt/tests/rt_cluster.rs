//! End-to-end tests of the tokio runtime: the same middleware protocol
//! exercised over real async tasks, channels and sockets.

use matrix_core::{ClientToGame, GameToClient, Lifecycle, MatrixConfig};
use matrix_geometry::Point;
use matrix_rt::{wire, RtCluster, RtConfig};
use matrix_sim::SimDuration;
use std::time::Duration;

fn fast_config() -> RtConfig {
    let mut cfg = RtConfig {
        matrix: MatrixConfig {
            overload_clients: 10,
            underload_clients: 4,
            overload_streak: 2,
            underload_streak: 2,
            cooldown: SimDuration::from_millis(200),
            ..MatrixConfig::default()
        },
        ..RtConfig::default()
    };
    cfg.game.tick = SimDuration::from_millis(20);
    cfg.game.report_every_ticks = 2;
    cfg
}

#[tokio::test]
async fn join_is_acknowledged() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let mut client = cluster.client(Point::new(100.0, 100.0));
    let msg = tokio::time::timeout(Duration::from_secs(2), client.recv())
        .await
        .expect("join must be answered")
        .expect("channel open");
    assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");
    cluster.shutdown().await;
}

#[tokio::test]
async fn action_is_acked() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let mut client = cluster.client(Point::new(100.0, 100.0));
    let _joined = tokio::time::timeout(Duration::from_secs(2), client.recv())
        .await
        .unwrap();
    client.action(64);
    let msg = tokio::time::timeout(Duration::from_secs(2), client.recv())
        .await
        .expect("ack must arrive")
        .expect("channel open");
    assert!(matches!(msg, GameToClient::Ack { .. }), "{msg:?}");
    assert_eq!(client.counters().acks, 1);
    cluster.shutdown().await;
}

#[tokio::test]
async fn nearby_clients_see_each_other() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let mut bob = cluster.client(Point::new(120.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    let _ = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .unwrap();

    alice.action(64);
    // Bob is within the 100-unit radius: he must receive the event in
    // an update batch on the next flush.
    let msg = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .expect("update must reach nearby client")
        .expect("channel open");
    match &msg {
        GameToClient::UpdateBatch { updates } => {
            assert_eq!(updates.len(), 1, "{msg:?}");
            assert_eq!(updates[0].payload_bytes(), 64);
            assert!(
                updates[0].is_keyframe(),
                "first item of a fresh stream is absolute"
            );
        }
        other => panic!("expected UpdateBatch, got {other:?}"),
    }
    assert_eq!(bob.counters().batches, 1);
    assert_eq!(bob.counters().updates, 1);
    assert_eq!(
        bob.last_update_origin(),
        Some(Point::new(100.0, 100.0)),
        "client reconstructs the event origin"
    );
    cluster.shutdown().await;
}

#[tokio::test]
async fn distant_clients_are_not_updated() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let mut bob = cluster.client(Point::new(700.0, 700.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    let _ = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .unwrap();

    alice.action(64);
    tokio::time::sleep(Duration::from_millis(200)).await;
    let extra = bob.drain();
    assert!(
        !extra.iter().any(|m| matches!(
            m,
            GameToClient::Update { .. } | GameToClient::UpdateBatch { .. }
        )),
        "700 units away is outside the radius of visibility: {extra:?}"
    );
    cluster.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn overload_splits_the_cluster_live() {
    let cluster = RtCluster::start(fast_config()).await;
    assert_eq!(cluster.active_servers().await, 1);

    // 30 clients >> the 10-client overload threshold.
    let mut clients = Vec::new();
    for i in 0..30 {
        let x = 50.0 + (i as f64 * 23.0) % 700.0;
        let y = 50.0 + (i as f64 * 37.0) % 700.0;
        clients.push(cluster.client(Point::new(x, y)));
    }
    // Let load reports, the pool round-trip and the split protocol run.
    let mut active = 1;
    for _ in 0..50 {
        tokio::time::sleep(Duration::from_millis(100)).await;
        active = cluster.active_servers().await;
        if active >= 2 {
            break;
        }
    }
    assert!(
        active >= 2,
        "the overloaded server must split, got {active}"
    );

    // Every client must still be able to play (possibly after a switch).
    for client in clients.iter_mut() {
        client.drain();
        client.action(32);
    }
    tokio::time::sleep(Duration::from_millis(300)).await;
    let mut acked = 0;
    for c in clients.iter_mut() {
        c.drain();
        if c.counters().acks >= 1 {
            acked += 1;
        }
    }
    assert!(
        acked >= 25,
        "most clients keep playing across the split: {acked}/30"
    );
    cluster.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn parallel_flush_loses_and_duplicates_nothing_under_churn() {
    // The race smoke for the sharded flush engine: a node running 4
    // real flush workers is hammered with joins, moves, actions and
    // leaves for many ticks. Every action carries a unique payload
    // size, so per-receiver delivery is exactly countable: each
    // observer must see each action exactly once — a lost batch shows
    // up as a missing payload, a duplicated batch as a repeated one.
    // The final actions are still queued when the cluster stops, so
    // `shutdown_flush` itself runs the parallel path and must deliver
    // what the batcher holds.
    let mut cfg = RtConfig::default();
    cfg.game.flush_workers = 4;
    cfg.game.tick = SimDuration::from_millis(20);
    // Unlimited per-flush budgets: rate limiting would merge or defer
    // items and break exact accounting.
    cfg.game.max_updates_per_flush = 0;
    cfg.game.client_budget_bytes = 0;
    let cluster = RtCluster::start(cfg).await;

    // A mutually visible crowd: everyone within the 100-unit radius.
    const CORE: usize = 12;
    let mut clients = Vec::new();
    for i in 0..CORE {
        let angle = i as f64 / CORE as f64 * std::f64::consts::TAU;
        let pos = Point::new(200.0 + 30.0 * angle.cos(), 200.0 + 30.0 * angle.sin());
        clients.push(cluster.client(pos));
    }
    for c in clients.iter_mut() {
        let msg = tokio::time::timeout(Duration::from_secs(2), c.recv())
            .await
            .expect("join must be answered")
            .expect("channel open");
        assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");
    }

    // Hammer: every round everyone jitters, every third client fires a
    // uniquely sized action, and churn clients join/move/leave
    // concurrently with the flush workers.
    let mut sent_by: Vec<Vec<usize>> = vec![Vec::new(); CORE];
    let mut next_payload = 300usize;
    for round in 0..30u64 {
        for (i, c) in clients.iter_mut().enumerate() {
            let jitter = ((round + i as u64) % 5) as f64 - 2.0;
            let p = c.pos();
            c.move_to(Point::new(p.x + jitter, p.y - jitter));
            if (i as u64 + round) % 3 == 0 {
                c.action(next_payload);
                sent_by[i].push(next_payload);
                next_payload += 1;
            }
        }
        if round % 3 == 0 {
            // Churn rider: joins inside the crowd, moves, leaves. Its
            // own deliveries are not asserted — it exists to race the
            // shard map against subscribe/unsubscribe.
            let mut rider = cluster.client(Point::new(210.0, 190.0));
            let _ = tokio::time::timeout(Duration::from_secs(2), rider.recv()).await;
            rider.move_to(Point::new(195.0, 205.0));
            rider.leave();
        }
        tokio::time::sleep(Duration::from_millis(5)).await;
    }
    // Let the last scheduled flushes drain, then stop the cluster: the
    // shutdown flush delivers whatever the batcher still holds.
    tokio::time::sleep(Duration::from_millis(300)).await;
    cluster.shutdown().await;
    tokio::time::sleep(Duration::from_millis(100)).await;

    let all_payloads: Vec<usize> = sent_by.iter().flatten().copied().collect();
    for (i, c) in clients.iter_mut().enumerate() {
        let msgs = c.drain();
        assert_eq!(
            c.counters().acks,
            sent_by[i].len() as u64,
            "client {i}: every action is acked exactly once"
        );
        // Count how often each action payload reached this observer
        // (move updates carry payload 0, so they never collide with
        // the 300+ action payloads).
        let mut seen: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for m in &msgs {
            if let GameToClient::UpdateBatch { updates } = m {
                for u in updates {
                    if u.payload_bytes() >= 300 {
                        *seen.entry(u.payload_bytes()).or_default() += 1;
                    }
                }
            }
        }
        for &p in &all_payloads {
            let expected = if sent_by[i].contains(&p) { 0 } else { 1 };
            assert_eq!(
                seen.get(&p).copied().unwrap_or(0),
                expected,
                "client {i}, action payload {p}: lost or duplicated"
            );
        }
    }
}

#[tokio::test]
async fn snapshots_expose_topology() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let snaps = cluster.snapshots().await;
    let active: Vec<_> = snaps
        .iter()
        .filter(|s| s.lifecycle == Lifecycle::Active)
        .collect();
    assert_eq!(active.len(), 1);
    assert!(active[0].range.is_some());
    let idle = snaps
        .iter()
        .filter(|s| s.lifecycle == Lifecycle::Idle)
        .count();
    assert_eq!(idle, RtConfig::default().pool_size as usize);
    cluster.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn killed_node_fails_over_to_its_warm_standby() {
    // Tight timings so detection + promotion complete in test time.
    let mut cfg = RtConfig::default();
    cfg.matrix.standby_replication = true;
    cfg.matrix.heartbeat_every = SimDuration::from_millis(100);
    cfg.coordinator.heartbeat_timeout = SimDuration::from_millis(500);
    cfg.game.tick = SimDuration::from_millis(20);
    cfg.game.replica_interval = SimDuration::from_millis(100);
    let cluster = RtCluster::start(cfg).await;

    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let mut bob = cluster.client(Point::new(120.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    let _ = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .unwrap();
    // Let the standby pairing and at least one replica snapshot ship.
    tokio::time::sleep(Duration::from_millis(400)).await;

    // Kill the bootstrap node mid-game: no flush, no goodbye.
    cluster.crash(cluster.bootstrap_id());

    // The coordinator's sweep declares it dead and promotes the warm
    // standby; both clients are re-pointed without reconnecting their
    // channel. Wait for the promoted server to become active again.
    let mut promoted = None;
    for _ in 0..40 {
        tokio::time::sleep(Duration::from_millis(100)).await;
        let snaps = cluster.snapshots().await;
        if let Some(s) = snaps
            .iter()
            .find(|s| s.lifecycle == Lifecycle::Active && s.game_stats.promotions > 0)
        {
            promoted = Some(s.id);
            break;
        }
    }
    let promoted = promoted.expect("a standby must promote");
    assert_ne!(promoted, cluster.bootstrap_id());

    // Drain the switch notifications, then keep playing: an action from
    // alice must still reach bob through the promoted server.
    tokio::time::sleep(Duration::from_millis(200)).await;
    alice.drain();
    bob.drain();
    assert_eq!(alice.server(), promoted, "client re-pointed, not dropped");
    let batches_before = bob.counters().batches;
    alice.action(64);
    let mut got_update = false;
    for _ in 0..20 {
        tokio::time::sleep(Duration::from_millis(50)).await;
        bob.drain();
        if bob.counters().batches > batches_before {
            got_update = true;
            break;
        }
    }
    assert!(got_update, "updates keep flowing after the failover");
    // The promoted node restored the sessions from the replica.
    let snaps = cluster.snapshots().await;
    let node = snaps.iter().find(|s| s.id == promoted).unwrap();
    assert!(node.game_stats.clients_restored >= 2, "{node:?}");
    cluster.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn gateway_client_resumes_at_its_real_position_after_failover() {
    // A TCP client plays at (100, 100) through the gateway. When its
    // server dies and the warm standby promotes, the gateway performs
    // the transparent re-join on the client's behalf — carrying the
    // client's *real* position, as RtClient does. Were it to re-join at
    // the origin (the old behaviour), the restored session would be
    // yanked across the map and the client would stop seeing events
    // near its actual position until its next upload.
    let mut cfg = RtConfig::default();
    cfg.matrix.standby_replication = true;
    cfg.matrix.heartbeat_every = SimDuration::from_millis(100);
    cfg.coordinator.heartbeat_timeout = SimDuration::from_millis(500);
    cfg.game.tick = SimDuration::from_millis(20);
    cfg.game.replica_interval = SimDuration::from_millis(100);
    let cluster = RtCluster::start(cfg).await;
    let addr = wire::spawn_gateway(
        "127.0.0.1:0",
        cluster.router().clone(),
        cluster.bootstrap_id(),
    )
    .await
    .expect("bind gateway");

    let mut remote = wire::TcpGameClient::connect(addr).await.expect("connect");
    remote
        .send(&ClientToGame::Join {
            pos: Point::new(100.0, 100.0),
            state_bytes: 64,
        })
        .await
        .expect("send join");
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("join reply")
        .expect("valid frame");
    assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");

    // A nearby in-process client whose actions the remote one observes.
    let mut alice = cluster.client(Point::new(110.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    // Let the standby pairing and at least one replica snapshot ship.
    tokio::time::sleep(Duration::from_millis(400)).await;

    cluster.crash(cluster.bootstrap_id());

    // Wait for the promotion, draining the remote client's inbox (it
    // sees Joined/SwitchServer relays along the way).
    let mut promoted = None;
    for _ in 0..40 {
        tokio::time::sleep(Duration::from_millis(100)).await;
        let snaps = cluster.snapshots().await;
        if let Some(s) = snaps
            .iter()
            .find(|s| s.lifecycle == Lifecycle::Active && s.game_stats.promotions > 0)
        {
            promoted = Some(s.id);
            break;
        }
    }
    assert!(promoted.is_some(), "a standby must promote");
    tokio::time::sleep(Duration::from_millis(300)).await;

    // The remote client — without uploading anything since the crash —
    // must observe alice's action: its restored session is still at
    // (100, 100), inside the 100-unit radius of alice.
    alice.drain();
    alice.action(64);
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    let mut saw_update = false;
    while std::time::Instant::now() < deadline {
        match tokio::time::timeout(Duration::from_millis(500), remote.recv()).await {
            Ok(Ok(GameToClient::UpdateBatch { .. })) => {
                saw_update = true;
                break;
            }
            Ok(Ok(_)) => {}
            _ => break,
        }
    }
    assert!(
        saw_update,
        "the re-joined session must stay at the client's real position \
         and keep receiving nearby events"
    );
    cluster.shutdown().await;
}

#[tokio::test]
async fn replica_batches_cross_a_real_tcp_socket() {
    use matrix_core::{ReplicaPayload, ReplicaReceiver};

    // A primary-shaped snapshot travels the wire and lands in a standby
    // receiver on the other end, which acks back over the same socket.
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0")
        .await
        .expect("bind");
    let addr = listener.local_addr().expect("addr");

    let standby = tokio::spawn(async move {
        let (stream, _) = listener.accept().await.expect("accept");
        let mut link = wire::ReplicaStream::new(stream);
        let mut receiver: ReplicaReceiver<matrix_core::ClientId> = ReplicaReceiver::new();
        // Snapshot, then one ops batch.
        for _ in 0..2 {
            let batch = link.recv_batch().await.expect("batch");
            let ack = receiver.apply(batch);
            link.send_ack(ack.seq, ack.resync).await.expect("ack");
        }
        receiver
    });

    let mut link = wire::ReplicaStream::connect(addr).await.expect("connect");
    let mut snapshot = matrix_core::RegionSnapshot {
        range: Some(matrix_geometry::Rect::from_coords(0.0, 0.0, 800.0, 800.0)),
        radius: 100.0,
        ready: true,
        ..matrix_core::RegionSnapshot::default()
    };
    snapshot.clients.insert(
        matrix_core::ClientId(7),
        matrix_core::SessionState {
            pos: Point::new(10.0, 20.0),
            state_bytes: 512,
        },
    );
    link.send_batch(&matrix_core::ReplicaBatch {
        seq: 1,
        payload: ReplicaPayload::Full(snapshot),
    })
    .await
    .expect("send snapshot");
    assert_eq!(link.recv_ack().await.expect("ack"), (1, false));

    link.send_batch(&matrix_core::ReplicaBatch {
        seq: 2,
        payload: ReplicaPayload::Ops(vec![matrix_core::ReplicaOp::Move {
            client: matrix_core::ClientId(7),
            pos: Point::new(11.0, 20.0),
        }]),
    })
    .await
    .expect("send ops");
    assert_eq!(link.recv_ack().await.expect("ack"), (2, false));

    let receiver = standby.await.expect("standby task");
    let snap = receiver.snapshot().expect("warm");
    assert_eq!(
        snap.clients[&matrix_core::ClientId(7)].pos,
        Point::new(11.0, 20.0),
        "the op applied on the far side of the socket"
    );
}

#[tokio::test]
async fn tcp_gateway_round_trip() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let addr = wire::spawn_gateway(
        "127.0.0.1:0",
        cluster.router().clone(),
        cluster.bootstrap_id(),
    )
    .await
    .expect("bind gateway");

    let mut remote = wire::TcpGameClient::connect(addr).await.expect("connect");
    remote
        .send(&ClientToGame::Join {
            pos: Point::new(50.0, 50.0),
            state_bytes: 64,
        })
        .await
        .expect("send join");
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("join reply within deadline")
        .expect("valid frame");
    assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");

    remote
        .send(&ClientToGame::Action {
            pos: Point::new(50.0, 50.0),
            payload_bytes: 32,
        })
        .await
        .expect("send action");
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("ack within deadline")
        .expect("valid frame");
    assert!(matches!(msg, GameToClient::Ack { .. }), "{msg:?}");
    cluster.shutdown().await;
}

#[tokio::test]
async fn ring_tagged_updates_cross_the_real_wire() {
    // Multi-ring AOI over the TCP gateway: a mid-ring observer's frames
    // carry the ring tag (`[x,y,bytes,entity,ring]`), and the in-process
    // client's counters attribute them as far items.
    let mut cfg = RtConfig::default();
    // Rings over the 100-unit vision radius: near 35, mid 65, far 100.
    cfg.game.set_rings(&[35.0, 65.0, 100.0], &[1, 2, 4]);
    let cluster = RtCluster::start(cfg).await;
    let addr = wire::spawn_gateway(
        "127.0.0.1:0",
        cluster.router().clone(),
        cluster.bootstrap_id(),
    )
    .await
    .expect("bind gateway");

    // Remote observer ~50 units from the actor: the mid ring (rate 2).
    let mut remote = wire::TcpGameClient::connect(addr).await.expect("connect");
    remote
        .send(&ClientToGame::Join {
            pos: Point::new(150.0, 100.0),
            state_bytes: 64,
        })
        .await
        .expect("send join");
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("join reply")
        .expect("valid frame");
    assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");

    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    // Rate 2 on the mid ring: of two actions, exactly one ships.
    alice.action(64);
    alice.action(64);
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("update within deadline")
        .expect("valid frame");
    let GameToClient::UpdateBatch { updates } = &msg else {
        panic!("expected UpdateBatch, got {msg:?}");
    };
    assert_eq!(updates.len(), 1, "mid ring at rate 2 samples one of two");
    assert_eq!(updates[0].ring(), 1, "mid-ring tag survives the codec");
    cluster.shutdown().await;
}

#[tokio::test]
async fn stats_endpoint_serves_live_telemetry_over_tcp() {
    // E2E observability: with telemetry on, the cluster's stats endpoint
    // answers both wire formats over a real socket — structured JSON
    // (per-node counters + sparse histograms) and Prometheus-style text.
    let mut cfg = fast_config();
    cfg.game.telemetry = true;
    cfg.game.emit_updates = true;
    let cluster = RtCluster::start(cfg).await;
    let addr = cluster.serve_stats("127.0.0.1:0").await.expect("bind");

    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let mut bob = cluster.client(Point::new(120.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    let _ = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .unwrap();
    // An action near bob forces fan-out, so the next flush has work.
    alice.action(64);
    let _ = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .expect("update delivered")
        .expect("channel open");

    let nodes = tokio::time::timeout(
        Duration::from_secs(2),
        wire::TcpStatsClient::fetch_json(addr),
    )
    .await
    .expect("stats reply within deadline")
    .expect("decoded stats reply");
    assert!(
        !nodes.is_empty(),
        "telemetry-on nodes must expose snapshots"
    );
    let merged = nodes.iter().fold(
        matrix_core::TelemetrySnapshot::new(),
        |mut acc, (_, snap)| {
            acc.merge(snap);
            acc
        },
    );
    assert!(
        merged.get_counter("joins").unwrap_or(0) >= 2,
        "both joins must be counted: {:?}",
        merged.counters
    );
    assert!(
        merged.get_hist("rt_tick_us").is_some(),
        "the runtime's tick histogram must ride the snapshot"
    );
    assert!(
        merged.get_hist("flush_us").is_some(),
        "a flush with pending work must be timed"
    );

    let text = tokio::time::timeout(
        Duration::from_secs(2),
        wire::TcpStatsClient::fetch_text(addr),
    )
    .await
    .expect("prometheus text within deadline")
    .expect("read to EOF");
    assert!(text.contains("# TYPE matrix_joins counter"), "{text}");
    assert!(text.contains("matrix_rt_tick_us_count"), "{text}");
    cluster.shutdown().await;
}

#[tokio::test]
async fn stats_endpoint_is_empty_with_telemetry_off() {
    // Telemetry off is the default, and it must mean *zero* exposure:
    // the endpoint still answers, with no node snapshots.
    let cluster = RtCluster::start(fast_config()).await;
    let addr = cluster.serve_stats("127.0.0.1:0").await.expect("bind");
    let mut client = cluster.client(Point::new(100.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), client.recv())
        .await
        .unwrap();
    let nodes = tokio::time::timeout(
        Duration::from_secs(2),
        wire::TcpStatsClient::fetch_json(addr),
    )
    .await
    .expect("stats reply within deadline")
    .expect("decoded stats reply");
    assert!(
        nodes.is_empty(),
        "dark cluster must expose nothing: {nodes:?}"
    );
    cluster.shutdown().await;
}

#[tokio::test]
async fn gateway_negotiates_the_binary_protocol_by_default() {
    // A default gateway answers the client's binary Hello, so the whole
    // session — join, ack, updates — runs over wire protocol v2.
    let cluster = RtCluster::start(RtConfig::default()).await;
    let addr = wire::spawn_gateway(
        "127.0.0.1:0",
        cluster.router().clone(),
        cluster.bootstrap_id(),
    )
    .await
    .expect("bind gateway");

    let mut remote = wire::TcpGameClient::connect(addr).await.expect("connect");
    assert_eq!(
        remote.codec(),
        matrix_core::WireCodec::BinaryV2,
        "a v2 gateway answers Hello, pinning the session to binary"
    );
    remote
        .send(&ClientToGame::Join {
            pos: Point::new(60.0, 60.0),
            state_bytes: 64,
        })
        .await
        .expect("send join");
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("join reply")
        .expect("valid frame");
    assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");
    cluster.shutdown().await;
}

#[tokio::test]
async fn client_falls_back_to_json_against_a_legacy_gateway() {
    // accept_binary = false simulates a v1-only gateway: it drops the
    // binary opener exactly as a JSON line parser would. The client's
    // negotiation must survive the hangup and reconnect speaking v1 —
    // and the session must still work end to end.
    let cluster = RtCluster::start(RtConfig::default()).await;
    let addr = wire::spawn_gateway_with(
        "127.0.0.1:0",
        cluster.router().clone(),
        cluster.bootstrap_id(),
        wire::GatewayOptions {
            accept_binary: false,
            frame_crc: false,
        },
    )
    .await
    .expect("bind gateway");

    let mut remote = wire::TcpGameClient::connect(addr).await.expect("connect");
    assert_eq!(
        remote.codec(),
        matrix_core::WireCodec::Json,
        "the legacy gateway hangs up on Hello; the client falls back"
    );
    remote
        .send(&ClientToGame::Join {
            pos: Point::new(60.0, 60.0),
            state_bytes: 64,
        })
        .await
        .expect("send join");
    let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
        .await
        .expect("join reply")
        .expect("valid frame");
    assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");
    cluster.shutdown().await;
}

#[tokio::test]
async fn mixed_codec_clients_share_one_gateway() {
    // One gateway, one binary client and one JSON-pinned client, both
    // observing the same in-process actor: codec choice is strictly
    // per-connection, not per-gateway.
    let cluster = RtCluster::start(RtConfig::default()).await;
    let addr = wire::spawn_gateway(
        "127.0.0.1:0",
        cluster.router().clone(),
        cluster.bootstrap_id(),
    )
    .await
    .expect("bind gateway");

    let mut binary = wire::TcpGameClient::connect(addr)
        .await
        .expect("connect v2");
    let mut json = wire::TcpGameClient::connect_with(addr, matrix_core::WireCodec::Json)
        .await
        .expect("connect v1");
    assert_eq!(binary.codec(), matrix_core::WireCodec::BinaryV2);
    assert_eq!(json.codec(), matrix_core::WireCodec::Json);

    for remote in [&mut binary, &mut json] {
        remote
            .send(&ClientToGame::Join {
                pos: Point::new(100.0, 100.0),
                state_bytes: 64,
            })
            .await
            .expect("send join");
        let msg = tokio::time::timeout(Duration::from_secs(2), remote.recv())
            .await
            .expect("join reply")
            .expect("valid frame");
        assert!(matches!(msg, GameToClient::Joined { .. }), "{msg:?}");
    }

    // An actor both observe; each codec must deliver the same batch.
    let mut alice = cluster.client(Point::new(110.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    alice.action(64);
    for (remote, codec) in [(&mut binary, "binary"), (&mut json, "json")] {
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        let mut saw_update = false;
        while std::time::Instant::now() < deadline {
            match tokio::time::timeout(Duration::from_millis(500), remote.recv()).await {
                Ok(Ok(GameToClient::UpdateBatch { .. })) => {
                    saw_update = true;
                    break;
                }
                Ok(Ok(_)) => {}
                _ => break,
            }
        }
        assert!(saw_update, "the {codec} client must see alice's action");
    }
    cluster.shutdown().await;
}

#[tokio::test]
async fn replica_batches_cross_the_socket_in_binary() {
    use matrix_core::{ReplicaPayload, ReplicaReceiver, WireCodec};

    // Same primary/standby exchange as the JSON test above, but over v2
    // binary frames with CRC trailers.
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0")
        .await
        .expect("bind");
    let addr = listener.local_addr().expect("addr");

    let standby = tokio::spawn(async move {
        let (stream, _) = listener.accept().await.expect("accept");
        let mut link = wire::ReplicaStream::new_with(stream, WireCodec::BinaryV2, true);
        let mut receiver: ReplicaReceiver<matrix_core::ClientId> = ReplicaReceiver::new();
        for _ in 0..2 {
            let batch = link.recv_batch().await.expect("batch");
            let ack = receiver.apply(batch);
            link.send_ack(ack.seq, ack.resync).await.expect("ack");
        }
        receiver
    });

    let mut link = wire::ReplicaStream::connect_with(addr, WireCodec::BinaryV2, true)
        .await
        .expect("connect");
    let mut snapshot = matrix_core::RegionSnapshot {
        range: Some(matrix_geometry::Rect::from_coords(0.0, 0.0, 800.0, 800.0)),
        radius: 100.0,
        ready: true,
        ..matrix_core::RegionSnapshot::default()
    };
    snapshot.clients.insert(
        matrix_core::ClientId(7),
        matrix_core::SessionState {
            pos: Point::new(10.0, 20.0),
            state_bytes: 512,
        },
    );
    link.send_batch(&matrix_core::ReplicaBatch {
        seq: 1,
        payload: ReplicaPayload::Full(snapshot),
    })
    .await
    .expect("send snapshot");
    assert_eq!(link.recv_ack().await.expect("ack"), (1, false));

    link.send_batch(&matrix_core::ReplicaBatch {
        seq: 2,
        payload: ReplicaPayload::Ops(vec![matrix_core::ReplicaOp::Move {
            client: matrix_core::ClientId(7),
            pos: Point::new(11.0, 20.0),
        }]),
    })
    .await
    .expect("send ops");
    assert_eq!(link.recv_ack().await.expect("ack"), (2, false));

    let receiver = standby.await.expect("standby task");
    let snap = receiver.snapshot().expect("warm");
    assert_eq!(
        snap.clients[&matrix_core::ClientId(7)].pos,
        Point::new(11.0, 20.0),
        "the op applied on the far side of the binary socket"
    );
}

#[tokio::test]
async fn stats_endpoint_answers_binary_queries() {
    // The stats endpoint sniffs like the gateway: the same snapshots
    // come back whether the query is a v1 JSON line or a v2 frame.
    let mut cfg = fast_config();
    cfg.game.telemetry = true;
    let cluster = RtCluster::start(cfg).await;
    let addr = cluster.serve_stats("127.0.0.1:0").await.expect("bind");
    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let _ = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();

    let v2 = tokio::time::timeout(
        Duration::from_secs(2),
        wire::TcpStatsClient::fetch_json_v2(addr),
    )
    .await
    .expect("binary stats reply within deadline")
    .expect("decoded stats frame");
    let v1 = tokio::time::timeout(
        Duration::from_secs(2),
        wire::TcpStatsClient::fetch_json(addr),
    )
    .await
    .expect("json stats reply within deadline")
    .expect("decoded stats reply");
    assert_eq!(
        v2.len(),
        v1.len(),
        "both codecs expose the same set of nodes"
    );
    let joins = |nodes: &[(matrix_geometry::ServerId, matrix_core::TelemetrySnapshot)]| {
        nodes
            .iter()
            .map(|(_, s)| s.get_counter("joins").unwrap_or(0))
            .sum::<u64>()
    };
    assert!(joins(&v2) >= 1, "the join is visible through the v2 query");
    assert_eq!(joins(&v2), joins(&v1));
    cluster.shutdown().await;
}
