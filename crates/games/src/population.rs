//! The simulated client population.
//!
//! Each member owns a [`Walker`] (movement), a current game-server
//! assignment, and send-side state (sequence numbers, pending switches).
//! The discrete-event harness asks the population who joins and leaves
//! (from the [`WorkloadSchedule`](crate::WorkloadSchedule)) and, per client
//! update, where the client has moved and whether an action accompanies
//! the movement.

use crate::movement::{MovementModel, Walker};
use crate::schedule::{Placement, PopulationEvent};
use crate::spec::GameSpec;
use matrix_core::ClientId;
use matrix_geometry::{Point, ServerId};
use matrix_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-client simulation state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSim {
    /// Globally unique id (the paper's callsign requirement).
    pub id: ClientId,
    /// Movement state.
    pub walker: Walker,
    /// The game server this client is currently connected to.
    pub server: ServerId,
    /// Whether the client belongs to the scripted hotspot crowd.
    pub in_hotspot: bool,
    /// Whether the client is mid-switch (between SwitchServer and the
    /// re-join completing).
    pub switching: bool,
}

/// The full population, with deterministic membership changes.
#[derive(Debug, Clone)]
pub struct ClientPop {
    spec: GameSpec,
    rng: SimRng,
    clients: BTreeMap<ClientId, ClientSim>,
    next_id: u64,
}

impl ClientPop {
    /// Creates an empty population for a game.
    pub fn new(spec: GameSpec, seed: u64) -> ClientPop {
        ClientPop {
            spec,
            rng: SimRng::seed_from_u64(seed),
            clients: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The game spec this population plays.
    pub fn spec(&self) -> &GameSpec {
        &self.spec
    }

    /// Number of connected clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Immutable view of one client.
    pub fn get(&self, id: ClientId) -> Option<&ClientSim> {
        self.clients.get(&id)
    }

    /// Mutable view of one client.
    pub fn get_mut(&mut self, id: ClientId) -> Option<&mut ClientSim> {
        self.clients.get_mut(&id)
    }

    /// All client ids in join order.
    pub fn ids(&self) -> Vec<ClientId> {
        self.clients.keys().copied().collect()
    }

    /// Clients currently assigned to `server`.
    pub fn on_server(&self, server: ServerId) -> usize {
        self.clients.values().filter(|c| c.server == server).count()
    }

    /// Applies a scripted event. Joins are assigned to `initial_server`
    /// (the driver re-homes them when the middleware redirects). Returns
    /// the ids that joined or left.
    pub fn apply(&mut self, event: PopulationEvent, initial_server: ServerId) -> Vec<ClientId> {
        match event {
            PopulationEvent::Join { n, placement } => {
                let mut joined = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let id = ClientId(self.next_id);
                    self.next_id += 1;
                    let (model, in_hotspot) = match placement {
                        Placement::Uniform => (MovementModel::RandomWaypoint, false),
                        Placement::Hotspot { center, spread } => {
                            (MovementModel::HotspotAttracted { center, spread }, true)
                        }
                    };
                    let walker = Walker::spawn(model, self.spec.world, &mut self.rng);
                    self.clients.insert(
                        id,
                        ClientSim {
                            id,
                            walker,
                            server: initial_server,
                            in_hotspot,
                            switching: false,
                        },
                    );
                    joined.push(id);
                }
                joined
            }
            PopulationEvent::Leave { n, from_hotspot } => {
                let mut leaving: Vec<ClientId> = if from_hotspot {
                    self.clients
                        .values()
                        .filter(|c| c.in_hotspot)
                        .map(|c| c.id)
                        .collect()
                } else {
                    Vec::new()
                };
                if leaving.len() < n as usize {
                    let extra: Vec<ClientId> = self
                        .clients
                        .keys()
                        .copied()
                        .filter(|id| !leaving.contains(id))
                        .collect();
                    leaving.extend(extra);
                }
                leaving.truncate(n as usize);
                for id in &leaving {
                    self.clients.remove(id);
                }
                leaving
            }
        }
    }

    /// Advances one client by `dt` seconds and returns its new position
    /// plus whether this update also carries an action packet.
    pub fn step(&mut self, id: ClientId, dt: f64) -> Option<(Point, bool)> {
        let spec_speed = self.spec.move_speed;
        let world = self.spec.world;
        let p_action = self.spec.action_probability();
        let client = self.clients.get_mut(&id)?;
        client.walker.step(spec_speed, dt, world, &mut self.rng);
        let action = self.rng.chance(p_action);
        Some((client.walker.pos, action))
    }

    /// Re-homes a client after a `SwitchServer` instruction.
    pub fn set_server(&mut self, id: ClientId, server: ServerId) {
        if let Some(c) = self.clients.get_mut(&id) {
            c.server = server;
            c.switching = false;
        }
    }

    /// Marks a client as mid-switch.
    pub fn begin_switch(&mut self, id: ClientId) {
        if let Some(c) = self.clients.get_mut(&id) {
            c.switching = true;
        }
    }

    /// Count of clients per server, for population snapshots.
    pub fn per_server_counts(&self) -> BTreeMap<ServerId, usize> {
        let mut counts = BTreeMap::new();
        for c in self.clients.values() {
            *counts.entry(c.server).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_sim::SimTime;

    fn pop() -> ClientPop {
        ClientPop::new(GameSpec::bzflag(), 42)
    }

    #[test]
    fn joins_assign_fresh_ids() {
        let mut p = pop();
        let a = p.apply(
            PopulationEvent::Join {
                n: 3,
                placement: Placement::Uniform,
            },
            ServerId(1),
        );
        let b = p.apply(
            PopulationEvent::Join {
                n: 2,
                placement: Placement::Uniform,
            },
            ServerId(1),
        );
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(p.len(), 5);
        let mut all: Vec<u64> = a.iter().chain(&b).map(|c| c.0).collect();
        all.dedup();
        assert_eq!(all.len(), 5, "ids must be unique");
    }

    #[test]
    fn hotspot_joiners_cluster() {
        let mut p = pop();
        let center = p.spec().hotspot_a();
        let ids = p.apply(
            PopulationEvent::Join {
                n: 200,
                placement: Placement::Hotspot {
                    center,
                    spread: 100.0,
                },
            },
            ServerId(1),
        );
        let near = ids
            .iter()
            .filter(|id| p.get(**id).unwrap().walker.pos.distance(center) < 300.0)
            .count();
        assert!(near > 180, "hotspot joiners must cluster: {near}/200");
    }

    #[test]
    fn hotspot_leaves_drain_the_crowd_first() {
        let mut p = pop();
        p.apply(
            PopulationEvent::Join {
                n: 50,
                placement: Placement::Uniform,
            },
            ServerId(1),
        );
        p.apply(
            PopulationEvent::Join {
                n: 100,
                placement: Placement::Hotspot {
                    center: p.spec().hotspot_a(),
                    spread: 50.0,
                },
            },
            ServerId(1),
        );
        let left = p.apply(
            PopulationEvent::Leave {
                n: 100,
                from_hotspot: true,
            },
            ServerId(1),
        );
        assert_eq!(left.len(), 100);
        assert_eq!(p.len(), 50);
        let hotspot_remaining = p
            .ids()
            .iter()
            .filter(|id| p.get(**id).unwrap().in_hotspot)
            .count();
        assert_eq!(
            hotspot_remaining, 0,
            "hotspot members leave before background"
        );
    }

    #[test]
    fn leave_overflows_into_background() {
        let mut p = pop();
        p.apply(
            PopulationEvent::Join {
                n: 30,
                placement: Placement::Uniform,
            },
            ServerId(1),
        );
        let left = p.apply(
            PopulationEvent::Leave {
                n: 50,
                from_hotspot: true,
            },
            ServerId(1),
        );
        assert_eq!(left.len(), 30, "cannot remove more than exist");
        assert!(p.is_empty());
    }

    #[test]
    fn step_moves_and_sometimes_acts() {
        let mut p = pop();
        let ids = p.apply(
            PopulationEvent::Join {
                n: 1,
                placement: Placement::Uniform,
            },
            ServerId(1),
        );
        let id = ids[0];
        let before = p.get(id).unwrap().walker.pos;
        let mut actions = 0;
        for _ in 0..100 {
            let (_, act) = p.step(id, 0.2).unwrap();
            if act {
                actions += 1;
            }
        }
        let after = p.get(id).unwrap().walker.pos;
        assert_ne!(before, after, "waypoint walkers move");
        // bzflag: action on ~20% of updates.
        assert!(actions > 5 && actions < 50, "action count {actions}");
        let _ = SimTime::ZERO;
    }

    #[test]
    fn step_unknown_client_is_none() {
        let mut p = pop();
        assert!(p.step(ClientId(999), 0.1).is_none());
    }

    #[test]
    fn server_reassignment_tracks_counts() {
        let mut p = pop();
        let ids = p.apply(
            PopulationEvent::Join {
                n: 4,
                placement: Placement::Uniform,
            },
            ServerId(1),
        );
        p.set_server(ids[0], ServerId(2));
        p.set_server(ids[1], ServerId(2));
        assert_eq!(p.on_server(ServerId(1)), 2);
        assert_eq!(p.on_server(ServerId(2)), 2);
        let counts = p.per_server_counts();
        assert_eq!(counts[&ServerId(1)], 2);
        assert_eq!(counts[&ServerId(2)], 2);
    }

    #[test]
    fn same_seed_same_population() {
        let run = |seed| {
            let mut p = ClientPop::new(GameSpec::bzflag(), seed);
            let ids = p.apply(
                PopulationEvent::Join {
                    n: 10,
                    placement: Placement::Uniform,
                },
                ServerId(1),
            );
            ids.iter()
                .map(|id| p.get(*id).unwrap().walker.pos)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
