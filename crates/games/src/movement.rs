//! Player movement models.

use matrix_geometry::{Point, Rect};
use matrix_sim::SimRng;
use serde::{Deserialize, Serialize};

/// How a simulated player moves between updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MovementModel {
    /// Classic random-waypoint: walk to a uniformly chosen target, pick a
    /// new one on arrival. The steady state spreads players over the map.
    RandomWaypoint,
    /// Jitter around a fixed attractor — players crowding a hotspot (the
    /// town-meeting behaviour of §4.1). `spread` is the standard deviation
    /// of the crowd around the centre.
    HotspotAttracted {
        /// Crowd centre.
        center: Point,
        /// Standard deviation of positions around the centre.
        spread: f64,
    },
    /// No movement (camping snipers, vendors, AFK players).
    Stationary,
}

/// Mutable movement state of one player.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Walker {
    /// Current position.
    pub pos: Point,
    /// Current waypoint target (meaningful for random-waypoint only).
    pub target: Point,
    /// The model driving this walker.
    pub model: MovementModel,
}

impl Walker {
    /// Spawns a walker at a model-appropriate position.
    pub fn spawn(model: MovementModel, world: Rect, rng: &mut SimRng) -> Walker {
        let pos = match model {
            MovementModel::RandomWaypoint | MovementModel::Stationary => uniform_in(world, rng),
            MovementModel::HotspotAttracted { center, spread } => {
                gaussian_near(center, spread, world, rng)
            }
        };
        let target = match model {
            MovementModel::RandomWaypoint => uniform_in(world, rng),
            _ => pos, // hotspot members treat their spawn point as home
        };
        Walker { pos, target, model }
    }

    /// Advances the walker by `dt` seconds at `speed` world-units/second,
    /// staying inside `world`.
    pub fn step(&mut self, speed: f64, dt: f64, world: Rect, rng: &mut SimRng) {
        match self.model {
            MovementModel::Stationary => {}
            MovementModel::RandomWaypoint => {
                let dist = speed * dt;
                self.pos = self.pos.step_towards(self.target, dist);
                if self.pos == self.target {
                    self.target = uniform_in(world, rng);
                }
            }
            MovementModel::HotspotAttracted { .. } => {
                // Each crowd member owns a fixed "home" spot (stored in
                // `target`, drawn around the hotspot centre at spawn or
                // attraction time) and jitters around it at walking speed.
                // The crowd's spatial spread is therefore stable over time
                // — it neither collapses onto the centre nor disperses —
                // which is what makes hotspots splittable by map
                // partitioning at all.
                let step = speed * dt;
                if self.pos.distance(self.target) > step {
                    self.pos = self.pos.step_towards(self.target, step);
                } else {
                    self.pos = Point::new(
                        self.target.x + rng.uniform(-step, step),
                        self.target.y + rng.uniform(-step, step),
                    );
                }
            }
        }
        self.pos = world.clamp(self.pos);
    }

    /// Retargets the walker onto a hotspot (flash-crowd formation): the
    /// walker picks a personal home spot in the crowd and heads there.
    pub fn attract_to(&mut self, center: Point, spread: f64, world: Rect, rng: &mut SimRng) {
        self.model = MovementModel::HotspotAttracted { center, spread };
        self.target = gaussian_near(center, spread, world, rng);
    }

    /// Releases the walker back to random-waypoint wandering.
    pub fn release(&mut self, world: Rect, rng: &mut SimRng) {
        self.model = MovementModel::RandomWaypoint;
        self.target = uniform_in(world, rng);
    }
}

/// Uniform position inside a rectangle.
pub fn uniform_in(world: Rect, rng: &mut SimRng) -> Point {
    Point::new(
        rng.uniform(world.min().x, world.max().x),
        rng.uniform(world.min().y, world.max().y),
    )
}

/// Gaussian position around `center`, clamped into the world.
pub fn gaussian_near(center: Point, spread: f64, world: Rect, rng: &mut SimRng) -> Point {
    // Box–Muller via SimRng::normal is truncated at zero, so sample offsets
    // symmetrically instead.
    let dx = rng.normal(spread, spread) - spread;
    let dy = rng.normal(spread, spread) - spread;
    let sx = if rng.chance(0.5) { dx } else { -dx };
    let sy = if rng.chance(0.5) { dy } else { -dy };
    world.clamp(Point::new(center.x + sx, center.y + sy))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 800.0, 800.0)
    }

    #[test]
    fn walkers_stay_in_world() {
        let mut rng = SimRng::seed_from_u64(1);
        let models = [
            MovementModel::RandomWaypoint,
            MovementModel::HotspotAttracted {
                center: Point::new(790.0, 790.0),
                spread: 100.0,
            },
            MovementModel::Stationary,
        ];
        for model in models {
            let mut w = Walker::spawn(model, world(), &mut rng);
            for _ in 0..500 {
                w.step(50.0, 0.2, world(), &mut rng);
                assert!(
                    world().contains_closed(w.pos),
                    "{model:?} escaped at {}",
                    w.pos
                );
            }
        }
    }

    #[test]
    fn stationary_never_moves() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut w = Walker::spawn(MovementModel::Stationary, world(), &mut rng);
        let start = w.pos;
        for _ in 0..50 {
            w.step(100.0, 1.0, world(), &mut rng);
        }
        assert_eq!(w.pos, start);
    }

    #[test]
    fn waypoint_walker_reaches_target_and_retargets() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut w = Walker::spawn(MovementModel::RandomWaypoint, world(), &mut rng);
        let first_target = w.target;
        // Walk long enough to certainly arrive.
        for _ in 0..200 {
            w.step(100.0, 1.0, world(), &mut rng);
        }
        assert_ne!(
            w.target, first_target,
            "a new waypoint must be chosen on arrival"
        );
    }

    #[test]
    fn hotspot_crowd_concentrates() {
        let mut rng = SimRng::seed_from_u64(4);
        let center = Point::new(480.0, 400.0);
        let spread = 100.0;
        let mut positions = Vec::new();
        for _ in 0..300 {
            let mut w = Walker::spawn(
                MovementModel::HotspotAttracted { center, spread },
                world(),
                &mut rng,
            );
            for _ in 0..20 {
                w.step(25.0, 0.2, world(), &mut rng);
            }
            positions.push(w.pos);
        }
        let near = positions
            .iter()
            .filter(|p| p.distance(center) < 2.5 * spread)
            .count();
        assert!(
            near > 250,
            "crowd must concentrate near the hotspot: {near}/300"
        );
    }

    #[test]
    fn attract_and_release_switch_models() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut w = Walker::spawn(MovementModel::RandomWaypoint, world(), &mut rng);
        w.attract_to(Point::new(100.0, 100.0), 50.0, world(), &mut rng);
        assert!(matches!(w.model, MovementModel::HotspotAttracted { .. }));
        w.release(world(), &mut rng);
        assert!(matches!(w.model, MovementModel::RandomWaypoint));
    }

    #[test]
    fn gaussian_near_centres_correctly() {
        let mut rng = SimRng::seed_from_u64(6);
        let center = Point::new(400.0, 400.0);
        let n = 2000;
        let mut sum = Point::ORIGIN;
        for _ in 0..n {
            let p = gaussian_near(center, 50.0, world(), &mut rng);
            sum = Point::new(sum.x + p.x, sum.y + p.y);
        }
        let mean = Point::new(sum.x / n as f64, sum.y / n as f64);
        assert!(
            mean.distance(center) < 10.0,
            "mean {mean} drifted from {center}"
        );
    }

    #[test]
    fn spawn_is_deterministic_per_seed() {
        let spawn = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            Walker::spawn(MovementModel::RandomWaypoint, world(), &mut rng).pos
        };
        assert_eq!(spawn(7), spawn(7));
        assert_ne!(spawn(7), spawn(8));
    }
}
