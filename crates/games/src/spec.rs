//! Per-game workload parameterisations.
//!
//! The paper validated Matrix with three real games — BzFlag (tank
//! shooter), Quake 2 (FPS) and Daimonin (RPG). We cannot link the real
//! games, but the middleware only observes their *traffic shape*: world
//! size, visibility radius, update rates, packet sizes, movement speed and
//! server work per packet. Each [`GameSpec`] captures that shape; the
//! values are drawn from the games' public documentation and typical
//! gameplay, and the experiments sweep around them.

use matrix_geometry::{Metric, Point, Rect};
use serde::{Deserialize, Serialize};

/// Traffic-shape parameters of one game title.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameSpec {
    /// Human-readable title.
    pub name: String,
    /// The game world rectangle.
    pub world: Rect,
    /// Radius of visibility (the `R` of Equation 1).
    pub radius: f64,
    /// Per-client area-of-interest radius for update fan-out. Routing
    /// between servers stays conservative at `radius`; what each client
    /// actually renders can be narrower. `0.0` means "same as `radius`".
    pub vision_radius: f64,
    /// Concentric vision-ring boundaries (ascending, world units; empty
    /// = single binary `vision_radius`). When set, the outermost ring is
    /// the effective AOI and outer tiers are sampled per
    /// `ring_sample_rates`.
    pub ring_radii: Vec<f64>,
    /// Per-ring sampling rates parallel to `ring_radii` (1 = every
    /// event; the innermost ring always delivers in full).
    pub ring_sample_rates: Vec<u32>,
    /// Density-driven interest-grid resolution auto-tuning.
    pub grid_autotune: bool,
    /// Dead-reckoning suppression: ship per-entity velocities and skip
    /// updates while receivers can extrapolate within `error_budgets`.
    pub predict: bool,
    /// Per-ring receiver error budgets (world units) parallel to
    /// `ring_radii`; `0.0` = never suppress in that ring. The near ring
    /// is always pinned to 0 (every event).
    pub error_budgets: Vec<f64>,
    /// Sliding-window length of the velocity estimator feeding
    /// prediction.
    pub motion_window: u32,
    /// Ring index from which updates ship position-only (`0` = full
    /// payloads everywhere).
    pub position_only_ring: u8,
    /// Number of shards the dissemination flush is partitioned into
    /// (1 = the sequential path). Purely a throughput knob — the flush
    /// output is byte-identical for any value.
    pub flush_workers: u32,
    /// In-game distance metric.
    pub metric: Metric,
    /// Player movement speed, world units per second.
    pub move_speed: f64,
    /// Client position-update rate, packets per second.
    pub update_rate_hz: f64,
    /// Client action rate (shots, spells, chat), packets per second.
    pub action_rate_hz: f64,
    /// Movement packet payload, bytes.
    pub move_bytes: usize,
    /// Action packet payload, bytes.
    pub action_bytes: usize,
    /// Per-client cap on items per update-batch flush (`0` = unlimited):
    /// how many events the game is willing to describe to one client per
    /// flush interval before degrading the periphery.
    pub max_updates_per_flush: u32,
    /// Per-client downlink budget in bytes per flush (`0` = unlimited).
    pub client_budget_bytes: u32,
    /// Per-client session state carried across a server switch, bytes.
    pub client_state_bytes: u64,
    /// Dynamic global state shipped to a freshly split server, bytes.
    pub global_state_bytes: u64,
    /// Game-server processing capacity, work units per second.
    pub server_capacity: f64,
    /// Work units charged per processed client packet.
    pub packet_work: f64,
    /// Work units charged per consistency update arriving from a peer
    /// server (applying a remote state delta is much cheaper than
    /// servicing a client connection).
    pub remote_work: f64,
    /// Extra work units per local client that must receive the resulting
    /// update (the fan-out term that makes hotspots superlinear).
    pub fanout_work: f64,
}

impl GameSpec {
    /// BzFlag: the paper's Figure-2 game. Open 2-D battlefield, fast
    /// tanks, moderate tick rate, every tank sees a large slice of the
    /// field.
    pub fn bzflag() -> GameSpec {
        GameSpec {
            name: "bzflag".into(),
            world: Rect::from_coords(0.0, 0.0, 800.0, 800.0),
            radius: 100.0,
            vision_radius: 100.0,
            ring_radii: Vec::new(),
            ring_sample_rates: Vec::new(),
            grid_autotune: false,
            predict: false,
            error_budgets: Vec::new(),
            motion_window: 4,
            position_only_ring: 0,
            flush_workers: 1,
            metric: Metric::Euclidean,
            move_speed: 25.0,
            update_rate_hz: 5.0,
            action_rate_hz: 1.0,
            move_bytes: 32,
            action_bytes: 90,
            max_updates_per_flush: 64,
            client_budget_bytes: 0,
            client_state_bytes: 1_500,
            global_state_bytes: 2_000_000,
            server_capacity: 3_000.0,
            packet_work: 1.0,
            remote_work: 0.08,
            fanout_work: 0.004,
        }
    }

    /// Quake 2: small arenas, very fast movement, high tick rate, short
    /// visibility.
    pub fn quake2() -> GameSpec {
        GameSpec {
            name: "quake2".into(),
            world: Rect::from_coords(0.0, 0.0, 2_000.0, 2_000.0),
            radius: 250.0,
            vision_radius: 250.0,
            ring_radii: Vec::new(),
            ring_sample_rates: Vec::new(),
            grid_autotune: false,
            predict: false,
            error_budgets: Vec::new(),
            motion_window: 4,
            position_only_ring: 0,
            flush_workers: 1,
            metric: Metric::Euclidean,
            move_speed: 300.0,
            update_rate_hz: 10.0,
            action_rate_hz: 2.0,
            move_bytes: 40,
            action_bytes: 60,
            max_updates_per_flush: 128,
            client_budget_bytes: 0,
            client_state_bytes: 900,
            global_state_bytes: 1_000_000,
            server_capacity: 4_500.0,
            packet_work: 1.0,
            remote_work: 0.06,
            fanout_work: 0.003,
        }
    }

    /// Daimonin: tile-based open-world RPG. Huge world, slow movement,
    /// low update rate, lots of per-client state.
    pub fn daimonin() -> GameSpec {
        GameSpec {
            name: "daimonin".into(),
            world: Rect::from_coords(0.0, 0.0, 10_000.0, 10_000.0),
            radius: 350.0,
            vision_radius: 350.0,
            ring_radii: Vec::new(),
            ring_sample_rates: Vec::new(),
            grid_autotune: false,
            predict: false,
            error_budgets: Vec::new(),
            motion_window: 4,
            position_only_ring: 0,
            flush_workers: 1,
            metric: Metric::Chebyshev, // tile-based visibility
            move_speed: 40.0,
            update_rate_hz: 2.0,
            action_rate_hz: 0.5,
            move_bytes: 24,
            action_bytes: 200,
            max_updates_per_flush: 32,
            client_budget_bytes: 0,
            client_state_bytes: 8_000,
            global_state_bytes: 12_000_000,
            server_capacity: 1_200.0,
            packet_work: 1.0,
            remote_work: 0.15,
            fanout_work: 0.006,
        }
    }

    /// Racer: a synthetic high-velocity workload that stresses the
    /// motion model — fast vehicles on long straight runs (waypoint
    /// movement at speed), high update rate, compact world so everyone
    /// is inside everyone's outer ring. Not one of the paper's games;
    /// it exists because dead reckoning's payoff is proportional to how
    /// *predictable* motion is, and racing traffic is the canonical
    /// best case the E15 experiment measures against.
    pub fn racer() -> GameSpec {
        GameSpec {
            name: "racer".into(),
            world: Rect::from_coords(0.0, 0.0, 600.0, 600.0),
            radius: 150.0,
            vision_radius: 150.0,
            ring_radii: Vec::new(),
            ring_sample_rates: Vec::new(),
            grid_autotune: false,
            predict: false,
            error_budgets: Vec::new(),
            motion_window: 4,
            position_only_ring: 0,
            flush_workers: 1,
            metric: Metric::Euclidean,
            move_speed: 120.0,
            update_rate_hz: 10.0,
            action_rate_hz: 0.2,
            move_bytes: 24,
            action_bytes: 40,
            max_updates_per_flush: 128,
            client_budget_bytes: 0,
            client_state_bytes: 600,
            global_state_bytes: 500_000,
            server_capacity: 6_000.0,
            packet_work: 1.0,
            remote_work: 0.05,
            fanout_work: 0.002,
        }
    }

    /// All three paper games, for per-game sweeps (the synthetic racer
    /// stays out: it models no real title).
    pub fn all() -> Vec<GameSpec> {
        vec![GameSpec::bzflag(), GameSpec::quake2(), GameSpec::daimonin()]
    }

    /// The effective client vision radius (falls back to `radius`).
    /// With rings configured, the outermost ring takes this role.
    pub fn effective_vision_radius(&self) -> f64 {
        if let Some(outer) = self.ring_radii.last() {
            return *outer;
        }
        if self.vision_radius > 0.0 {
            self.vision_radius
        } else {
            self.radius
        }
    }

    /// The recommended ring tiers for this game: near (full fidelity) at
    /// 35% of the vision radius, mid at 65% sampled 1-in-2, far at the
    /// full radius sampled 1-in-4. The receiver set is identical to the
    /// binary radius — only the outer tiers' update *rate* drops, which
    /// is where a dense crowd's periphery bytes go.
    pub fn ring_tiers(&self) -> (Vec<f64>, Vec<u32>) {
        let vision = if self.vision_radius > 0.0 {
            self.vision_radius
        } else {
            self.radius
        };
        (vec![vision * 0.35, vision * 0.65, vision], vec![1, 2, 4])
    }

    /// This spec with the recommended ring tiers enabled (used by the
    /// `rings` experiment; presets default to the binary radius).
    pub fn with_rings(mut self) -> GameSpec {
        let (radii, rates) = self.ring_tiers();
        self.ring_radii = radii;
        self.ring_sample_rates = rates;
        self
    }

    /// This spec with density-driven grid auto-tuning enabled.
    pub fn with_grid_autotune(mut self) -> GameSpec {
        self.grid_autotune = true;
        self
    }

    /// This spec with the dissemination flush sharded across `workers`
    /// shards (clamped to ≥ 1). Output is byte-identical for any
    /// value — this only changes how the flush work is partitioned
    /// (and, under the async runtime, parallelised).
    pub fn with_flush_workers(mut self, workers: u32) -> GameSpec {
        self.flush_workers = workers.max(1);
        self
    }

    /// The recommended wire lattice for dead-reckoning velocities:
    /// the largest power of two at or below ~1.5% of the game's
    /// nominal movement speed (floored at the default origin lattice,
    /// `1/256`). Relative precision is what matters — a racer at
    /// 120 u/s is served by a 1 u/s lattice exactly as a walker at
    /// 1.5 u/s is by 1/64 — and the coarser the lattice, the shorter
    /// the velocity tag prints on the JSON codec. The quantization
    /// drift this admits (`q/√2` per second) stays a small fraction of
    /// [`GameSpec::recommended_error_budgets`] over any realistic
    /// basis lifetime, and the sender's receiver model admits the
    /// snapped value, so the per-ring budgets remain hard bounds
    /// regardless.
    pub fn velocity_quantum(&self) -> f64 {
        let target: f64 = self.move_speed / 64.0;
        let floor = 1.0 / 256.0;
        if !target.is_finite() || target <= floor {
            return floor;
        }
        // Largest power of two ≤ target: exact in f64 for any
        // representable magnitude.
        f64::powi(2.0, target.log2().floor() as i32).max(floor)
    }

    /// The recommended per-ring error budgets for this game's ring
    /// tiers: 0 for the near ring (every event), and 5% of each outer
    /// ring's radius beyond it — an error far below what that ring's
    /// own sampling rate already tolerates, scaled to how closely the
    /// player scrutinises each tier.
    pub fn recommended_error_budgets(&self) -> Vec<f64> {
        let (radii, _) = self.ring_tiers();
        radii
            .iter()
            .enumerate()
            .map(|(i, r)| if i == 0 { 0.0 } else { r * 0.05 })
            .collect()
    }

    /// This spec with predictive dissemination enabled on the
    /// recommended ring tiers and error budgets (used by the `predict`
    /// experiment; presets default to prediction off). Rings are
    /// enabled too if they were not already — prediction's budgets are
    /// per ring.
    pub fn with_predict(mut self) -> GameSpec {
        if self.ring_radii.is_empty() {
            self = self.with_rings();
        }
        self.predict = true;
        self.error_budgets = self.recommended_error_budgets();
        self
    }

    /// Interval between a client's position updates.
    pub fn update_interval_secs(&self) -> f64 {
        1.0 / self.update_rate_hz
    }

    /// Probability that a given update is accompanied by an action.
    pub fn action_probability(&self) -> f64 {
        (self.action_rate_hz / self.update_rate_hz).clamp(0.0, 1.0)
    }

    /// The work one client packet costs a server hosting
    /// `local_receivers` clients within visibility range.
    pub fn work_for_packet(&self, local_receivers: usize) -> f64 {
        self.packet_work + self.fanout_work * local_receivers as f64
    }

    /// The work one peer-delivered consistency update costs.
    pub fn work_for_remote(&self, local_receivers: usize) -> f64 {
        self.remote_work + self.fanout_work * local_receivers as f64
    }

    /// A deterministic hotspot location for experiments: offset from the
    /// world centre so the paper's split-to-left sequence leaves the
    /// hotspot on the retained (right) side first, as in Figure 2.
    pub fn hotspot_a(&self) -> Point {
        let w = self.world;
        Point::new(w.min().x + w.width() * 0.6, w.min().y + w.height() * 0.5)
    }

    /// The second hotspot position ("reintroduced at a different position
    /// in the world", §4.1).
    pub fn hotspot_b(&self) -> Point {
        let w = self.world;
        Point::new(w.min().x + w.width() * 0.2, w.min().y + w.height() * 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_shapes() {
        for spec in GameSpec::all() {
            assert!(spec.radius > 0.0, "{}", spec.name);
            assert!(
                spec.effective_vision_radius() <= spec.radius,
                "{}: clients must not see beyond the consistency radius",
                spec.name
            );
            assert!(
                spec.radius < spec.world.width() / 2.0,
                "{}: radius dominates world",
                spec.name
            );
            assert!(spec.move_speed > 0.0);
            assert!(spec.update_rate_hz > 0.0);
            assert!(spec.server_capacity > 0.0);
            assert!(spec.world.contains(spec.hotspot_a()));
            assert!(spec.world.contains(spec.hotspot_b()));
        }
    }

    #[test]
    fn presets_bound_per_client_dissemination() {
        for spec in GameSpec::all() {
            assert!(
                spec.max_updates_per_flush > 0,
                "{}: dense crowds need a per-flush cap to degrade gracefully",
                spec.name
            );
        }
        // Faster-paced games tolerate more items per flush.
        assert!(
            GameSpec::quake2().max_updates_per_flush > GameSpec::daimonin().max_updates_per_flush
        );
    }

    #[test]
    fn ring_tiers_are_ascending_and_preserve_the_aoi() {
        for spec in GameSpec::all() {
            let binary_vision = spec.effective_vision_radius();
            let ringed = spec.clone().with_rings();
            let (radii, rates) = (ringed.ring_radii.clone(), ringed.ring_sample_rates.clone());
            assert_eq!(radii.len(), rates.len(), "{}", spec.name);
            assert!(
                radii.windows(2).all(|w| w[0] < w[1]),
                "{}: tiers ascend",
                spec.name
            );
            assert_eq!(
                ringed.effective_vision_radius(),
                binary_vision,
                "{}: the outermost ring preserves the AOI, so the \
                 receiver set is unchanged — only fidelity tiers",
                spec.name
            );
            assert_eq!(rates[0], 1, "{}: near ring delivers in full", spec.name);
            assert!(
                rates.windows(2).all(|w| w[0] <= w[1]),
                "{}: farther rings sample at least as hard",
                spec.name
            );
        }
    }

    #[test]
    fn presets_default_to_the_binary_radius() {
        for spec in GameSpec::all() {
            assert!(spec.ring_radii.is_empty(), "{}", spec.name);
            assert!(!spec.grid_autotune, "{}", spec.name);
            assert!(!spec.predict, "{}: prediction is opt-in", spec.name);
            assert_eq!(spec.flush_workers, 1, "{}: sharding is opt-in", spec.name);
        }
        assert_eq!(
            GameSpec::bzflag().with_flush_workers(0).flush_workers,
            1,
            "worker counts clamp to at least one shard"
        );
        assert_eq!(GameSpec::bzflag().with_flush_workers(4).flush_workers, 4);
    }

    #[test]
    fn racer_is_a_sane_high_velocity_workload() {
        let spec = GameSpec::racer();
        assert!(
            spec.move_speed > GameSpec::bzflag().move_speed * 2.0,
            "racers must be fast enough to stress the motion model"
        );
        assert!(spec.update_rate_hz >= 10.0);
        assert!(spec.world.contains(spec.hotspot_a()));
        assert!(spec.effective_vision_radius() <= spec.radius);
        assert!(!GameSpec::all().iter().any(|s| s.name == "racer"));
    }

    #[test]
    fn with_predict_enables_rings_and_pins_the_near_budget() {
        let spec = GameSpec::racer().with_predict();
        assert!(spec.predict);
        assert_eq!(spec.error_budgets.len(), spec.ring_radii.len());
        assert_eq!(spec.error_budgets[0], 0.0, "near ring: every event");
        assert!(
            spec.error_budgets[1..].iter().all(|b| *b > 0.0),
            "outer rings get real budgets: {:?}",
            spec.error_budgets
        );
        // Budgets stay far below the ring radii they grade.
        for (b, r) in spec.error_budgets.iter().zip(&spec.ring_radii) {
            assert!(b < r, "budget {b} must be small against ring {r}");
        }
        // Rings already configured are kept.
        let custom = GameSpec::bzflag().with_rings().with_predict();
        assert_eq!(
            custom.ring_radii,
            GameSpec::bzflag().with_rings().ring_radii
        );
    }

    #[test]
    fn hotspots_are_distinct() {
        let spec = GameSpec::bzflag();
        assert!(spec.hotspot_a().distance(spec.hotspot_b()) > spec.radius);
    }

    #[test]
    fn hotspot_a_is_right_of_centre() {
        // Figure 2's narrative requires the first split (left half handed
        // off) to miss the hotspot.
        let spec = GameSpec::bzflag();
        assert!(spec.hotspot_a().x > spec.world.center().x);
    }

    #[test]
    fn action_probability_is_a_probability() {
        for spec in GameSpec::all() {
            let p = spec.action_probability();
            assert!((0.0..=1.0).contains(&p), "{}: {p}", spec.name);
        }
    }

    #[test]
    fn fanout_work_makes_hotspots_superlinear() {
        let spec = GameSpec::bzflag();
        let sparse = spec.work_for_packet(5);
        let dense = spec.work_for_packet(600);
        assert!(dense > 2.0 * sparse);
    }

    #[test]
    fn overload_calibration_brackets_300_clients() {
        // The Figure-2 threshold: ~300 co-located clients must exceed one
        // server's capacity, while ~150 dispersed clients must not.
        let spec = GameSpec::bzflag();
        let rate_300 = 300.0 * spec.update_rate_hz * spec.work_for_packet(300);
        assert!(
            rate_300 > spec.server_capacity,
            "300 hotspot clients must overload: {rate_300} vs {}",
            spec.server_capacity
        );
        let rate_150 = 150.0 * spec.update_rate_hz * spec.work_for_packet(20);
        assert!(
            rate_150 < spec.server_capacity,
            "150 dispersed clients must fit: {rate_150} vs {}",
            spec.server_capacity
        );
    }
}
