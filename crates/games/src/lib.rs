//! Synthetic MMOG workloads for exercising the Matrix middleware.
//!
//! The paper validated Matrix with BzFlag, Quake 2 and Daimonin. The
//! middleware never inspects game logic — it sees spatially tagged
//! packets, load reports and redirects — so these emulations reproduce
//! each game's *traffic shape* ([`GameSpec`]), movement behaviour
//! ([`MovementModel`], [`Walker`]) and the scripted population dynamics of
//! the evaluation ([`WorkloadSchedule`], including the exact Figure-2
//! hotspot script).
//!
//! # Example
//!
//! ```
//! use matrix_games::{ClientPop, GameSpec, Placement, PopulationEvent, WorkloadSchedule};
//! use matrix_geometry::ServerId;
//!
//! let spec = GameSpec::bzflag();
//! let schedule = WorkloadSchedule::figure2(&spec, 100);
//! assert_eq!(schedule.total_joins(), 1300); // 100 background + 2 × 600 hotspot
//!
//! let mut pop = ClientPop::new(spec, 42);
//! pop.apply(PopulationEvent::Join { n: 10, placement: Placement::Uniform }, ServerId(1));
//! assert_eq!(pop.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod movement;
mod population;
mod schedule;
mod spec;

pub use movement::{gaussian_near, uniform_in, MovementModel, Walker};
pub use population::{ClientPop, ClientSim};
pub use schedule::{Placement, PopulationEvent, WorkloadSchedule};
pub use spec::GameSpec;
