//! Workload schedules: scripted population changes over a run.
//!
//! §4.1's experiment is a script — "a hotspot of 600 clients ... was
//! introduced at around the 10 second mark for about 75 seconds, after
//! which the entire hotspot gradually disappeared (indicated by 200
//! clients disappearing at fixed intervals). The hotspot was reintroduced
//! at a different position in the world at 170 seconds, for about 50
//! seconds, and then gradually removed." [`WorkloadSchedule::figure2`]
//! encodes exactly that script; other constructors cover steady load and
//! flash-crowd variants for the remaining experiments.

use crate::spec::GameSpec;
use matrix_geometry::Point;
use matrix_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Where scripted joiners appear.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Uniformly over the world, wandering by random waypoint.
    Uniform,
    /// Gaussian crowd around a point, attracted to it thereafter.
    Hotspot {
        /// Crowd centre.
        center: Point,
        /// Standard deviation of the crowd.
        spread: f64,
    },
}

/// One scripted population event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopulationEvent {
    /// `n` clients join with the given placement.
    Join {
        /// Number of clients joining.
        n: u32,
        /// Where they appear.
        placement: Placement,
    },
    /// `n` clients leave; hotspot members leave first when `from_hotspot`
    /// (the paper's drain pattern).
    Leave {
        /// Number of clients leaving.
        n: u32,
        /// Prefer draining hotspot members.
        from_hotspot: bool,
    },
}

/// A time-ordered script of population events.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadSchedule {
    events: Vec<(SimTime, PopulationEvent)>,
    /// When the run ends.
    pub horizon: SimTime,
}

impl WorkloadSchedule {
    /// An empty schedule with the given horizon.
    pub fn new(horizon: SimTime) -> WorkloadSchedule {
        WorkloadSchedule {
            events: Vec::new(),
            horizon,
        }
    }

    /// Appends an event (kept sorted by time).
    pub fn at(mut self, t: SimTime, event: PopulationEvent) -> WorkloadSchedule {
        self.events.push((t, event));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// The scripted events in time order.
    pub fn events(&self) -> &[(SimTime, PopulationEvent)] {
        &self.events
    }

    /// Total clients ever joined by the script.
    pub fn total_joins(&self) -> u32 {
        self.events
            .iter()
            .map(|(_, e)| match e {
                PopulationEvent::Join { n, .. } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total clients removed by the script.
    pub fn total_leaves(&self) -> u32 {
        self.events
            .iter()
            .map(|(_, e)| match e {
                PopulationEvent::Leave { n, .. } => *n,
                _ => 0,
            })
            .sum()
    }

    /// The Figure-2 script for a game: `background` wandering clients from
    /// t=0, a 600-client hotspot at t=10 drained 200-at-a-time from t=75,
    /// and a second 600-client hotspot elsewhere at t=170 drained from
    /// t=220.
    pub fn figure2(spec: &GameSpec, background: u32) -> WorkloadSchedule {
        let spread = 2.0 * spec.radius; // crowd a couple of visibility radii wide
        let hotspot = |center| Placement::Hotspot { center, spread };
        WorkloadSchedule::new(SimTime::from_secs(300))
            .at(
                SimTime::ZERO,
                PopulationEvent::Join {
                    n: background,
                    placement: Placement::Uniform,
                },
            )
            // First hotspot: 600 clients at A.
            .at(
                SimTime::from_secs(10),
                PopulationEvent::Join {
                    n: 600,
                    placement: hotspot(spec.hotspot_a()),
                },
            )
            .at(
                SimTime::from_secs(75),
                PopulationEvent::Leave {
                    n: 200,
                    from_hotspot: true,
                },
            )
            .at(
                SimTime::from_secs(95),
                PopulationEvent::Leave {
                    n: 200,
                    from_hotspot: true,
                },
            )
            .at(
                SimTime::from_secs(115),
                PopulationEvent::Leave {
                    n: 200,
                    from_hotspot: true,
                },
            )
            // Second hotspot: 600 clients at B.
            .at(
                SimTime::from_secs(170),
                PopulationEvent::Join {
                    n: 600,
                    placement: hotspot(spec.hotspot_b()),
                },
            )
            .at(
                SimTime::from_secs(220),
                PopulationEvent::Leave {
                    n: 200,
                    from_hotspot: true,
                },
            )
            .at(
                SimTime::from_secs(235),
                PopulationEvent::Leave {
                    n: 200,
                    from_hotspot: true,
                },
            )
            .at(
                SimTime::from_secs(250),
                PopulationEvent::Leave {
                    n: 200,
                    from_hotspot: true,
                },
            )
    }

    /// A steady uniform population, for microbenchmarks and calibration.
    pub fn steady(n: u32, horizon: SimTime) -> WorkloadSchedule {
        WorkloadSchedule::new(horizon).at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n,
                placement: Placement::Uniform,
            },
        )
    }

    /// A single flash crowd: `n` clients slam one point at `at` and stay.
    pub fn flash_crowd(spec: &GameSpec, background: u32, n: u32, at: SimTime) -> WorkloadSchedule {
        WorkloadSchedule::new(SimTime::from_secs(at.as_secs_f64() as u64 + 120))
            .at(
                SimTime::ZERO,
                PopulationEvent::Join {
                    n: background,
                    placement: Placement::Uniform,
                },
            )
            .at(
                at,
                PopulationEvent::Join {
                    n,
                    placement: Placement::Hotspot {
                        center: spec.hotspot_a(),
                        spread: 2.0 * spec.radius,
                    },
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_script_matches_the_paper() {
        let spec = GameSpec::bzflag();
        let s = WorkloadSchedule::figure2(&spec, 100);
        assert_eq!(s.total_joins(), 100 + 600 + 600);
        assert_eq!(s.total_leaves(), 1200);
        // Hotspot joins at t=10 and t=170.
        let hotspot_joins: Vec<u64> = s
            .events()
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    PopulationEvent::Join {
                        placement: Placement::Hotspot { .. },
                        ..
                    }
                )
            })
            .map(|(t, _)| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(hotspot_joins, vec![10, 170]);
        assert_eq!(s.horizon, SimTime::from_secs(300));
    }

    #[test]
    fn events_are_time_ordered_regardless_of_insertion() {
        let s = WorkloadSchedule::new(SimTime::from_secs(10))
            .at(
                SimTime::from_secs(5),
                PopulationEvent::Leave {
                    n: 1,
                    from_hotspot: false,
                },
            )
            .at(
                SimTime::from_secs(1),
                PopulationEvent::Join {
                    n: 1,
                    placement: Placement::Uniform,
                },
            );
        let times: Vec<u64> = s.events().iter().map(|(t, _)| t.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn steady_schedule_is_one_join() {
        let s = WorkloadSchedule::steady(500, SimTime::from_secs(60));
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.total_joins(), 500);
        assert_eq!(s.total_leaves(), 0);
    }

    #[test]
    fn flash_crowd_joins_at_requested_time() {
        let spec = GameSpec::quake2();
        let s = WorkloadSchedule::flash_crowd(&spec, 50, 400, SimTime::from_secs(30));
        assert_eq!(s.total_joins(), 450);
        assert!(s.horizon > SimTime::from_secs(30));
    }
}
