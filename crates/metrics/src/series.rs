//! Named time series of `(time, value)` samples.

use serde::{Deserialize, Serialize};

/// An append-only series of `(time, value)` samples with a name, used for
/// every "X vs time" figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples are expected in non-decreasing time order;
    /// out-of-order samples are accepted but render poorly.
    pub fn push(&mut self, time: f64, value: f64) {
        self.points.push((time, value));
    }

    /// The raw samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Most recent value.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Largest value in the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| match m {
                None => Some(v),
                Some(m) => Some(m.max(v)),
            })
    }

    /// Smallest value in the series.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| match m {
                None => Some(v),
                Some(m) => Some(m.min(v)),
            })
    }

    /// Mean of the values (unweighted by time).
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Time range `(first, last)` covered by the samples.
    pub fn time_range(&self) -> Option<(f64, f64)> {
        Some((self.points.first()?.0, self.points.last()?.0))
    }

    /// Value at `time` by step interpolation (the value of the latest
    /// sample at or before `time`).
    pub fn value_at(&self, time: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(t, _)| t <= time);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Integral of the series over its time range (trapezoidal), e.g. total
    /// byte-seconds of queue backlog.
    pub fn integral(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (t0, v0) = w[0];
                let (t1, v1) = w[1];
                (t1 - t0) * (v0 + v1) / 2.0
            })
            .sum()
    }

    /// Fraction of samples whose value is at or above `threshold`.
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let n = self.points.iter().filter(|&&(_, v)| v >= threshold).count();
        n as f64 / self.points.len() as f64
    }

    /// Serialises as CSV rows `time,value` with a `# name` header comment.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\ntime,value\n", self.name);
        for (t, v) in &self.points {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut s = TimeSeries::new("ramp");
        for t in 0..=10 {
            s.push(t as f64, (t * 2) as f64);
        }
        s
    }

    #[test]
    fn basic_accessors() {
        let s = ramp();
        assert_eq!(s.name(), "ramp");
        assert_eq!(s.len(), 11);
        assert_eq!(s.last_value(), Some(20.0));
        assert_eq!(s.max_value(), Some(20.0));
        assert_eq!(s.min_value(), Some(0.0));
        assert_eq!(s.mean(), Some(10.0));
        assert_eq!(s.time_range(), Some((0.0, 10.0)));
    }

    #[test]
    fn empty_series_yields_none() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.last_value(), None);
        assert_eq!(s.max_value(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.value_at(5.0), None);
        assert_eq!(s.integral(), 0.0);
    }

    #[test]
    fn value_at_steps() {
        let s = ramp();
        assert_eq!(s.value_at(3.5), Some(6.0));
        assert_eq!(s.value_at(0.0), Some(0.0));
        assert_eq!(s.value_at(-1.0), None);
        assert_eq!(s.value_at(99.0), Some(20.0));
    }

    #[test]
    fn integral_of_ramp() {
        // y = 2t on [0,10]: integral = t² = 100.
        assert!((ramp().integral() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_at_or_above_threshold() {
        let s = ramp(); // values 0,2,..,20
        assert_eq!(s.fraction_at_or_above(10.0), 6.0 / 11.0);
        assert_eq!(s.fraction_at_or_above(100.0), 0.0);
        assert_eq!(s.fraction_at_or_above(-1.0), 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = ramp().to_csv();
        assert!(csv.starts_with("# ramp\ntime,value\n"));
        assert_eq!(csv.lines().count(), 2 + 11);
    }
}
