//! Aligned text tables for experiment results.

use serde::{Deserialize, Serialize};

/// A simple result table rendered as aligned monospace text or CSV —
/// the format every "Table N" reproduction prints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn push_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for building a row from displayable values.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.push_row(&cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned text with a title line and a rule under the
    /// header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:w$}", h, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (title as a `#` comment).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Results", &["game", "servers", "peak queue"]);
        t.push_row(&["bzflag".into(), "4".into(), "123.4".into()]);
        t.push_row(&["quake2".into(), "3".into(), "99.9".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("## Results"));
        let lines: Vec<&str> = text.lines().collect();
        // header + rule + 2 rows + title line
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("game  "));
        assert!(lines[3].starts_with("bzflag"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(&["only".into()]);
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("only"));
    }

    #[test]
    fn long_rows_are_truncated() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(&["x".into(), "dropped".into()]);
        assert!(!t.render().contains("dropped"));
    }

    #[test]
    fn csv_round_trip_structure() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("# Results\n"));
        assert!(csv.contains("game,servers,peak queue"));
        assert!(csv.contains("bzflag,4,123.4"));
    }

    #[test]
    fn display_row_builder() {
        let mut t = Table::new("t", &["n", "x"]);
        t.push_display_row(&[&7, &3.25]);
        assert!(t.render().contains('7'));
        assert!(t.render().contains("3.25"));
    }
}
