//! Terminal line charts — the stand-in for the paper's figures.

use crate::TimeSeries;

/// Glyphs used for the first eight series of a chart.
const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// Renders one or more [`TimeSeries`] as an ASCII line chart with axes,
/// value labels and a legend.
///
/// Charts give the experiment binaries visual output comparable to the
/// paper's figures without any plotting dependency; the underlying CSV is
/// also emitted for external tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsciiChart {
    width: usize,
    height: usize,
}

impl AsciiChart {
    /// Creates a chart canvas of `width × height` characters (plot area,
    /// excluding labels). Minimum useful size is about 20×5.
    pub fn new(width: usize, height: usize) -> AsciiChart {
        AsciiChart {
            width: width.max(10),
            height: height.max(3),
        }
    }

    /// Renders the chart. Series are overlaid with distinct glyphs; the
    /// legend maps glyphs to series names.
    pub fn render(&self, series: &[&TimeSeries]) -> String {
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        let mut v_min: f64 = 0.0; // charts anchor at zero like the paper's
        let mut v_max = f64::NEG_INFINITY;
        for s in series {
            if let Some((a, b)) = s.time_range() {
                t_min = t_min.min(a);
                t_max = t_max.max(b);
            }
            if let Some(m) = s.max_value() {
                v_max = v_max.max(m);
            }
            if let Some(m) = s.min_value() {
                v_min = v_min.min(m);
            }
        }
        if !t_min.is_finite() || !t_max.is_finite() || !v_max.is_finite() {
            return String::from("(no data)\n");
        }
        if t_max <= t_min {
            t_max = t_min + 1.0;
        }
        if v_max <= v_min {
            v_max = v_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(t, v) in s.points() {
                let x = ((t - t_min) / (t_max - t_min) * (self.width - 1) as f64).round() as usize;
                let y = ((v - v_min) / (v_max - v_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - y.min(self.height - 1);
                let col = x.min(self.width - 1);
                // Later series overdraw earlier ones on collisions.
                grid[row][col] = glyph;
            }
        }

        let label_w = 10;
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let frac = 1.0 - i as f64 / (self.height - 1) as f64;
            let v = v_min + frac * (v_max - v_min);
            // Label every other row to reduce noise.
            if i % 2 == 0 {
                out.push_str(&format!("{:>label_w$.1} |", v));
            } else {
                out.push_str(&format!("{:>label_w$} |", ""));
            }
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>label_w$} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>label_w$}  {:<w2$.1}{:>w2$.1}\n",
            "t(s)",
            t_min,
            t_max,
            w2 = self.width / 2
        ));
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], s.name()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_renders_placeholder() {
        let chart = AsciiChart::new(40, 10);
        assert_eq!(chart.render(&[]), "(no data)\n");
        let empty = TimeSeries::new("nothing");
        assert_eq!(chart.render(&[&empty]), "(no data)\n");
    }

    #[test]
    fn single_series_renders_with_legend() {
        let mut s = TimeSeries::new("load");
        for t in 0..50 {
            s.push(t as f64, (t % 10) as f64);
        }
        let out = AsciiChart::new(60, 12).render(&[&s]);
        assert!(out.contains("* load"));
        assert!(out.contains('|'));
        assert!(out.contains('*'));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        for t in 0..10 {
            a.push(t as f64, 1.0);
            b.push(t as f64, 9.0);
        }
        let out = AsciiChart::new(30, 8).render(&[&a, &b]);
        assert!(out.contains("* a"));
        assert!(out.contains("+ b"));
        assert!(out.contains('+'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut s = TimeSeries::new("flat");
        s.push(0.0, 5.0);
        s.push(1.0, 5.0);
        let out = AsciiChart::new(20, 5).render(&[&s]);
        assert!(out.contains("flat"));
    }

    #[test]
    fn single_point_series_renders() {
        let mut s = TimeSeries::new("dot");
        s.push(3.0, 4.0);
        let out = AsciiChart::new(20, 5).render(&[&s]);
        assert!(out.contains('*'));
    }

    #[test]
    fn tiny_canvas_is_clamped() {
        let chart = AsciiChart::new(1, 1);
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        // Must not panic even with a degenerate canvas request.
        let _ = chart.render(&[&s]);
    }
}
