//! Metrics, time series and renderers for the Matrix experiments.
//!
//! The experiment harness regenerates the paper's figures and tables as
//! terminal artefacts: [`TimeSeries`] collects samples (e.g. clients per
//! server over time), [`Histogram`] aggregates latency distributions,
//! [`Table`] renders aligned result tables, and [`AsciiChart`] draws the
//! multi-series line plots standing in for Figure 2.
//!
//! # Example
//!
//! ```
//! use matrix_metrics::{TimeSeries, AsciiChart};
//!
//! let mut s = TimeSeries::new("clients");
//! for t in 0..10 {
//!     s.push(t as f64, (t * t) as f64);
//! }
//! let chart = AsciiChart::new(40, 10).render(&[&s]);
//! assert!(chart.contains("clients"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod plot;
mod series;
mod table;

pub use histogram::Histogram;
pub use plot::AsciiChart;
pub use series::TimeSeries;
pub use table::Table;
