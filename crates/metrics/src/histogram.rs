//! Log-bucketed histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// Number of buckets per power of two.
const SUB_BUCKETS: usize = 16;
/// Number of powers of two covered (1 µs … ~68 s when recording µs).
const POWERS: usize = 36;

/// A histogram with logarithmic buckets, suitable for latency values
/// spanning microseconds to minutes. Relative error per bucket is bounded
/// by `1/SUB_BUCKETS` ≈ 6%, more than enough for p50/p95/p99 reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
    min: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; SUB_BUCKETS * POWERS],
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }

    /// Records a non-negative value (negative values clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = Self::bucket_of(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    fn bucket_of(v: f64) -> usize {
        if v < 1.0 {
            return 0;
        }
        let power = v.log2().floor() as usize;
        let power = power.min(POWERS - 1);
        let base = 2f64.powi(power as i32);
        let frac = ((v - base) / base * SUB_BUCKETS as f64) as usize;
        (power * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)).min(SUB_BUCKETS * POWERS - 1)
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_value(idx: usize) -> f64 {
        let power = idx / SUB_BUCKETS;
        let frac = idx % SUB_BUCKETS;
        let base = 2f64.powi(power as i32);
        base + base * frac as f64 / SUB_BUCKETS as f64
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Smallest recorded value (exact).
    pub fn min(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Value at quantile `q` in `[0, 1]`, approximated to bucket precision.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value(idx).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Convenience accessors for the standard reporting quantiles.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(1000.0));
        assert_eq!(h.max(), Some(1000.0));
        let p50 = h.p50().unwrap();
        assert!((p50 - 1000.0).abs() / 1000.0 < 0.07, "p50 {p50}");
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000 {
            h.record(v as f64);
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(4.0));
    }

    #[test]
    fn negative_values_clamp_to_zero() {
        let mut h = Histogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100 {
            a.record(v as f64);
            b.record((v * 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.max(), Some(10_000.0));
        assert_eq!(a.min(), Some(1.0));
    }

    #[test]
    fn quantile_bounds_are_respected() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(42.0);
        }
        // Every quantile of a constant distribution is the constant,
        // up to bucket resolution but never outside [min, max].
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), Some(42.0));
        }
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(1e18);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).is_some());
    }
}
