//! Log-bucketed histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// Number of buckets per power of two.
const SUB_BUCKETS: usize = 16;
/// Number of powers of two covered (1 µs … ~68 s when recording µs).
const POWERS: usize = 36;

/// A histogram with logarithmic buckets, suitable for latency values
/// spanning microseconds to minutes. Relative error per bucket is bounded
/// by `1/SUB_BUCKETS` ≈ 6%, more than enough for p50/p95/p99 reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
    min: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; SUB_BUCKETS * POWERS],
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }

    /// Records a non-negative value (negative values clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = Self::bucket_of(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    fn bucket_of(v: f64) -> usize {
        if v < 1.0 {
            return 0;
        }
        let power = v.log2().floor() as usize;
        let power = power.min(POWERS - 1);
        let base = 2f64.powi(power as i32);
        let frac = ((v - base) / base * SUB_BUCKETS as f64) as usize;
        (power * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)).min(SUB_BUCKETS * POWERS - 1)
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_value(idx: usize) -> f64 {
        let power = idx / SUB_BUCKETS;
        let frac = idx % SUB_BUCKETS;
        let base = 2f64.powi(power as i32);
        base + base * frac as f64 / SUB_BUCKETS as f64
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of recorded values (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Smallest recorded value (exact).
    pub fn min(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Value at quantile `q` in `[0, 1]`, approximated to bucket precision.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value(idx).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Convenience accessors for the standard reporting quantiles.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded values at or above `threshold`, to bucket
    /// precision: a bucket counts as over when its lower-bound
    /// representative value is ≥ `threshold`. This is the SLO-violation
    /// counter — "how many samples exceeded the target" — and inherits
    /// the histogram's ≤6% relative bucket error.
    pub fn count_over(&self, threshold: f64) -> u64 {
        if self.total == 0 || threshold <= 0.0 {
            return self.total;
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|(idx, _)| Self::bucket_value(*idx) >= threshold)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Occupied buckets as `(index, count)` pairs, index-ascending — the
    /// sparse form telemetry snapshots ship on the wire (a latency
    /// distribution rarely occupies more than a few dozen of the 576
    /// buckets).
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse form plus the exact summary
    /// moments ([`Histogram::nonzero_buckets`] round-trips through this).
    /// Out-of-range bucket indices are clamped into the last bucket; an
    /// empty bucket list yields an empty histogram regardless of the
    /// moments passed.
    pub fn from_sparse(buckets: &[(u32, u64)], sum: f64, min: f64, max: f64) -> Histogram {
        let mut h = Histogram::new();
        for &(idx, c) in buckets {
            let idx = (idx as usize).min(SUB_BUCKETS * POWERS - 1);
            h.counts[idx] += c;
            h.total += c;
        }
        if h.total > 0 {
            h.sum = sum;
            h.min = min.min(max);
            h.max = max.max(min);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(1000.0));
        assert_eq!(h.max(), Some(1000.0));
        let p50 = h.p50().unwrap();
        assert!((p50 - 1000.0).abs() / 1000.0 < 0.07, "p50 {p50}");
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000 {
            h.record(v as f64);
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(4.0));
    }

    #[test]
    fn negative_values_clamp_to_zero() {
        let mut h = Histogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100 {
            a.record(v as f64);
            b.record((v * 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.max(), Some(10_000.0));
        assert_eq!(a.min(), Some(1.0));
    }

    #[test]
    fn quantile_bounds_are_respected() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(42.0);
        }
        // Every quantile of a constant distribution is the constant,
        // up to bucket resolution but never outside [min, max].
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), Some(42.0));
        }
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(1e18);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn quantiles_are_monotone_through_p999() {
        let mut h = Histogram::new();
        for v in 1..=100_000 {
            h.record(v as f64);
        }
        let (p50, p95, p99, p999) = (
            h.p50().unwrap(),
            h.p95().unwrap(),
            h.p99().unwrap(),
            h.p999().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        assert!((p999 - 99_900.0).abs() / 99_900.0 < 0.08, "p999 {p999}");
    }

    #[test]
    fn count_over_splits_at_bucket_precision() {
        let mut h = Histogram::new();
        for v in 1..=1_000 {
            h.record(v as f64);
        }
        assert_eq!(h.count_over(0.0), 1_000, "zero threshold counts all");
        assert_eq!(h.count_over(1e12), 0, "nothing beyond the max");
        let over = h.count_over(500.0);
        let exact = 501; // values 500..=1000
        assert!(
            (over as f64 - exact as f64).abs() / exact as f64 <= 0.08,
            "over {over} vs exact {exact}"
        );
        assert_eq!(Histogram::new().count_over(10.0), 0);
    }

    #[test]
    fn sparse_export_round_trips() {
        let mut h = Histogram::new();
        for v in [1.0, 7.0, 7.0, 513.0, 1e9] {
            h.record(v);
        }
        let back = Histogram::from_sparse(
            &h.nonzero_buckets(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
        );
        assert_eq!(back, h);

        let empty = Histogram::from_sparse(&[], 0.0, 0.0, 0.0);
        assert_eq!(empty, Histogram::new());
    }
}
