//! Priority-aware per-flush rate limiting.
//!
//! Coalescing bounds message *count*; it does not bound message *size*.
//! A client parked inside a dense crowd accumulates hundreds of relevant
//! events per flush interval, and shipping all of them either saturates
//! the downlink or queues unboundedly. [`FlushPolicy`] is the standard
//! graceful-degradation answer: rank the pending items by relevance to
//! the receiving client and deliver the best prefix that fits the
//! configured budgets, merging or dropping the least relevant (farthest)
//! items first. Dropped items are not lost state — the next flush
//! re-describes whatever is still relevant — so a budgeted client sees a
//! slightly staler periphery instead of a growing queue.

use matrix_geometry::{Metric, Point};
use std::collections::BTreeMap;

/// Entity id marking an item as anonymous: no per-entity superseding is
/// applied to it (only the exact-duplicate-origin merge).
pub const ANON_ENTITY: u64 = 0;

/// Per-client, per-flush delivery budgets.
///
/// Both limits are *off* at `0`. When either is exceeded the flush is
/// degraded in relevance order: items are sorted nearest-first (ties
/// keep arrival order), exact-duplicate origins are merged down to their
/// most recent item, and the farthest items are dropped until the flush
/// fits. At least one item is always delivered, so no client starves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushPolicy {
    /// Maximum items per client per flush (`0` = unlimited).
    pub max_items: usize,
    /// Maximum estimated wire bytes per client per flush
    /// (`0` = unlimited). Estimated against the caller's `size_of`.
    pub budget_bytes: usize,
}

/// Result of applying a [`FlushPolicy`] to one client's pending items.
#[derive(Debug, Clone)]
pub struct Selection<U> {
    /// Items to deliver, most relevant (nearest) first.
    pub kept: Vec<U>,
    /// Items merged away or dropped to fit the budgets.
    pub dropped: usize,
}

impl FlushPolicy {
    /// A policy with both limits off.
    pub fn unlimited() -> FlushPolicy {
        FlushPolicy::default()
    }

    /// Whether neither limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_items == 0 && self.budget_bytes == 0
    }

    /// Orders `items` by relevance to a viewer at `viewer` (nearest
    /// first, ties in arrival order) and enforces the budgets,
    /// merging/dropping the farthest items first.
    ///
    /// `origin_of`, `entity_of` and `size_of` project an item's
    /// position, source entity and estimated wire cost; the policy
    /// stays generic over the payload type so drivers and tests can
    /// reuse it. Pass [`ANON_ENTITY`] from `entity_of` to opt an item
    /// out of per-entity superseding.
    pub fn select<U>(
        &self,
        viewer: Point,
        metric: Metric,
        origin_of: impl Fn(&U) -> Point,
        entity_of: impl Fn(&U) -> u64,
        size_of: impl Fn(&U) -> usize,
        items: Vec<U>,
    ) -> Selection<U> {
        let total = items.len();
        let mut ranked: Vec<(f64, usize, U)> = items
            .into_iter()
            .enumerate()
            .map(|(i, u)| (origin_of(&u).distance_by(viewer, metric), i, u))
            .collect();
        // Stable relevance order: distance, then arrival.
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let over_count = self.max_items > 0 && ranked.len() > self.max_items;
        let over_bytes = self.budget_bytes > 0
            && ranked.iter().map(|(_, _, u)| size_of(u)).sum::<usize>() > self.budget_bytes;
        if over_count || over_bytes {
            // Supersede per entity: repeated same-sized updates from one
            // moving entity inside a flush interval re-describe the same
            // state, so only the newest needs to ship once the flush is
            // degraded. Size-equality keeps distinct events (an action
            // with a different payload) from merging with position
            // updates, since items carry no finer type information here.
            let mut newest: BTreeMap<(u64, usize), usize> = BTreeMap::new();
            for (_, i, u) in &ranked {
                let entity = entity_of(u);
                if entity != ANON_ENTITY {
                    let slot = newest.entry((entity, size_of(u))).or_insert(*i);
                    *slot = (*slot).max(*i);
                }
            }
            ranked.retain(|(_, i, u)| {
                let entity = entity_of(u);
                entity == ANON_ENTITY || newest[&(entity, size_of(u))] == *i
            });
            // Merge exact-duplicate origins down to the most recent item:
            // repeated events from one point inside a single flush
            // interval supersede each other once the flush is degraded.
            let mut merged: Vec<(f64, usize, U)> = Vec::with_capacity(ranked.len());
            for (d, i, u) in ranked {
                match merged.last_mut() {
                    Some(last) if last.0 == d && origin_of(&last.2) == origin_of(&u) => {
                        // Same origin sorts adjacently (equal distance,
                        // arrival order): keep the newest.
                        *last = (d, i, u);
                    }
                    _ => merged.push((d, i, u)),
                }
            }
            ranked = merged;
        }

        let kept_cap = if self.max_items > 0 {
            ranked.len().min(self.max_items)
        } else {
            ranked.len()
        };
        let mut kept = Vec::with_capacity(kept_cap);
        let mut bytes = 0usize;
        for (_, _, u) in ranked {
            if self.max_items > 0 && kept.len() >= self.max_items {
                break;
            }
            let cost = size_of(&u);
            if self.budget_bytes > 0 && !kept.is_empty() && bytes + cost > self.budget_bytes {
                break;
            }
            bytes += cost;
            kept.push(u);
        }
        Selection {
            dropped: total - kept.len(),
            kept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(x: f64, y: f64, bytes: usize) -> (Point, usize) {
        (Point::new(x, y), bytes)
    }

    fn select(
        policy: FlushPolicy,
        viewer: Point,
        items: Vec<(Point, usize)>,
    ) -> Selection<(Point, usize)> {
        policy.select(
            viewer,
            Metric::Euclidean,
            |u| u.0,
            |_| ANON_ENTITY,
            |u| u.1,
            items,
        )
    }

    #[test]
    fn unlimited_policy_keeps_everything_sorted_by_distance() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(30.0, 0.0, 8), item(10.0, 0.0, 8), item(20.0, 0.0, 8)];
        let sel = select(FlushPolicy::unlimited(), viewer, items);
        assert_eq!(sel.dropped, 0);
        let xs: Vec<f64> = sel.kept.iter().map(|u| u.0.x).collect();
        assert_eq!(xs, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn count_cap_drops_the_farthest() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(40.0, 0.0, 8), item(10.0, 0.0, 8), item(20.0, 0.0, 8)];
        let sel = select(
            FlushPolicy {
                max_items: 2,
                budget_bytes: 0,
            },
            viewer,
            items,
        );
        assert_eq!(sel.dropped, 1);
        let xs: Vec<f64> = sel.kept.iter().map(|u| u.0.x).collect();
        assert_eq!(xs, vec![10.0, 20.0], "the 40-unit item goes first");
    }

    #[test]
    fn byte_budget_limits_the_flush_but_never_starves() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(10.0, 0.0, 100), item(20.0, 0.0, 100)];
        let sel = select(
            FlushPolicy {
                max_items: 0,
                budget_bytes: 150,
            },
            viewer,
            items,
        );
        assert_eq!(sel.kept.len(), 1);
        assert_eq!(sel.dropped, 1);
        // A single oversized item still goes out.
        let sel = select(
            FlushPolicy {
                max_items: 0,
                budget_bytes: 10,
            },
            viewer,
            vec![item(5.0, 0.0, 100)],
        );
        assert_eq!(sel.kept.len(), 1);
    }

    #[test]
    fn duplicate_origins_merge_to_most_recent_under_pressure() {
        let viewer = Point::new(0.0, 0.0);
        // Three events from the same point (payloads mark arrival order),
        // plus one farther event; cap forces degradation.
        let items = vec![
            item(10.0, 0.0, 1),
            item(10.0, 0.0, 2),
            item(10.0, 0.0, 3),
            item(50.0, 0.0, 9),
        ];
        let sel = select(
            FlushPolicy {
                max_items: 2,
                budget_bytes: 0,
            },
            viewer,
            items,
        );
        assert_eq!(sel.kept.len(), 2);
        assert_eq!(sel.kept[0].1, 3, "merged to the newest duplicate");
        assert_eq!(sel.kept[1].0.x, 50.0, "merging freed room for the far item");
        assert_eq!(sel.dropped, 2);
    }

    #[test]
    fn entity_updates_supersede_under_pressure() {
        // Items: (origin, bytes, entity). Entity 7 walks away from the
        // viewer; its three position updates are superseded states, so
        // only the newest survives degradation even though the origins
        // differ. The anonymous item and the different-sized item from
        // the same entity (an action, not a position update) survive.
        let viewer = Point::new(0.0, 0.0);
        let items: Vec<(Point, usize, u64)> = vec![
            (Point::new(10.0, 0.0), 8, 7),
            (Point::new(12.0, 0.0), 8, 7),
            (Point::new(14.0, 0.0), 8, 7),
            (Point::new(13.0, 0.0), 64, 7), // action payload: kept apart
            (Point::new(30.0, 0.0), 8, ANON_ENTITY),
        ];
        let sel = FlushPolicy {
            max_items: 3,
            budget_bytes: 0,
        }
        .select(viewer, Metric::Euclidean, |u| u.0, |u| u.2, |u| u.1, items);
        assert_eq!(sel.dropped, 2);
        let kept: Vec<(f64, usize)> = sel.kept.iter().map(|u| (u.0.x, u.1)).collect();
        assert_eq!(
            kept,
            vec![(13.0, 64), (14.0, 8), (30.0, 8)],
            "newest position per entity, the action, and the anonymous item"
        );
    }

    #[test]
    fn without_pressure_entity_history_is_preserved() {
        let viewer = Point::new(0.0, 0.0);
        let items: Vec<(Point, usize, u64)> =
            vec![(Point::new(10.0, 0.0), 8, 7), (Point::new(12.0, 0.0), 8, 7)];
        let sel = FlushPolicy::unlimited().select(
            viewer,
            Metric::Euclidean,
            |u| u.0,
            |u| u.2,
            |u| u.1,
            items,
        );
        assert_eq!(sel.kept.len(), 2, "no budget pressure, no superseding");
    }

    #[test]
    fn without_pressure_duplicates_are_preserved() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(10.0, 0.0, 1), item(10.0, 0.0, 2)];
        let sel = select(FlushPolicy::unlimited(), viewer, items);
        assert_eq!(sel.kept.len(), 2, "two shots are two events");
    }
}
