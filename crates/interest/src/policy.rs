//! Priority-aware per-flush rate limiting.
//!
//! Coalescing bounds message *count*; it does not bound message *size*.
//! A client parked inside a dense crowd accumulates hundreds of relevant
//! events per flush interval, and shipping all of them either saturates
//! the downlink or queues unboundedly. [`FlushPolicy`] is the standard
//! graceful-degradation answer: rank the pending items by relevance to
//! the receiving client and deliver the best prefix that fits the
//! configured budgets, merging or dropping the least relevant (farthest)
//! items first. Dropped items are not lost state — the next flush
//! re-describes whatever is still relevant — so a budgeted client sees a
//! slightly staler periphery instead of a growing queue.

use matrix_geometry::{Metric, Point};

/// Per-client, per-flush delivery budgets.
///
/// Both limits are *off* at `0`. When either is exceeded the flush is
/// degraded in relevance order: items are sorted nearest-first (ties
/// keep arrival order), exact-duplicate origins are merged down to their
/// most recent item, and the farthest items are dropped until the flush
/// fits. At least one item is always delivered, so no client starves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushPolicy {
    /// Maximum items per client per flush (`0` = unlimited).
    pub max_items: usize,
    /// Maximum estimated wire bytes per client per flush
    /// (`0` = unlimited). Estimated against the caller's `size_of`.
    pub budget_bytes: usize,
}

/// Result of applying a [`FlushPolicy`] to one client's pending items.
#[derive(Debug, Clone)]
pub struct Selection<U> {
    /// Items to deliver, most relevant (nearest) first.
    pub kept: Vec<U>,
    /// Items merged away or dropped to fit the budgets.
    pub dropped: usize,
}

impl FlushPolicy {
    /// A policy with both limits off.
    pub fn unlimited() -> FlushPolicy {
        FlushPolicy::default()
    }

    /// Whether neither limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_items == 0 && self.budget_bytes == 0
    }

    /// Orders `items` by relevance to a viewer at `viewer` (nearest
    /// first, ties in arrival order) and enforces the budgets,
    /// merging/dropping the farthest items first.
    ///
    /// `origin_of` and `size_of` project an item's position and its
    /// estimated wire cost; the policy stays generic over the payload
    /// type so drivers and tests can reuse it.
    pub fn select<U>(
        &self,
        viewer: Point,
        metric: Metric,
        origin_of: impl Fn(&U) -> Point,
        size_of: impl Fn(&U) -> usize,
        items: Vec<U>,
    ) -> Selection<U> {
        let total = items.len();
        let mut ranked: Vec<(f64, usize, U)> = items
            .into_iter()
            .enumerate()
            .map(|(i, u)| (origin_of(&u).distance_by(viewer, metric), i, u))
            .collect();
        // Stable relevance order: distance, then arrival.
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let over_count = self.max_items > 0 && ranked.len() > self.max_items;
        let over_bytes = self.budget_bytes > 0
            && ranked.iter().map(|(_, _, u)| size_of(u)).sum::<usize>() > self.budget_bytes;
        if over_count || over_bytes {
            // Merge exact-duplicate origins down to the most recent item:
            // repeated events from one point inside a single flush
            // interval supersede each other once the flush is degraded.
            let mut merged: Vec<(f64, usize, U)> = Vec::with_capacity(ranked.len());
            for (d, i, u) in ranked {
                match merged.last_mut() {
                    Some(last) if last.0 == d && origin_of(&last.2) == origin_of(&u) => {
                        // Same origin sorts adjacently (equal distance,
                        // arrival order): keep the newest.
                        *last = (d, i, u);
                    }
                    _ => merged.push((d, i, u)),
                }
            }
            ranked = merged;
        }

        let kept_cap = if self.max_items > 0 {
            ranked.len().min(self.max_items)
        } else {
            ranked.len()
        };
        let mut kept = Vec::with_capacity(kept_cap);
        let mut bytes = 0usize;
        for (_, _, u) in ranked {
            if self.max_items > 0 && kept.len() >= self.max_items {
                break;
            }
            let cost = size_of(&u);
            if self.budget_bytes > 0 && !kept.is_empty() && bytes + cost > self.budget_bytes {
                break;
            }
            bytes += cost;
            kept.push(u);
        }
        Selection {
            dropped: total - kept.len(),
            kept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(x: f64, y: f64, bytes: usize) -> (Point, usize) {
        (Point::new(x, y), bytes)
    }

    fn select(
        policy: FlushPolicy,
        viewer: Point,
        items: Vec<(Point, usize)>,
    ) -> Selection<(Point, usize)> {
        policy.select(viewer, Metric::Euclidean, |u| u.0, |u| u.1, items)
    }

    #[test]
    fn unlimited_policy_keeps_everything_sorted_by_distance() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(30.0, 0.0, 8), item(10.0, 0.0, 8), item(20.0, 0.0, 8)];
        let sel = select(FlushPolicy::unlimited(), viewer, items);
        assert_eq!(sel.dropped, 0);
        let xs: Vec<f64> = sel.kept.iter().map(|u| u.0.x).collect();
        assert_eq!(xs, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn count_cap_drops_the_farthest() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(40.0, 0.0, 8), item(10.0, 0.0, 8), item(20.0, 0.0, 8)];
        let sel = select(
            FlushPolicy {
                max_items: 2,
                budget_bytes: 0,
            },
            viewer,
            items,
        );
        assert_eq!(sel.dropped, 1);
        let xs: Vec<f64> = sel.kept.iter().map(|u| u.0.x).collect();
        assert_eq!(xs, vec![10.0, 20.0], "the 40-unit item goes first");
    }

    #[test]
    fn byte_budget_limits_the_flush_but_never_starves() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(10.0, 0.0, 100), item(20.0, 0.0, 100)];
        let sel = select(
            FlushPolicy {
                max_items: 0,
                budget_bytes: 150,
            },
            viewer,
            items,
        );
        assert_eq!(sel.kept.len(), 1);
        assert_eq!(sel.dropped, 1);
        // A single oversized item still goes out.
        let sel = select(
            FlushPolicy {
                max_items: 0,
                budget_bytes: 10,
            },
            viewer,
            vec![item(5.0, 0.0, 100)],
        );
        assert_eq!(sel.kept.len(), 1);
    }

    #[test]
    fn duplicate_origins_merge_to_most_recent_under_pressure() {
        let viewer = Point::new(0.0, 0.0);
        // Three events from the same point (payloads mark arrival order),
        // plus one farther event; cap forces degradation.
        let items = vec![
            item(10.0, 0.0, 1),
            item(10.0, 0.0, 2),
            item(10.0, 0.0, 3),
            item(50.0, 0.0, 9),
        ];
        let sel = select(
            FlushPolicy {
                max_items: 2,
                budget_bytes: 0,
            },
            viewer,
            items,
        );
        assert_eq!(sel.kept.len(), 2);
        assert_eq!(sel.kept[0].1, 3, "merged to the newest duplicate");
        assert_eq!(sel.kept[1].0.x, 50.0, "merging freed room for the far item");
        assert_eq!(sel.dropped, 2);
    }

    #[test]
    fn without_pressure_duplicates_are_preserved() {
        let viewer = Point::new(0.0, 0.0);
        let items = vec![item(10.0, 0.0, 1), item(10.0, 0.0, 2)];
        let sel = select(FlushPolicy::unlimited(), viewer, items);
        assert_eq!(sel.kept.len(), 2, "two shots are two events");
    }
}
