//! The incremental spatial-hash client grid.

use crate::rings::RingSet;
use matrix_geometry::{Metric, Point, Rect};
use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug, Clone, Copy)]
struct Entry {
    cell: u32,
    /// Index of the key inside its cell's bucket, so removal is O(1)
    /// swap-remove instead of a bucket scan.
    slot: u32,
}

/// An incremental spatial-hash grid over subscriber positions.
///
/// The world is covered by a `cells_per_axis × cells_per_axis` uniform
/// grid; each cell holds the keys currently inside it. Positions outside
/// the bounds clamp into the edge cells, so the grid never loses a
/// subscriber — roaming clients just degrade the edge cells slightly.
///
/// Radius queries scan only the cells intersecting the query ball's
/// bounding box and then apply the exact metric test, so the result is
/// **identical** to a brute-force scan over all subscribers (a property
/// test in `tests/interest_properties.rs` pins this down, boundary points
/// included).
///
/// # Hysteresis
///
/// With [`InterestGrid::with_hysteresis`], a subscriber only changes
/// cells once its position is more than the hysteresis margin away from
/// its *current* cell — a crowd jittering on a cell boundary stays put
/// instead of bouncing between buckets every move. Stored positions are
/// always exact; queries compensate by widening the scanned cell range by
/// the margin, so hysteresis never changes query results, only how often
/// buckets are edited.
#[derive(Debug, Clone)]
pub struct InterestGrid<K> {
    bounds: Rect,
    cells_per_axis: u32,
    cell_w: f64,
    cell_h: f64,
    hysteresis: f64,
    /// Buckets are struct-of-arrays: the query hot path scans the dense
    /// `positions` array (same memory shape as a brute-force scan over a
    /// position vector) and touches `keys` only for actual matches.
    cells: Vec<CellBucket<K>>,
    index: HashMap<K, Entry>,
}

#[derive(Debug, Clone)]
struct CellBucket<K> {
    keys: Vec<K>,
    positions: Vec<Point>,
}

impl<K> Default for CellBucket<K> {
    fn default() -> Self {
        CellBucket {
            keys: Vec::new(),
            positions: Vec::new(),
        }
    }
}

impl<K: Copy + Eq + Hash> InterestGrid<K> {
    /// Creates an empty grid covering `bounds` with `cells_per_axis`
    /// cells along each axis (clamped to at least 1).
    pub fn new(bounds: Rect, cells_per_axis: u32) -> InterestGrid<K> {
        let cells_per_axis = cells_per_axis.max(1);
        let n = (cells_per_axis as usize) * (cells_per_axis as usize);
        InterestGrid {
            bounds,
            cells_per_axis,
            cell_w: (bounds.width() / cells_per_axis as f64).max(f64::MIN_POSITIVE),
            cell_h: (bounds.height() / cells_per_axis as f64).max(f64::MIN_POSITIVE),
            hysteresis: 0.0,
            cells: (0..n).map(|_| CellBucket::default()).collect(),
            index: HashMap::new(),
        }
    }

    /// Sets the cell-boundary hysteresis margin (world units).
    pub fn with_hysteresis(mut self, margin: f64) -> InterestGrid<K> {
        self.hysteresis = margin.max(0.0);
        self
    }

    /// Number of subscribers tracked.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: K) -> bool {
        self.index.contains_key(&key)
    }

    /// The exact stored position of `key`, if tracked.
    pub fn position_of(&self, key: K) -> Option<Point> {
        self.index
            .get(&key)
            .map(|e| self.cells[e.cell as usize].positions[e.slot as usize])
    }

    /// The grid's coverage rectangle.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Cells along each axis.
    pub fn cells_per_axis(&self) -> u32 {
        self.cells_per_axis
    }

    /// Removes every subscriber.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            cell.keys.clear();
            cell.positions.clear();
        }
        self.index.clear();
    }

    fn cell_coords(&self, pos: Point) -> (u32, u32) {
        let cx = ((pos.x - self.bounds.min().x) / self.cell_w).floor();
        let cy = ((pos.y - self.bounds.min().y) / self.cell_h).floor();
        let max = (self.cells_per_axis - 1) as f64;
        (cx.clamp(0.0, max) as u32, cy.clamp(0.0, max) as u32)
    }

    fn cell_id(&self, cx: u32, cy: u32) -> u32 {
        cy * self.cells_per_axis + cx
    }

    /// The world rectangle of cell `(cx, cy)`.
    fn cell_rect(&self, cell: u32) -> Rect {
        let cx = (cell % self.cells_per_axis) as f64;
        let cy = (cell / self.cells_per_axis) as f64;
        let min = Point::new(
            self.bounds.min().x + cx * self.cell_w,
            self.bounds.min().y + cy * self.cell_h,
        );
        Rect::new(min, min.offset(self.cell_w, self.cell_h))
    }

    fn push_to_cell(&mut self, key: K, pos: Point, cell: u32) {
        let bucket = &mut self.cells[cell as usize];
        let slot = bucket.keys.len() as u32;
        bucket.keys.push(key);
        bucket.positions.push(pos);
        self.index.insert(key, Entry { cell, slot });
    }

    fn remove_from_cell(&mut self, entry: Entry) {
        let bucket = &mut self.cells[entry.cell as usize];
        bucket.keys.swap_remove(entry.slot as usize);
        bucket.positions.swap_remove(entry.slot as usize);
        if let Some(&moved) = bucket.keys.get(entry.slot as usize) {
            self.index
                .get_mut(&moved)
                .expect("moved key must be indexed")
                .slot = entry.slot;
        }
    }

    /// Inserts or repositions a subscriber.
    ///
    /// On a reposition the subscriber keeps its current cell while the
    /// new position stays within the hysteresis margin of that cell;
    /// otherwise it moves to the position's natural cell.
    pub fn update(&mut self, key: K, pos: Point) {
        if let Some(entry) = self.index.get(&key).copied() {
            let (cx, cy) = self.cell_coords(pos);
            let natural = self.cell_id(cx, cy);
            if natural == entry.cell
                || self
                    .cell_rect(entry.cell)
                    .distance_to(pos, Metric::Euclidean)
                    <= self.hysteresis
            {
                // Same bucket (possibly held by hysteresis): position-only
                // update, no bucket edit.
                self.cells[entry.cell as usize].positions[entry.slot as usize] = pos;
                return;
            }
            self.remove_from_cell(entry);
            self.push_to_cell(key, pos, natural);
        } else {
            let (cx, cy) = self.cell_coords(pos);
            let cell = self.cell_id(cx, cy);
            self.push_to_cell(key, pos, cell);
        }
    }

    /// Inserts a new subscriber (alias of [`InterestGrid::update`] for
    /// call-site clarity).
    pub fn insert(&mut self, key: K, pos: Point) {
        self.update(key, pos);
    }

    /// Removes a subscriber; returns whether it was tracked.
    pub fn remove(&mut self, key: K) -> bool {
        match self.index.remove(&key) {
            Some(entry) => {
                // `remove_from_cell` fixes the swapped entry's slot via
                // the index, which no longer holds `key` — fine, it only
                // touches the *moved* key.
                self.remove_from_cell(entry);
                true
            }
            None => false,
        }
    }

    /// Visits every subscriber within `radius` of `origin` under
    /// `metric`, in unspecified order. The visited set is exactly the
    /// brute-force set `{k : d(pos_k, origin) <= radius}`.
    pub fn query(
        &self,
        origin: Point,
        radius: f64,
        metric: Metric,
        mut visit: impl FnMut(K, Point),
    ) {
        if radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        match metric {
            Metric::Euclidean => self.for_each_query_cell(origin, radius, metric, |_, bucket| {
                for (i, pos) in bucket.positions.iter().enumerate() {
                    let dx = pos.x - origin.x;
                    let dy = pos.y - origin.y;
                    if dx * dx + dy * dy <= r2 {
                        visit(bucket.keys[i], *pos);
                    }
                }
            }),
            _ => self.for_each_query_cell(origin, radius, metric, |_, bucket| {
                for (i, pos) in bucket.positions.iter().enumerate() {
                    if pos.distance_by(origin, metric) <= radius {
                        visit(bucket.keys[i], *pos);
                    }
                }
            }),
        }
    }

    /// Visits every subscriber within `radius` of `origin` and grades
    /// each one's vision ring in the same pass, amortizing the work per
    /// occupied cell: a cell whose conservative distance bounds fall
    /// entirely outside the radius is skipped whole, one entirely
    /// inside admits its whole bucket without per-subscriber distance
    /// tests, and one whose bounds land inside a single ring annulus
    /// classifies the whole bucket at once. The visited `(key, pos,
    /// ring)` set — and its order — is **identical** to running
    /// [`InterestGrid::query`] and grading each match with
    /// [`RingSet::ring_of`] individually: the cell bounds are inflated
    /// by the hysteresis slack (a held subscriber may sit outside its
    /// bucket's rectangle) plus a relative epsilon that dominates
    /// floating-point rounding, so the fast paths only fire where the
    /// exact per-subscriber tests provably agree. Edge cells always
    /// take the exact path — out-of-bounds positions clamp into them,
    /// so their rectangles bound nothing.
    ///
    /// `radius` is normally [`RingSet::outer_radius`]; matches beyond
    /// the outermost ring boundary (possible only by a float ulp when
    /// the caller passes a different radius) grade as the last ring.
    pub fn query_tiered(
        &self,
        origin: Point,
        radius: f64,
        metric: Metric,
        rings: &RingSet,
        mut visit: impl FnMut(K, Point, u8),
    ) {
        if radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        let last_ring = (rings.len().saturating_sub(1)) as u8;
        let last = self.cells_per_axis - 1;
        // A subscriber held by hysteresis sits within `hysteresis` of
        // its cell rectangle in *Euclidean* distance; under Manhattan
        // that displacement measures up to √2 times more.
        let slack = match metric {
            Metric::Manhattan => self.hysteresis * std::f64::consts::SQRT_2,
            _ => self.hysteresis,
        };
        self.for_each_query_cell(origin, radius, metric, |cell, bucket| {
            if bucket.keys.is_empty() {
                return;
            }
            let cx = cell % self.cells_per_axis;
            let cy = cell / self.cells_per_axis;
            // Interior cells only: edge buckets hold clamped
            // out-of-bounds subscribers arbitrarily far from the cell.
            if last > 0 && cx > 0 && cx < last && cy > 0 && cy < last {
                let rect = self.cell_rect(cell);
                let dmin = rect.distance_to(origin, metric);
                // All three metrics are convex, so the farthest point
                // of the rectangle is a corner.
                let (lo_c, hi_c) = (rect.min(), rect.max());
                let dmax = [
                    lo_c,
                    hi_c,
                    Point::new(lo_c.x, hi_c.y),
                    Point::new(hi_c.x, lo_c.y),
                ]
                .into_iter()
                .map(|c| c.distance_by(origin, metric))
                .fold(0.0f64, f64::max);
                // Conservative bounds on any bucket member's distance:
                // widen by the hysteresis slack, then by a relative
                // epsilon that dwarfs the rounding of the exact
                // per-subscriber tests (so fast-path decisions never
                // disagree with them).
                let lo = (dmin - slack).max(0.0) * (1.0 - 1e-9);
                let hi = (dmax + slack) * (1.0 + 1e-9);
                if lo > radius {
                    return; // whole bucket provably out of range
                }
                if hi <= radius {
                    // Whole bucket provably in range: no admission
                    // tests. If the bounds land in one ring annulus the
                    // whole bucket shares that ring too — no distances
                    // at all.
                    match (rings.ring_of(lo), rings.ring_of(hi)) {
                        (Some(a), Some(b)) if a == b => {
                            for (i, pos) in bucket.positions.iter().enumerate() {
                                visit(bucket.keys[i], *pos, a);
                            }
                        }
                        _ => {
                            for (i, pos) in bucket.positions.iter().enumerate() {
                                let ring = rings
                                    .ring_of(pos.distance_by(origin, metric))
                                    .unwrap_or(last_ring);
                                visit(bucket.keys[i], *pos, ring);
                            }
                        }
                    }
                    return;
                }
            }
            // Exact per-subscriber fallback — bit-identical to `query`
            // followed by `ring_of` on the match.
            match metric {
                Metric::Euclidean => {
                    for (i, pos) in bucket.positions.iter().enumerate() {
                        let dx = pos.x - origin.x;
                        let dy = pos.y - origin.y;
                        if dx * dx + dy * dy <= r2 {
                            let ring = rings
                                .ring_of(pos.distance_by(origin, metric))
                                .unwrap_or(last_ring);
                            visit(bucket.keys[i], *pos, ring);
                        }
                    }
                }
                _ => {
                    for (i, pos) in bucket.positions.iter().enumerate() {
                        let d = pos.distance_by(origin, metric);
                        if d <= radius {
                            visit(bucket.keys[i], *pos, rings.ring_of(d).unwrap_or(last_ring));
                        }
                    }
                }
            }
        });
    }

    /// Enumerates the buckets that can hold matches for a query ball,
    /// rasterizing the ball row by row so per-cell pruning work is one
    /// comparison, not a rectangle distance.
    fn for_each_query_cell(
        &self,
        origin: Point,
        radius: f64,
        metric: Metric,
        mut scan: impl FnMut(u32, &CellBucket<K>),
    ) {
        // A subscriber held in a non-natural cell by hysteresis sits
        // within `hysteresis` of that cell *in Euclidean distance*; under
        // Manhattan the same displacement can measure up to √2 times
        // more, so the search widening accounts for the metric.
        let slack = match metric {
            Metric::Manhattan => self.hysteresis * std::f64::consts::SQRT_2,
            _ => self.hysteresis,
        };
        // Every metric ball of radius r fits in the axis-aligned square
        // of half-width r; widen by the slack for bucket displacement.
        let reach = radius + slack;
        let (x0, y0) = self.cell_coords(origin.offset(-reach, -reach));
        let (x1, y1) = self.cell_coords(origin.offset(reach, reach));
        let last = self.cells_per_axis - 1;
        for cy in y0..=y1 {
            // Rasterize the widened ball: this row's strip lies `dy` from
            // the origin vertically, so only columns within the metric
            // ball's horizontal half-extent at that dy can hold matches.
            // Edge rows/columns are exempt from narrowing — out-of-bounds
            // positions clamp into them, so those buckets may hold
            // subscribers far from the cell rectangle itself.
            let row_lo = self.bounds.min().y + cy as f64 * self.cell_h;
            let dy = (row_lo - origin.y)
                .max(origin.y - (row_lo + self.cell_h))
                .max(0.0);
            let half = match metric {
                Metric::Euclidean => {
                    let rem = reach * reach - dy * dy;
                    if rem >= 0.0 {
                        rem.sqrt()
                    } else {
                        -1.0
                    }
                }
                Metric::Manhattan => reach - dy,
                Metric::Chebyshev => {
                    if dy <= reach {
                        reach
                    } else {
                        -1.0
                    }
                }
            };
            let (rx0, rx1) = if cy == 0 || cy == last {
                (x0, x1)
            } else if half < 0.0 {
                // Strip misses the ball entirely: visit only the AABB's
                // edge columns, if any.
                (u32::MAX, 0)
            } else {
                let (lo, _) = self.cell_coords(Point::new(origin.x - half, row_lo));
                let (hi, _) = self.cell_coords(Point::new(origin.x + half, row_lo));
                (lo.max(x0), hi.min(x1))
            };
            if rx0 <= rx1 {
                for cx in rx0..=rx1 {
                    let id = self.cell_id(cx, cy);
                    scan(id, &self.cells[id as usize]);
                }
            }
            // Edge columns inside the AABB but outside the rasterized
            // span (clamped out-of-bounds subscribers).
            if x0 == 0 && (rx0 > rx1 || rx0 > 0) {
                let id = self.cell_id(0, cy);
                scan(id, &self.cells[id as usize]);
            }
            if x1 == last && (rx0 > rx1 || rx1 < last) && !(x0 == 0 && last == 0) {
                let id = self.cell_id(last, cy);
                scan(id, &self.cells[id as usize]);
            }
        }
    }

    /// Iterates every tracked subscriber with its exact stored position,
    /// in unspecified order. The dissemination pipeline uses this to
    /// re-index the population when the auto-tuner re-picks the grid
    /// resolution.
    pub fn subscribers(&self) -> impl Iterator<Item = (K, Point)> + '_ {
        self.index
            .iter()
            .map(|(k, e)| (*k, self.cells[e.cell as usize].positions[e.slot as usize]))
    }

    /// Collects the keys within `radius` of `origin` (test/bench helper).
    pub fn query_collect(&self, origin: Point, radius: f64, metric: Metric) -> Vec<K> {
        let mut out = Vec::new();
        self.query(origin, radius, metric, |k, _| out.push(k));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn insert_query_remove_round_trip() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 10);
        g.insert(1, Point::new(10.0, 10.0));
        g.insert(2, Point::new(12.0, 10.0));
        g.insert(3, Point::new(90.0, 90.0));
        assert_eq!(g.len(), 3);
        let mut near = g.query_collect(Point::new(11.0, 10.0), 5.0, Metric::Euclidean);
        near.sort_unstable();
        assert_eq!(near, vec![1, 2]);
        assert!(g.remove(2));
        assert!(!g.remove(2));
        assert_eq!(
            g.query_collect(Point::new(11.0, 10.0), 5.0, Metric::Euclidean),
            vec![1]
        );
    }

    #[test]
    fn update_moves_between_cells() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 10);
        g.insert(1, Point::new(5.0, 5.0));
        g.update(1, Point::new(95.0, 95.0));
        assert!(g
            .query_collect(Point::new(5.0, 5.0), 3.0, Metric::Euclidean)
            .is_empty());
        assert_eq!(
            g.query_collect(Point::new(95.0, 95.0), 3.0, Metric::Euclidean),
            vec![1]
        );
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn out_of_bounds_positions_clamp_into_edge_cells() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 4);
        g.insert(1, Point::new(-50.0, 200.0));
        assert_eq!(g.len(), 1);
        // Still found by a query near its true position.
        assert_eq!(
            g.query_collect(Point::new(-50.0, 200.0), 1.0, Metric::Euclidean),
            vec![1]
        );
    }

    #[test]
    fn boundary_point_is_found_from_both_sides() {
        // 10x10 cells of size 10: x = 50 is exactly a cell boundary.
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 10);
        g.insert(1, Point::new(50.0, 50.0));
        assert_eq!(
            g.query_collect(Point::new(49.0, 50.0), 1.0, Metric::Euclidean),
            vec![1]
        );
        assert_eq!(
            g.query_collect(Point::new(51.0, 50.0), 1.0, Metric::Euclidean),
            vec![1]
        );
        assert_eq!(
            g.query_collect(Point::new(50.0, 50.0), 0.0, Metric::Euclidean),
            vec![1]
        );
    }

    #[test]
    fn hysteresis_defers_cell_churn_without_changing_results() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 10).with_hysteresis(2.0);
        g.insert(1, Point::new(49.5, 50.0));
        // Jitter across the x=50 boundary: within the margin, the bucket
        // must not change, but queries still see the exact position.
        g.update(1, Point::new(50.5, 50.0));
        assert_eq!(g.position_of(1), Some(Point::new(50.5, 50.0)));
        assert_eq!(
            g.query_collect(Point::new(50.5, 50.0), 0.1, Metric::Euclidean),
            vec![1]
        );
        // A decisive move beyond the margin rebuckets.
        g.update(1, Point::new(55.0, 50.0));
        assert_eq!(
            g.query_collect(Point::new(55.0, 50.0), 0.1, Metric::Euclidean),
            vec![1]
        );
    }

    #[test]
    fn swap_remove_fixes_displaced_slots() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 1);
        for i in 0..10 {
            g.insert(i, Point::new(50.0, 50.0));
        }
        // Removing from the front of the single bucket displaces the last
        // element into slot 0; subsequent removals must stay consistent.
        for i in 0..10 {
            assert!(g.remove(i), "remove {i}");
        }
        assert!(g.is_empty());
    }

    #[test]
    fn degenerate_single_cell_grid_works() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 1);
        g.insert(1, Point::new(10.0, 10.0));
        g.insert(2, Point::new(90.0, 90.0));
        let mut all = g.query_collect(Point::new(50.0, 50.0), 100.0, Metric::Chebyshev);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn query_tiered_matches_query_plus_ring_of() {
        // Pseudo-random crowd with out-of-bounds stragglers and
        // hysteresis on, across all metrics and several ring shapes:
        // the amortized cell fast paths must agree with grading each
        // `query` match individually — same set, same order, same ring.
        let mut rng: u64 = 0xD1CE;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            for rings in [
                RingSet::single(35.0),
                RingSet::from_tiers(&[12.0, 30.0, 55.0], &[1, 2, 4]),
                RingSet::from_tiers(&[5.0, 90.0], &[1, 3]),
            ] {
                let mut g: InterestGrid<u32> = InterestGrid::new(world(), 8).with_hysteresis(1.5);
                for k in 0..300u32 {
                    // Mostly in bounds; some clamp into edge cells.
                    let x = (next() % 140) as f64 - 20.0;
                    let y = (next() % 140) as f64 - 20.0;
                    g.insert(k, Point::new(x, y));
                }
                // Jitter a third of them so hysteresis holds some
                // subscribers outside their bucket's rectangle.
                for k in 0..100u32 {
                    if let Some(p) = g.position_of(k) {
                        g.update(k, Point::new(p.x + 1.0, p.y - 1.0));
                    }
                }
                for _ in 0..40 {
                    let origin =
                        Point::new((next() % 120) as f64 - 10.0, (next() % 120) as f64 - 10.0);
                    let radius = rings.outer_radius();
                    let mut expect: Vec<(u32, u8)> = Vec::new();
                    g.query(origin, radius, metric, |k, pos| {
                        let ring = rings
                            .ring_of(pos.distance_by(origin, metric))
                            .unwrap_or((rings.len() - 1) as u8);
                        expect.push((k, ring));
                    });
                    let mut got: Vec<(u32, u8)> = Vec::new();
                    g.query_tiered(origin, radius, metric, &rings, |k, _, ring| {
                        got.push((k, ring));
                    });
                    assert_eq!(got, expect, "metric {metric:?} origin {origin:?}");
                }
            }
        }
    }

    #[test]
    fn clear_empties_everything() {
        let mut g: InterestGrid<u32> = InterestGrid::new(world(), 8);
        for i in 0..20 {
            g.insert(i, Point::new(i as f64, i as f64));
        }
        g.clear();
        assert!(g.is_empty());
        assert!(g
            .query_collect(Point::new(10.0, 10.0), 50.0, Metric::Euclidean)
            .is_empty());
    }
}
