//! Multi-tier areas of interest: concentric vision rings.
//!
//! A single binary vision radius treats the farthest visible entity
//! exactly like the nearest one, so the periphery of a dense crowd costs
//! as much downlink as its centre. The adaptive-dissemination literature
//! (D'Angelo et al.) grades relevance instead: the area of interest is a
//! set of concentric *rings*, the innermost delivering every event and
//! the outer rings delivering a deterministic sample — a client renders
//! its immediate surroundings at full fidelity while the periphery
//! updates at a fraction of the rate (and of the bytes).
//!
//! [`RingSet`] is the pure data half: ring boundaries plus per-ring
//! sampling rates, with `ring_of(distance)` mapping an event→receiver
//! distance to its tier. [`RingSampler`] is the stateful half: one
//! counter per (receiver, ring) so sampling is deterministic and evenly
//! spaced (every `rate`-th candidate ships, starting with the first),
//! never random. The near ring's rate is pinned to 1 — near means
//! *every* event, which is what makes the near-ring staleness guarantee
//! of the `matrix-experiments rings` verdict structural rather than
//! statistical.
//!
//! A [`RingSet::single`] of the plain vision radius with rate 1
//! reproduces the binary-radius behaviour exactly (nothing is ever
//! sampled out), which is what keeps the tiered pipeline byte-identical
//! to the untiered one when rings are disabled.

use std::collections::HashMap;
use std::hash::Hash;

/// Maximum number of concentric rings a [`RingSet`] can carry (the
/// config structs mirror this as fixed-size arrays so they stay `Copy`).
pub const MAX_RINGS: usize = 4;

/// Concentric vision rings: ascending boundary radii with per-ring
/// sampling rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingSet {
    radii: [f64; MAX_RINGS],
    rates: [u32; MAX_RINGS],
    len: usize,
}

impl RingSet {
    /// The binary-radius degenerate case: one ring, every event
    /// delivered. Behaviour is identical to a plain vision radius.
    pub fn single(radius: f64) -> RingSet {
        RingSet {
            radii: [radius.max(0.0), 0.0, 0.0, 0.0],
            rates: [1; MAX_RINGS],
            len: 1,
        }
    }

    /// Builds a ring set from parallel `(radius, rate)` tiers.
    ///
    /// Tiers with a non-positive radius are ignored; the rest are sorted
    /// ascending and truncated to [`MAX_RINGS`]. Rates are clamped to at
    /// least 1, and the innermost ring's rate is pinned to 1 (near =
    /// every event). An empty tier list yields `single(0.0)`.
    pub fn from_tiers(radii: &[f64], rates: &[u32]) -> RingSet {
        let mut tiers: Vec<(f64, u32)> = radii
            .iter()
            .zip(rates.iter().chain(std::iter::repeat(&1)))
            .filter(|(r, _)| **r > 0.0)
            .map(|(r, s)| (*r, (*s).max(1)))
            .collect();
        tiers.sort_by(|a, b| a.0.total_cmp(&b.0));
        tiers.truncate(MAX_RINGS);
        if tiers.is_empty() {
            return RingSet::single(0.0);
        }
        let mut set = RingSet {
            radii: [0.0; MAX_RINGS],
            rates: [1; MAX_RINGS],
            len: tiers.len(),
        };
        for (i, (radius, rate)) in tiers.into_iter().enumerate() {
            set.radii[i] = radius;
            set.rates[i] = if i == 0 { 1 } else { rate };
        }
        set
    }

    /// Number of rings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty (it never is; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any tiering is in effect: more than one ring, or any
    /// ring sampling below every-event. A non-tiered set behaves exactly
    /// like a binary vision radius.
    pub fn is_tiered(&self) -> bool {
        self.len > 1 || self.rates[..self.len].iter().any(|r| *r > 1)
    }

    /// The outermost ring boundary — the effective area-of-interest
    /// radius queried against the interest grid.
    pub fn outer_radius(&self) -> f64 {
        self.radii[self.len - 1]
    }

    /// Maps an event→receiver distance to its ring index, or `None`
    /// outside the outermost ring.
    pub fn ring_of(&self, distance: f64) -> Option<u8> {
        self.radii[..self.len]
            .iter()
            .position(|r| distance <= *r)
            .map(|i| i as u8)
    }

    /// The sampling rate of ring `ring` (1 = every event).
    pub fn rate(&self, ring: u8) -> u32 {
        self.rates[(ring as usize).min(self.len.saturating_sub(1))]
    }
}

/// Deterministic per-(receiver, ring) event sampler.
///
/// Each receiver holds one counter per ring; a candidate event in ring
/// `i` is delivered when `counter % rate(i) == 0`, so of every `rate`
/// consecutive candidates exactly one ships — evenly spaced, starting
/// with the first, reproducible run to run.
#[derive(Debug, Clone, Default)]
pub struct RingSampler<K> {
    counters: HashMap<K, [u32; MAX_RINGS]>,
}

impl<K: Copy + Eq + Hash> RingSampler<K> {
    /// An empty sampler.
    pub fn new() -> RingSampler<K> {
        RingSampler {
            counters: HashMap::new(),
        }
    }

    /// Registers one candidate event for `receiver` in `ring`; returns
    /// whether it should be delivered under `rings`' sampling rate.
    pub fn admit(&mut self, rings: &RingSet, receiver: K, ring: u8) -> bool {
        let rate = rings.rate(ring);
        if rate <= 1 {
            return true; // every event: no state to keep
        }
        let counters = self.counters.entry(receiver).or_default();
        let slot = &mut counters[(ring as usize).min(MAX_RINGS - 1)];
        let keep = *slot == 0;
        *slot = (*slot + 1) % rate;
        keep
    }

    /// Drops all sampling state for a departed receiver.
    pub fn forget(&mut self, receiver: K) {
        self.counters.remove(&receiver);
    }

    /// Drops every receiver's sampling state.
    pub fn clear(&mut self) {
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ring_is_untiered_and_admits_everything() {
        let rings = RingSet::single(50.0);
        assert!(!rings.is_tiered());
        assert_eq!(rings.outer_radius(), 50.0);
        assert_eq!(rings.ring_of(0.0), Some(0));
        assert_eq!(rings.ring_of(50.0), Some(0), "boundary is inclusive");
        assert_eq!(rings.ring_of(50.1), None);
        let mut sampler: RingSampler<u32> = RingSampler::new();
        for _ in 0..100 {
            assert!(sampler.admit(&rings, 7, 0));
        }
    }

    #[test]
    fn tiers_sort_ascending_and_map_distances() {
        let rings = RingSet::from_tiers(&[100.0, 35.0, 65.0], &[4, 1, 2]);
        assert_eq!(rings.len(), 3);
        assert!(rings.is_tiered());
        assert_eq!(rings.outer_radius(), 100.0);
        assert_eq!(rings.ring_of(10.0), Some(0));
        assert_eq!(rings.ring_of(35.0), Some(0));
        assert_eq!(rings.ring_of(36.0), Some(1));
        assert_eq!(rings.ring_of(80.0), Some(2));
        assert_eq!(rings.ring_of(101.0), None);
        assert_eq!(rings.rate(1), 2);
        assert_eq!(rings.rate(2), 4);
    }

    #[test]
    fn near_ring_rate_is_pinned_to_every_event() {
        let rings = RingSet::from_tiers(&[30.0, 60.0], &[8, 2]);
        assert_eq!(rings.rate(0), 1, "near means every event");
        assert_eq!(rings.rate(1), 2);
    }

    #[test]
    fn zero_radii_are_dropped_and_empty_falls_back() {
        let rings = RingSet::from_tiers(&[0.0, 40.0, 0.0], &[1, 3, 1]);
        assert_eq!(rings.len(), 1);
        assert_eq!(rings.outer_radius(), 40.0);
        // The surviving tier became the (pinned) near ring.
        assert_eq!(rings.rate(0), 1);
        let empty = RingSet::from_tiers(&[], &[]);
        assert_eq!(empty.outer_radius(), 0.0);
    }

    #[test]
    fn sampler_keeps_exactly_one_in_rate_evenly_spaced() {
        let rings = RingSet::from_tiers(&[10.0, 20.0], &[1, 3]);
        let mut sampler: RingSampler<u32> = RingSampler::new();
        let kept: Vec<bool> = (0..9).map(|_| sampler.admit(&rings, 1, 1)).collect();
        assert_eq!(
            kept,
            vec![true, false, false, true, false, false, true, false, false],
            "every third candidate ships, starting with the first"
        );
        // Receivers sample independently.
        assert!(sampler.admit(&rings, 2, 1));
    }

    #[test]
    fn forget_restarts_a_receivers_phase() {
        let rings = RingSet::from_tiers(&[10.0, 20.0], &[1, 2]);
        let mut sampler: RingSampler<u32> = RingSampler::new();
        assert!(sampler.admit(&rings, 1, 1));
        assert!(!sampler.admit(&rings, 1, 1));
        sampler.forget(1);
        assert!(sampler.admit(&rings, 1, 1), "fresh receiver, fresh phase");
    }
}
