//! Stable shard routing for per-receiver pipeline state.
//!
//! The sharded flush engine partitions per-receiver state (delta
//! streams, sampling phase, prediction mirrors, queued batches) across
//! `flush_workers` independent shards. The partition must be *stable* —
//! the same key lands in the same shard on every node, every run, every
//! platform — because region snapshots ship per-receiver state between
//! primaries and standbys whose `flush_workers` may differ: the importer
//! re-routes each entry by `shard_hash() % local_shard_count`, which is
//! only deterministic if the hash itself is. `std::hash::Hash` offers no
//! such guarantee (`RandomState` is seeded per process), so sharding
//! gets its own tiny trait instead.

/// A key with a stable, platform-independent 64-bit hash used only for
/// shard routing. Implementations must be pure functions of the key's
/// value.
pub trait ShardKey {
    /// The stable hash. Raw identity bits are fine — the router applies
    /// its own bit mixer before reducing modulo the shard count, so
    /// sequential ids spread evenly.
    fn shard_hash(&self) -> u64;
}

macro_rules! impl_shard_key {
    ($($t:ty),*) => {
        $(impl ShardKey for $t {
            fn shard_hash(&self) -> u64 {
                *self as u64
            }
        })*
    };
}

impl_shard_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a stable hash onto `shards` buckets via the splitmix64
/// finalizer — sequential client ids (the common case) spread uniformly
/// instead of striping.
pub fn shard_of(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in 1..=8usize {
            for key in 0..1000u64 {
                let a = shard_of(key.shard_hash(), shards);
                let b = shard_of(key.shard_hash(), shards);
                assert_eq!(a, b, "stable for key {key}");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let shards = 4usize;
        let mut counts = vec![0usize; shards];
        for key in 0..4000u64 {
            counts[shard_of(key.shard_hash(), shards)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(c),
                "shard {i} holds {c} of 4000 keys — the mixer failed to spread"
            );
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for key in [0u64, 1, u64::MAX] {
            assert_eq!(shard_of(key, 1), 0);
        }
    }
}
