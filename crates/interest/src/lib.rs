//! Interest management for the Matrix middleware.
//!
//! Matrix routes spatially tagged packets *between* servers through
//! overlap tables (§3.2.4 of the paper), but within one game server every
//! event still has to reach the co-located clients that can see it. The
//! seed implementation did that with a linear scan over all clients —
//! O(clients) per event, O(clients²) per tick at exactly the hotspots
//! that trigger splits. This crate provides the standard cure from the
//! event-dissemination literature (D'Angelo et al., *Adaptive Event
//! Dissemination for P2P MMOGs*): relevance filtering through a spatial
//! index plus per-receiver batching.
//!
//! * [`InterestGrid`] — an incremental spatial-hash grid over client
//!   positions. Updated on every move (O(1) amortised), it answers
//!   "who can see a point" in O(cells touched + matches) instead of
//!   O(clients). Optional hysteresis keeps clients that jitter on a cell
//!   boundary from churning between buckets.
//! * [`UpdateBatcher`] — a coalescing layer that accumulates per-client
//!   updates and flushes them in batches on an interval, cutting
//!   per-message overhead and giving the transport large writes.
//! * [`FlushPolicy`] — priority-aware rate limiting applied at every
//!   flush: items are ranked by relevance (distance to the receiving
//!   client), duplicate origins are merged, and the farthest items are
//!   dropped first until the per-client count/byte budgets fit, so slow
//!   or crowded clients degrade gracefully instead of queueing
//!   unboundedly.
//! * [`DeltaEncoder`] / [`DeltaStream`] — per-client delta compression
//!   of update origins: each item is encoded as an offset from the
//!   previous one, with periodic and threshold-triggered absolute
//!   keyframes plus a resync path for joins and handovers. Offsets are
//!   only used when reconstruction is bit-exact, so the decoded stream
//!   always equals what an absolute-only encoder would have sent.
//! * [`RingSet`] / [`RingSampler`] — multi-tier areas of interest:
//!   concentric vision rings with per-ring sampling rates (near = every
//!   event, far = a deterministic sample), replacing the single binary
//!   vision radius.
//! * [`AutoTuner`] — density-driven grid resolution: re-picks
//!   `cells_per_axis` from the observed subscriber count with ratio
//!   hysteresis and streak guards, instead of trusting a static knob.
//! * **Dead reckoning** (via [`matrix_predict`]) — a sender-side
//!   [`MotionModel`] estimates per-entity velocity, a
//!   [`PredictedStream`] simulates each receiver's extrapolation and
//!   suppresses events while the predicted error stays within the
//!   ring's budget ([`PredictorConfig`]), and the receiver-side
//!   [`Extrapolator`] advances entities between updates.
//! * [`DisseminationPipeline`] — the composed send path with one seam
//!   per stage: interest query → ring tiering → prediction →
//!   entity merge → budget/relevance policy → delta encoding. Both
//!   drivers (the discrete-event harness and the async runtime) flush
//!   through it.
//!
//! All of it is deliberately independent of the middleware's message
//! types: the grid is generic over the subscriber key, the batcher and
//! policy over the update payload, the pipeline over anything
//! implementing [`Disseminated`], and the delta codec speaks raw
//! [`Point`](matrix_geometry::Point)s — so the discrete-event harness,
//! the async runtime, the property suites and the benchmarks all drive
//! the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod delta;
mod grid;
mod pipeline;
mod policy;
mod rings;
mod shard;
mod tuner;

pub use batch::UpdateBatcher;
pub use delta::{quantize, DeltaEncoder, DeltaStream, EncodedOrigin};
pub use grid::InterestGrid;
pub use matrix_predict::{
    extrapolate, quantize_velocity, Admission, Basis, Extrapolator, MotionModel, PredictedStream,
};
pub use pipeline::{
    DisseminateStats, Disseminated, DisseminationPipeline, FlushBatch, FlushOutcome,
    PipelineConfig, PredictorConfig,
};
pub use policy::{FlushPolicy, Selection, ANON_ENTITY};
pub use rings::{RingSampler, RingSet, MAX_RINGS};
pub use shard::{shard_of, ShardKey};
pub use tuner::{AutoTuner, AutoTunerConfig};
