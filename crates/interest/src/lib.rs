//! Interest management for the Matrix middleware.
//!
//! Matrix routes spatially tagged packets *between* servers through
//! overlap tables (§3.2.4 of the paper), but within one game server every
//! event still has to reach the co-located clients that can see it. The
//! seed implementation did that with a linear scan over all clients —
//! O(clients) per event, O(clients²) per tick at exactly the hotspots
//! that trigger splits. This crate provides the standard cure from the
//! event-dissemination literature (D'Angelo et al., *Adaptive Event
//! Dissemination for P2P MMOGs*): relevance filtering through a spatial
//! index plus per-receiver batching.
//!
//! * [`InterestGrid`] — an incremental spatial-hash grid over client
//!   positions. Updated on every move (O(1) amortised), it answers
//!   "who can see a point" in O(cells touched + matches) instead of
//!   O(clients). Optional hysteresis keeps clients that jitter on a cell
//!   boundary from churning between buckets.
//! * [`UpdateBatcher`] — a coalescing layer that accumulates per-client
//!   updates and flushes them in batches on an interval, cutting
//!   per-message overhead and giving the transport large writes.
//!
//! Both are deliberately independent of the middleware's message types:
//! the grid is generic over the subscriber key and the batcher over the
//! update payload, so the discrete-event harness, the async runtime and
//! the benchmarks all drive the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod grid;

pub use batch::UpdateBatcher;
pub use grid::InterestGrid;
