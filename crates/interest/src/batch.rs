//! Per-receiver update coalescing.

use std::collections::BTreeMap;

/// Accumulates updates per receiver and releases them in batches.
///
/// Fan-out is the dominant message volume of a game server: every event
/// near a crowd produces one message per observer. Coalescing the
/// per-observer stream into one batch per flush interval replaces
/// per-update message overhead with per-batch overhead — the "adaptive
/// dissemination" lever the interest-management literature pairs with
/// relevance filtering.
///
/// The batcher is deliberately runtime-agnostic: callers decide *when* to
/// flush (the discrete-event harness flushes on simulated ticks, the
/// async runtime on its tick timer, both gated by the configured batch
/// interval) and *what* an update is. Receivers are ordered (`BTreeMap`)
/// so flush order is deterministic under the simulation.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatcher<K: Ord, U> {
    pending: BTreeMap<K, Vec<U>>,
    queued: usize,
}

impl<K: Ord + Copy, U> UpdateBatcher<K, U> {
    /// Creates an empty batcher.
    pub fn new() -> UpdateBatcher<K, U> {
        UpdateBatcher {
            pending: BTreeMap::new(),
            queued: 0,
        }
    }

    /// Queues one update for `receiver`.
    pub fn push(&mut self, receiver: K, update: U) {
        self.pending.entry(receiver).or_default().push(update);
        self.queued += 1;
    }

    /// Total updates currently queued across all receivers.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Number of receivers with at least one queued update.
    pub fn receivers(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Drops any queue for `receiver` (it disconnected or switched
    /// servers); returns how many updates were discarded.
    pub fn forget(&mut self, receiver: K) -> usize {
        let dropped = self.pending.remove(&receiver).map(|v| v.len()).unwrap_or(0);
        self.queued -= dropped;
        dropped
    }

    /// Takes every queued batch, in receiver order, leaving the batcher
    /// empty. Batches are non-empty by construction.
    pub fn drain(&mut self) -> Vec<(K, Vec<U>)> {
        self.queued = 0;
        std::mem::take(&mut self.pending).into_iter().collect()
    }

    /// Visits every queued batch without consuming it, in receiver
    /// order — the region-snapshot path reads pending updates this way.
    pub fn peek(&self) -> impl Iterator<Item = (&K, &[U])> {
        self.pending.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_round_trip() {
        let mut b: UpdateBatcher<u32, &str> = UpdateBatcher::new();
        b.push(2, "b1");
        b.push(1, "a1");
        b.push(2, "b2");
        assert_eq!(b.queued(), 3);
        assert_eq!(b.receivers(), 2);
        let drained = b.drain();
        assert_eq!(drained, vec![(1, vec!["a1"]), (2, vec!["b1", "b2"])]);
        assert!(b.is_empty());
        assert!(b.drain().is_empty());
    }

    #[test]
    fn forget_discards_one_receiver() {
        let mut b: UpdateBatcher<u32, u8> = UpdateBatcher::new();
        b.push(1, 0);
        b.push(1, 1);
        b.push(2, 2);
        assert_eq!(b.forget(1), 2);
        assert_eq!(b.forget(1), 0);
        assert_eq!(b.queued(), 1);
        assert_eq!(b.drain(), vec![(2, vec![2])]);
    }

    #[test]
    fn peek_reads_without_consuming() {
        let mut b: UpdateBatcher<u32, u8> = UpdateBatcher::new();
        b.push(2, 9);
        b.push(1, 7);
        let seen: Vec<(u32, Vec<u8>)> = b.peek().map(|(k, v)| (*k, v.to_vec())).collect();
        assert_eq!(seen, vec![(1, vec![7]), (2, vec![9])]);
        assert_eq!(b.queued(), 2, "peek leaves the queue intact");
        assert_eq!(b.drain(), vec![(1, vec![7]), (2, vec![9])]);
    }

    #[test]
    fn drain_order_is_deterministic() {
        let mut b: UpdateBatcher<u32, u8> = UpdateBatcher::new();
        for k in [5u32, 3, 9, 1] {
            b.push(k, 0);
        }
        let order: Vec<u32> = b.drain().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }
}
