//! The composable per-client dissemination pipeline.
//!
//! Earlier revisions hand-wired the dissemination stages inside the game
//! server's flush path: the interest grid was queried in one method, the
//! batcher filled inline, and the flush loop called the policy and the
//! delta encoder back to back with bespoke glue. Every new stage meant
//! editing that monolith in two drivers. [`DisseminationPipeline`] makes
//! the stages an explicit, reusable component with one seam per stage:
//!
//! 1. **interest query** — the [`InterestGrid`](crate::InterestGrid)
//!    answers "who can see this point" within the outermost ring, and
//!    grades each receiver's vision ring while it is at it: one query
//!    serves every subscriber of an occupied cell, and cells whose
//!    conservative distance bounds fall inside a single ring annulus
//!    classify their whole bucket at once
//!    ([`InterestGrid::query_tiered`]);
//! 2. **ring tiering** — [`RingSampler`](crate::RingSampler)
//!    deterministically samples the outer tiers (near = every event);
//! 3. **prediction** — a [`MotionModel`](matrix_predict::MotionModel)
//!    estimates each entity's velocity and a
//!    [`PredictedStream`](matrix_predict::PredictedStream) simulates
//!    every receiver's dead-reckoning extrapolation, *suppressing* the
//!    event for receivers whose prediction stays within the ring's
//!    error budget (the near ring's budget is pinned to 0 — near means
//!    every event, preserving the delivery guarantee). Outer-ring items
//!    can additionally ship position-only
//!    ([`Disseminated::strip_payload`]);
//! 4. **entity merge + budget policy** —
//!    [`FlushPolicy`](crate::FlushPolicy) ranks the queued items by
//!    relevance, supersedes per-entity duplicates under pressure and
//!    enforces the count/byte budgets;
//! 5. **delta encoding** — [`DeltaEncoder`](crate::DeltaEncoder) turns
//!    surviving origins into exact offsets with periodic keyframes.
//!
//! A density-driven [`AutoTuner`](crate::AutoTuner) re-picks the grid
//! resolution as the subscriber count drifts (stage 1's only tunable),
//! rebuilding the index in place.
//!
//! # Sharding
//!
//! All per-*receiver* state — queued batches, sampling phase, delta
//! streams, prediction mirrors, the stage-4/5 span timers — lives in N
//! independent **shards** keyed by a stable hash of the receiver
//! ([`ShardKey`](crate::ShardKey)). Stages 4–5 touch nothing but one
//! receiver's own state, so a flush can process every shard
//! independently: sequentially in shard-index order (the default, and
//! the only mode the discrete-event harness uses), or on real
//! `std::thread` workers behind [`with_parallel_flush`]
//! (`matrix-rt`). Because receivers partition across shards and each
//! shard drains in receiver order, merging the per-shard batch lists by
//! receiver reconstructs the exact global order — the flush output is
//! **byte-identical for any shard count**, parallel or not, which is
//! what lets `flush_workers` be a pure performance knob
//! (property-pinned in `tests/interest_properties.rs`).
//!
//! [`with_parallel_flush`]: DisseminationPipeline::with_parallel_flush
//!
//! The pipeline is deliberately payload-agnostic: anything implementing
//! [`Disseminated`] flows through, so the middleware's update items, the
//! property suites' synthetic payloads and the benches all drive the
//! same code. With rings untiered and the tuner disabled, the pipeline's
//! output is **byte-identical** to the hand-wired v2 flush path — a
//! property test in `tests/interest_properties.rs` pins that equivalence
//! down, which is what makes this refactor safe to sit under both the
//! discrete-event harness and the async runtime.

use crate::delta::{DeltaEncoder, EncodedOrigin};
use crate::grid::InterestGrid;
use crate::policy::{FlushPolicy, ANON_ENTITY};
use crate::rings::{RingSampler, RingSet, MAX_RINGS};
use crate::shard::{shard_of, ShardKey};
use crate::tuner::{AutoTuner, AutoTunerConfig};
use crate::UpdateBatcher;
use matrix_geometry::{Metric, Point, Rect};
use matrix_predict::{quantize_velocity, Admission, Basis, MotionModel, PredictedStream};
use matrix_telemetry::{Histogram, Stage, StageSpans};
use std::hash::Hash;

/// What the pipeline needs to know about a payload to rank, merge,
/// budget and account for it.
pub trait Disseminated {
    /// Where the event happened (already quantised by the producer if a
    /// wire lattice is in effect).
    fn origin(&self) -> Point;
    /// Source entity id (`0` = anonymous, exempt from per-entity
    /// superseding).
    fn entity(&self) -> u64;
    /// Estimated absolute wire cost, used by the byte budget.
    fn wire_bytes(&self) -> usize;
    /// The vision ring this item was admitted under (`0` = near). The
    /// producer's `make` callback receives the ring and embeds it in
    /// the payload (it usually travels to the receiver as a fidelity
    /// tag), so the pipeline queues no side-band tier state.
    fn ring(&self) -> u8 {
        0
    }
    /// Degrades this item to position-only: strip the game payload,
    /// keep the origin (and velocity). Applied by the pipeline to items
    /// admitted through rings at or beyond
    /// [`PipelineConfig::position_only_ring`] — a far-ring entity's
    /// whereabouts matter for rendering, its full state rarely does.
    /// The default is a no-op for payloads with nothing to strip.
    fn strip_payload(&mut self) {}
    /// The causal trace tag riding this item, if the producer sampled
    /// it ([`matrix_telemetry::TraceTag`]). Untraced payloads (the
    /// default, and every payload when `trace_sample_rate` is 0) return
    /// `None` and cost the pipeline nothing.
    fn trace(&self) -> Option<matrix_telemetry::TraceTag> {
        None
    }
    /// Charges the age of an undelivered predecessor (µs before this
    /// item's ingest) to the item's trace tag, so the suppressed or
    /// policy-dropped event's latency surfaces as staleness on the next
    /// delivered rebase instead of vanishing. A no-op for untraced
    /// payloads.
    fn trace_charge(&mut self, _age_us: u64) {}
}

/// Configuration of the pipeline's dead-reckoning stage.
///
/// The error budget is an exact bound on the receiver's extrapolation
/// error *at admission*: suppression simulates the receiver with the
/// receiver's own arithmetic, so a suppressed event is one the
/// receiver provably reconstructs within budget. Downstream of this
/// stage the ordinary batching semantics apply — an admitted rebase
/// waits out the batch interval like any item, and under count/byte
/// cap pressure ([`FlushPolicy`]) it can be deferred to a later flush
/// with the same staleness the rate limiter always traded. The
/// configurations whose end-to-end error bound is verified (E15, the
/// property suites) therefore run per-event flushes with the caps off;
/// production deployments that cap flushes should read the budget as
/// an admission-time bound, not a render-time one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Master switch. Off (the default) keeps the pipeline byte-identical
    /// to the pre-prediction send path: no velocities on the wire, no
    /// suppression, no motion bookkeeping.
    pub enabled: bool,
    /// Per-ring receiver error budgets in world units, parallel to the
    /// ring set (`0.0` = never suppress). The near ring (index 0) is
    /// pinned to `0.0` regardless of this entry — near means every
    /// event.
    pub error_budgets: [f64; MAX_RINGS],
    /// Sliding-window length of the per-entity velocity estimator
    /// (observations; clamped to ≥ 2).
    pub motion_window: u32,
    /// Fixed-point lattice shipped velocities are snapped to, in world
    /// units per second (`0.0` = fall back to the origin lattice).
    /// Velocities tolerate a much coarser lattice than origins: a
    /// quantization error of `q/2` per axis drifts the receiver by at
    /// most `q/√2 · t` over a basis lifetime `t`, far inside any usable
    /// ring budget — while every halving of the resolution shortens the
    /// tag on the text codec. Keep it a power-of-two multiple of the
    /// origin quantum so the binary codec's fixed-point field carries
    /// the snapped value exactly.
    pub velocity_quantum: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            enabled: false,
            error_budgets: [0.0; MAX_RINGS],
            motion_window: 4,
            velocity_quantum: 0.125,
        }
    }
}

impl PredictorConfig {
    /// An enabled predictor with the given per-ring budgets (missing
    /// entries stay `0.0` = never suppress).
    pub fn with_budgets(budgets: &[f64]) -> PredictorConfig {
        let mut cfg = PredictorConfig {
            enabled: true,
            ..PredictorConfig::default()
        };
        for (slot, b) in cfg.error_budgets.iter_mut().zip(budgets) {
            *slot = b.max(0.0);
        }
        cfg
    }

    /// The effective budget for a ring: entry clamped into the array,
    /// with the near ring pinned to 0 (every event).
    pub fn budget_for(&self, ring: u8) -> f64 {
        if ring == 0 {
            return 0.0;
        }
        self.error_budgets[(ring as usize).min(MAX_RINGS - 1)]
    }
}

/// Static configuration of a pipeline (everything except the grid
/// geometry, which arrives via [`DisseminationPipeline::reset`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Distance metric for interest queries and relevance ranking.
    pub metric: Metric,
    /// Per-client, per-flush delivery budgets (stage 3).
    pub policy: FlushPolicy,
    /// Delta keyframe interval (stage 4; `0` = absolute-only).
    pub keyframe_every: u32,
    /// Fixed-point lattice the delta encoder verifies offsets against
    /// (`0.0` = no lattice requirement). Shipped velocities snap to
    /// their own, coarser lattice —
    /// [`PredictorConfig::velocity_quantum`].
    pub origin_quantum: f64,
    /// Grid resolution auto-tuning (stage 1's knob).
    pub autotune: AutoTunerConfig,
    /// Dead-reckoning suppression (stage 3's knob).
    pub predict: PredictorConfig,
    /// Ring index from which items ship position-only
    /// ([`Disseminated::strip_payload`]); `0` disables payload
    /// degradation (the near ring always ships in full).
    pub position_only_ring: u8,
    /// Enables the per-stage span timers
    /// ([`DisseminationPipeline::spans`]): each stage's time per flush
    /// cycle lands in a latency histogram. Off (the default), every
    /// timing call is a branch-only no-op — no clock reads.
    pub telemetry: bool,
}

/// One receiver's flushed batch. `items` and `origins` are parallel —
/// handing back the two vectors the policy and encoder stages already
/// produced keeps the flush hot path free of intermediate copies (the
/// caller zips them while assembling its wire messages).
#[derive(Debug, Clone, PartialEq)]
pub struct FlushBatch<K, U> {
    /// The receiving subscriber.
    pub receiver: K,
    /// Kept payloads, most relevant first. Never empty. Each carries
    /// its ring tag ([`Disseminated::ring`]).
    pub items: Vec<U>,
    /// How each item's origin travels on the wire (parallel to
    /// `items`).
    pub origins: Vec<EncodedOrigin>,
    /// Items merged or dropped by the budget policy for this receiver.
    pub rate_limited: u64,
}

/// Everything one flush produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlushOutcome<K, U> {
    /// Per-receiver batches, in receiver order.
    pub batches: Vec<FlushBatch<K, U>>,
    /// Queued items discarded because their receiver vanished between
    /// enqueue and flush.
    pub orphaned: u64,
}

/// What one dissemination (stages 1–3) did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DisseminateStats {
    /// Receivers the event was delivered to (queued, or counted when
    /// emission is off).
    pub delivered: u64,
    /// Receivers inside the AOI whose ring sampled this event out.
    pub sampled_out: u64,
    /// Receivers whose dead-reckoning extrapolation held this event
    /// within the ring's error budget — nothing was queued; the
    /// receiver's prediction stands in for the transmission.
    pub suppressed: u64,
    /// Items degraded to position-only by the per-ring payload policy.
    pub stripped: u64,
    /// Sum of the simulated receiver errors over the suppressed
    /// deliveries (world units) — `sum / suppressed` is the mean error
    /// the predictions absorbed.
    pub pred_error_sum: f64,
    /// Largest simulated receiver error among the suppressed deliveries.
    pub pred_error_max: f64,
}

/// One shard of per-receiver state. Every structure in here is keyed by
/// the receiver and every flush-time access touches exactly one
/// receiver's entry, so shards are fully independent during a flush —
/// the invariant the parallel path rests on.
#[derive(Debug, Clone)]
struct Shard<K: Ord, U> {
    sampler: RingSampler<K>,
    batcher: UpdateBatcher<K, U>,
    encoder: DeltaEncoder<K>,
    predicted: PredictedStream<K>,
    /// Stage-4/5 lap timers; stages 1–3 run on the driver thread and
    /// time into the pipeline-level spans.
    spans: StageSpans,
    /// Trace-plane staleness charges: entity → receiver → earliest
    /// undelivered event time (µs). Populated when a suppressed or
    /// policy-dropped item leaves a gap in the receiver's view; drained
    /// onto the next emitted item for that pair
    /// ([`Disseminated::trace_charge`]). Keyed entity-first so the
    /// fan-out hot loop pays one lookup per *event* (the entity is
    /// fixed across its whole receiver set), not one per delivered
    /// item. Empty — and never touched — unless trace charging is
    /// armed.
    charges: std::collections::HashMap<u64, std::collections::HashMap<K, u64>>,
}

/// The composed dissemination pipeline (see the module docs for the
/// stage walk-through).
#[derive(Debug, Clone)]
pub struct DisseminationPipeline<K: Ord + Copy + Eq + Hash, U> {
    metric: Metric,
    policy: FlushPolicy,
    rings: RingSet,
    grid: InterestGrid<K>,
    tuner: AutoTuner,
    predict: PredictorConfig,
    position_only_ring: u8,
    vel_quantum: f64,
    keyframe_every: u32,
    origin_quantum: f64,
    telemetry: bool,
    motion: MotionModel,
    /// Driver-thread spans: stages 1–3 (Query, Tier, Predict). The
    /// per-shard spans cover stages 4–5 (Policy, Delta);
    /// [`DisseminationPipeline::stage_histogram`] merges the two views.
    spans: StageSpans,
    /// Per-receiver state, partitioned by stable receiver hash. Always
    /// at least one shard; the single-shard default is exactly the
    /// pre-sharding pipeline.
    shards: Vec<Shard<K, U>>,
    /// Whether `flush` runs the shards on real `std::thread` workers
    /// (one per shard) instead of in index order on the caller.
    parallel: bool,
    /// Whether the trace plane's staleness charging is armed (the
    /// producer stamps trace tags): suppressed and policy-dropped
    /// events then charge their age to the next delivered rebase. Off
    /// (the default), the charge maps stay empty and every charging
    /// site is a single branch.
    trace_charging: bool,
    /// Reused per-dissemination candidate buffer `(key, pos, ring)` —
    /// stage 1 fills it, stages 2–3 compact and drain it in place.
    scratch: Vec<(K, Point, u8)>,
    /// Reused per-dissemination "shard holds charges for this entity"
    /// flags, one per shard: probed once per event so the delivery loop
    /// skips the charge-map lookup for the (overwhelmingly common)
    /// uncharged entities.
    charged: Vec<bool>,
}

impl<K: Ord + Copy + Eq + Hash + ShardKey, U: Disseminated> DisseminationPipeline<K, U> {
    /// Builds a pipeline over `bounds` at `cells_per_axis`, with the
    /// given ring tiers and a single shard (the sequential path).
    pub fn new(
        bounds: Rect,
        cells_per_axis: u32,
        rings: RingSet,
        cfg: PipelineConfig,
    ) -> DisseminationPipeline<K, U> {
        let cells = cells_per_axis.max(1);
        let mut p = DisseminationPipeline {
            metric: cfg.metric,
            policy: cfg.policy,
            rings,
            grid: Self::make_grid(bounds, cells),
            tuner: AutoTuner::new(cfg.autotune, cells),
            predict: cfg.predict,
            position_only_ring: cfg.position_only_ring,
            vel_quantum: if cfg.predict.velocity_quantum > 0.0 {
                cfg.predict.velocity_quantum
            } else {
                cfg.origin_quantum
            },
            keyframe_every: cfg.keyframe_every,
            origin_quantum: cfg.origin_quantum,
            telemetry: cfg.telemetry,
            motion: MotionModel::new(cfg.predict.motion_window),
            spans: StageSpans::new(cfg.telemetry),
            shards: Vec::new(),
            parallel: false,
            trace_charging: false,
            scratch: Vec::new(),
            charged: Vec::new(),
        };
        p.shards = vec![p.make_shard()];
        p
    }

    /// Re-partitions per-receiver state across `shards` shards (clamped
    /// to ≥ 1). Intended at construction, before any state accumulates:
    /// existing queued batches, streams and bases are discarded, not
    /// re-routed.
    pub fn with_shards(mut self, shards: u32) -> DisseminationPipeline<K, U> {
        let n = (shards as usize).max(1);
        self.shards = (0..n).map(|_| self.make_shard()).collect();
        self
    }

    /// Runs future flushes on one real `std::thread` worker per shard
    /// (no effect with a single shard). The output stays byte-identical
    /// to the sequential path — see the module docs.
    pub fn with_parallel_flush(mut self) -> DisseminationPipeline<K, U> {
        self.set_parallel_flush(true);
        self
    }

    /// In-place form of [`DisseminationPipeline::with_parallel_flush`]
    /// for drivers that configure an already-constructed pipeline.
    pub fn set_parallel_flush(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Arms the trace plane's staleness charging (producers stamp
    /// [`matrix_telemetry::TraceTag`]s on sampled items): suppressed
    /// and policy-dropped events record the gap they leave, and the
    /// next emitted rebase of the same `(receiver, entity)` pair picks
    /// the charge up via [`Disseminated::trace_charge`]. Off (the
    /// default), every charging site is a single branch and no map is
    /// touched.
    pub fn with_trace_charging(mut self) -> DisseminationPipeline<K, U> {
        self.set_trace_charging(true);
        self
    }

    /// In-place form of [`DisseminationPipeline::with_trace_charging`].
    pub fn set_trace_charging(&mut self, on: bool) {
        self.trace_charging = on;
    }

    /// Whether trace charging is armed.
    pub fn trace_charging(&self) -> bool {
        self.trace_charging
    }

    /// The number of shards per-receiver state is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether flushes run the shards on real worker threads.
    pub fn parallel_flush(&self) -> bool {
        self.parallel
    }

    fn make_shard(&self) -> Shard<K, U> {
        Shard {
            sampler: RingSampler::new(),
            batcher: UpdateBatcher::new(),
            encoder: DeltaEncoder::new(self.keyframe_every).with_quantum(self.origin_quantum),
            predicted: PredictedStream::new(),
            spans: StageSpans::new(self.telemetry),
            charges: std::collections::HashMap::new(),
        }
    }

    /// The shard a receiver's state lives in. The single-shard default
    /// skips the hash entirely — the sequential path pays nothing for
    /// the sharding seam.
    #[inline]
    fn shard_ix(&self, key: K) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            shard_of(key.shard_hash(), self.shards.len())
        }
    }

    /// Hold jittering subscribers in their cell for a tenth of a cell;
    /// the grid widens queries by the same margin, so results are exact.
    fn make_grid(bounds: Rect, cells: u32) -> InterestGrid<K> {
        let margin = 0.1 * (bounds.width() / cells as f64).min(bounds.height() / cells as f64);
        InterestGrid::new(bounds, cells).with_hysteresis(margin.max(0.0))
    }

    // -- subscribers (stage 1 state) -----------------------------------------

    /// Adds or re-adds a subscriber, resetting its delta stream (a
    /// (re)joining receiver holds no base, so its next flush keyframes)
    /// and its prediction bases (a fresh connection extrapolates from
    /// nothing, so the sender's mirror must be empty too).
    pub fn subscribe(&mut self, key: K, pos: Point) {
        self.grid.insert(key, pos);
        let si = self.shard_ix(key);
        let shard = &mut self.shards[si];
        shard.encoder.reset(key);
        shard.predicted.forget_receiver(key);
    }

    /// Repositions a subscriber.
    pub fn reposition(&mut self, key: K, pos: Point) {
        self.grid.update(key, pos);
    }

    /// Removes a subscriber, dropping its queued updates, delta stream,
    /// sampling and prediction state. Returns how many queued updates
    /// died with it.
    pub fn unsubscribe(&mut self, key: K) -> usize {
        self.grid.remove(key);
        let si = self.shard_ix(key);
        let shard = &mut self.shards[si];
        shard.encoder.forget(key);
        shard.sampler.forget(key);
        shard.predicted.forget_receiver(key);
        if !shard.charges.is_empty() {
            shard.charges.retain(|_, owed| {
                owed.remove(&key);
                !owed.is_empty()
            });
        }
        shard.batcher.forget(key)
    }

    /// Drops every trace of a departed *entity* (motion track and every
    /// receiver's prediction basis for it). Distinct from
    /// [`DisseminationPipeline::unsubscribe`], which removes a
    /// *receiver*: a client is usually both.
    pub fn forget_entity(&mut self, entity: u64) {
        self.motion.forget(entity);
        for shard in &mut self.shards {
            shard.predicted.forget_entity(entity);
            // A departed entity never rebases again; its staleness
            // charges are undeliverable and would otherwise pin the
            // charge map non-empty forever.
            shard.charges.remove(&entity);
        }
    }

    /// Re-anchors the grid to a new range with the given subscriber set
    /// (splits, reclaims, promotions — rare), keeping the tuned
    /// resolution, streams and pending batches.
    pub fn reset(&mut self, bounds: Rect, subscribers: impl IntoIterator<Item = (K, Point)>) {
        self.grid = Self::make_grid(bounds, self.tuner.current());
        for (key, pos) in subscribers {
            self.grid.insert(key, pos);
        }
    }

    /// Replaces the ring tiers (the registered radius changed).
    pub fn set_rings(&mut self, rings: RingSet) {
        self.rings = rings;
    }

    /// The current ring tiers.
    pub fn rings(&self) -> &RingSet {
        &self.rings
    }

    /// The interest grid (drivers query it for observability).
    pub fn grid(&self) -> &InterestGrid<K> {
        &self.grid
    }

    /// The grid resolution currently in effect.
    pub fn cells_per_axis(&self) -> u32 {
        self.grid.cells_per_axis()
    }

    /// The driver-thread span timers — stages 1–3 (a no-op sink unless
    /// the pipeline was built with [`PipelineConfig::telemetry`] on).
    /// Stage 4–5 time lands in per-shard spans;
    /// [`DisseminationPipeline::stage_histogram`] is the merged view.
    pub fn spans(&self) -> &StageSpans {
        &self.spans
    }

    /// The per-flush latency histogram of one stage (µs), merged across
    /// the driver-thread spans (stages 1–3) and every shard's spans
    /// (stages 4–5). With one shard this is exactly the pre-sharding
    /// histogram; with N shards the Policy/Delta histograms carry one
    /// sample per shard per flush.
    pub fn stage_histogram(&self, stage: Stage) -> Histogram {
        match stage {
            Stage::Query | Stage::Tier | Stage::Predict => self.spans.histogram(stage).clone(),
            Stage::Policy | Stage::Delta => {
                let mut merged = Histogram::new();
                for shard in &self.shards {
                    merged.merge(shard.spans.histogram(stage));
                }
                merged
            }
        }
    }

    /// Per-shard, per-stage breakdown (µs) of the most recent completed
    /// flush — the slow-flush capture's raw material. One entry per
    /// shard: stages 1–3 are the driver-thread spans (identical in
    /// every entry — disseminations are not sharded), stages 4–5 that
    /// shard's own. All zeros before the first flush or with telemetry
    /// off.
    pub fn last_flush_spans(&self) -> Vec<[f64; matrix_telemetry::STAGE_COUNT]> {
        let driver = self.spans.last_flush_us();
        self.shards
            .iter()
            .map(|shard| {
                let own = shard.spans.last_flush_us();
                let mut row = driver;
                row[Stage::Policy as usize] = own[Stage::Policy as usize];
                row[Stage::Delta as usize] = own[Stage::Delta as usize];
                row
            })
            .collect()
    }

    /// Cumulative per-shard time (µs) spent in one of the sharded
    /// stages (Policy or Delta) — the flush-imbalance gauge's raw
    /// material: `max / mean` over this vector says how unevenly the
    /// receiver hash spread the stage-5 work. Stages 1–3 run unsharded
    /// on the driver thread, so they yield a single-element vector.
    pub fn shard_stage_sums(&self, stage: Stage) -> Vec<f64> {
        match stage {
            Stage::Query | Stage::Tier | Stage::Predict => {
                vec![self.spans.histogram(stage).sum()]
            }
            Stage::Policy | Stage::Delta => self
                .shards
                .iter()
                .map(|shard| shard.spans.histogram(stage).sum())
                .collect(),
        }
    }

    // -- stages 1–3: query, tier, sample, predict, queue ---------------------

    /// Disseminates one event: queries the grid within the outermost
    /// ring — grading each receiver's ring in the same pass, whole
    /// cells at a time where the cell's distance bounds allow — then
    /// samples the outer tiers, runs dead-reckoning suppression against
    /// each receiver's prediction basis, and (when `emit`) queues one
    /// item per admitted receiver. `origin` is the true event position
    /// (AOI distances); `wire_origin` is the lattice-snapped position
    /// receivers reconstruct — prediction bases are kept in wire
    /// coordinates so the sender's error simulation matches the
    /// receiver bit-for-bit. `make` produces the payload per admitted
    /// receiver, embedding the ring it was admitted under and the
    /// velocity shipped with the item (`(0.0, 0.0)` whenever prediction
    /// is off). An untiered ring set with prediction off costs exactly
    /// what the binary-radius fan-out did.
    ///
    /// `suppressible` marks events whose content a receiver can
    /// reconstruct by extrapolation — pure position updates. Events
    /// carrying payloads a prediction cannot reproduce (actions,
    /// chat, remote deliveries) must pass `false`: they still feed the
    /// motion model and *rebase* every receiver's prediction (the item
    /// carries origin + velocity like any other), but they are never
    /// suppressed — losing an action is a gameplay bug, not graceful
    /// degradation.
    #[allow(clippy::too_many_arguments)] // one seam per stage input, by design
    pub fn disseminate(
        &mut self,
        origin: Point,
        wire_origin: Point,
        entity: u64,
        now_secs: f64,
        suppressible: bool,
        exclude: Option<K>,
        emit: bool,
        mut make: impl FnMut(u8, (f64, f64)) -> U,
    ) -> DisseminateStats {
        let mut stats = DisseminateStats::default();
        let rings = self.rings;
        // Trace-plane charging works in whole microseconds of the same
        // clock the producer stamps tags with; only armed — and only
        // when items actually queue — does it cost anything.
        let charging = self.trace_charging && emit;
        let now_us = if charging { (now_secs * 1e6) as u64 } else { 0 };
        // Anonymous events carry no entity identity to model or to
        // extrapolate, so they bypass the prediction stage entirely.
        let predicting = self.predict.enabled && entity != ANON_ENTITY;
        let vel = if predicting {
            // The model observes every event — suppressed or not — so
            // the velocity estimate tracks the true trajectory. The
            // shipped velocity sits on its own (coarser) wire lattice;
            // see [`PredictorConfig::velocity_quantum`].
            self.motion.observe(entity, wire_origin, now_secs);
            quantize_velocity(self.motion.velocity(entity), self.vel_quantum)
        } else {
            (0.0, 0.0)
        };
        self.spans.begin();
        // Stage 1: the grid answers "who can see this point" and grades
        // each receiver's ring in the same pass (amortized per cell).
        // Candidates land in a reusable scratch buffer so the later
        // stages run as plain loops the span timer can bracket;
        // iteration order is the grid's, exactly as when the stages
        // were fused in one closure.
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.grid.query_tiered(
            origin,
            rings.outer_radius(),
            self.metric,
            &rings,
            |key, pos, ring| {
                if Some(key) != exclude {
                    candidates.push((key, pos, ring));
                }
            },
        );
        self.spans.lap(Stage::Query);
        // Stage 2: let the sampler thin the periphery, compacting
        // survivors in place (inner-ring admission is stateless, so the
        // untiered path touches no sampler state).
        let mut kept = 0;
        for i in 0..candidates.len() {
            let (key, pos, ring) = candidates[i];
            let si = self.shard_ix(key);
            if !self.shards[si].sampler.admit(&rings, key, ring) {
                stats.sampled_out += 1;
                continue;
            }
            candidates[kept] = (key, pos, ring);
            kept += 1;
        }
        candidates.truncate(kept);
        self.spans.lap(Stage::Tier);
        // One charge-map probe per shard for the whole event: the
        // entity is fixed across its receiver set, so these flags tell
        // the delivery loop below whether any receiver can possibly owe
        // a charge. Suppressions during this loop only insert charges
        // for receivers that were *not* delivered, so a pre-loop
        // snapshot cannot miss a drainable charge.
        if charging {
            self.charged.clear();
            self.charged
                .extend(self.shards.iter().map(|s| s.charges.contains_key(&entity)));
        }
        // Stage 3: dead-reckoning admission, payload stripping, queueing.
        for &(key, _, ring) in &candidates {
            let si = self.shard_ix(key);
            if predicting {
                // Non-suppressible events admit with budget 0:
                // always transmitted, and the transmission rebases
                // the receiver's prediction like any other.
                let budget = if suppressible {
                    self.predict.budget_for(ring)
                } else {
                    0.0
                };
                match self.shards[si].predicted.admit(
                    key,
                    entity,
                    wire_origin,
                    vel,
                    now_secs,
                    budget,
                ) {
                    Admission::Suppress { error } => {
                        stats.suppressed += 1;
                        stats.pred_error_sum += error;
                        stats.pred_error_max = stats.pred_error_max.max(error);
                        if charging {
                            // The receiver extrapolates instead of
                            // hearing this event; remember the earliest
                            // uncovered event time so the next delivered
                            // rebase carries the staleness it papered
                            // over.
                            self.shards[si]
                                .charges
                                .entry(entity)
                                .or_default()
                                .entry(key)
                                .and_modify(|t| *t = (*t).min(now_us))
                                .or_insert(now_us);
                        }
                        continue;
                    }
                    Admission::Send => {}
                }
            }
            stats.delivered += 1;
            let strip = self.position_only_ring > 0 && ring >= self.position_only_ring;
            if strip {
                stats.stripped += 1;
            }
            if emit {
                let mut item = make(ring, vel);
                if strip {
                    item.strip_payload();
                }
                if charging && self.charged[si] {
                    // A delivered rebase closes the gap: pick up the
                    // pending charge (observed only if this item is
                    // traced — sampled observability) and clear it.
                    if let Some(owed) = self.shards[si].charges.get_mut(&entity) {
                        if let Some(first_us) = owed.remove(&key) {
                            item.trace_charge(now_us.saturating_sub(first_us));
                            if owed.is_empty() {
                                self.shards[si].charges.remove(&entity);
                            }
                        }
                    }
                }
                self.shards[si].batcher.push(key, item);
            }
        }
        self.spans.lap(Stage::Predict);
        candidates.clear();
        self.scratch = candidates;
        stats
    }

    /// Queues one already-admitted item directly (snapshot restore: the
    /// item passed sampling on the primary; it must not be re-sampled).
    pub fn enqueue(&mut self, key: K, item: U) {
        let si = self.shard_ix(key);
        self.shards[si].batcher.push(key, item);
    }

    /// Whether any updates are queued.
    pub fn has_pending(&self) -> bool {
        self.shards.iter().any(|s| !s.batcher.is_empty())
    }

    /// Visits every queued batch without consuming it (snapshots), in
    /// global receiver order regardless of the shard count.
    pub fn pending(&self) -> impl Iterator<Item = (&K, &[U])> {
        let mut all: Vec<(&K, &[U])> = self.shards.iter().flat_map(|s| s.batcher.peek()).collect();
        all.sort_by(|a, b| a.0.cmp(b.0));
        all.into_iter()
    }

    /// Drops every queued update and all sampling phase (promotions:
    /// the captured pending set describes the pairing moment, not the
    /// crash).
    pub fn clear_pending(&mut self) {
        for shard in &mut self.shards {
            shard.batcher = UpdateBatcher::new();
            shard.sampler.clear();
            shard.charges.clear();
        }
    }

    // -- stages 4+5: merge, budget, encode -----------------------------------

    /// Flushes every queued batch through the policy and the encoder,
    /// shard by shard. `viewer_of` resolves a receiver's current
    /// position; `None` means the receiver vanished between enqueue and
    /// flush (its items are discarded and counted in
    /// [`FlushOutcome::orphaned`]). Sequential by default; behind
    /// [`DisseminationPipeline::with_parallel_flush`] each shard runs
    /// on its own scoped worker thread. Either way the batches come
    /// back in global receiver order and the outcome is byte-identical
    /// for any shard count.
    pub fn flush(&mut self, viewer_of: impl Fn(K) -> Option<Point> + Sync) -> FlushOutcome<K, U>
    where
        K: Send + Sync,
        U: Send,
    {
        let metric = self.metric;
        let policy = self.policy;
        let charging = self.trace_charging;
        let mut outcome = FlushOutcome {
            batches: Vec::new(),
            orphaned: 0,
        };
        if self.parallel && self.shards.len() > 1 {
            let viewer_of = &viewer_of;
            let results: Vec<(Vec<FlushBatch<K, U>>, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| {
                        s.spawn(move || {
                            Self::flush_shard(shard, metric, policy, charging, viewer_of)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("flush worker panicked"))
                    .collect()
            });
            for (batches, orphaned) in results {
                outcome.batches.extend(batches);
                outcome.orphaned += orphaned;
            }
        } else {
            for shard in &mut self.shards {
                let (batches, orphaned) =
                    Self::flush_shard(shard, metric, policy, charging, &viewer_of);
                outcome.batches.extend(batches);
                outcome.orphaned += orphaned;
            }
        }
        // Receivers partition across shards and each shard drains in
        // receiver order, so one sort by receiver reconstructs the
        // exact global order the single-shard drain produces.
        if self.shards.len() > 1 {
            outcome.batches.sort_by_key(|b| b.receiver);
        }
        // One flush cycle ends here: the driver spans fold the time the
        // disseminations attributed to stages 1–3 into one histogram
        // sample each (the shard spans did the same for stages 4–5).
        self.spans.end_flush();
        outcome
    }

    /// Stages 4–5 over one shard. Touches nothing outside the shard, so
    /// concurrent calls on distinct shards are race-free by
    /// construction.
    fn flush_shard(
        shard: &mut Shard<K, U>,
        metric: Metric,
        policy: FlushPolicy,
        charging: bool,
        viewer_of: &(impl Fn(K) -> Option<Point> + Sync),
    ) -> (Vec<FlushBatch<K, U>>, u64) {
        let mut batches = Vec::new();
        let mut orphaned = 0u64;
        shard.spans.begin();
        for (receiver, queued) in shard.batcher.drain() {
            let Some(viewer) = viewer_of(receiver) else {
                orphaned += queued.len() as u64;
                shard.encoder.forget(receiver);
                // The prediction mirror dies with the stream: these
                // queued rebases never reached the receiver, so bases
                // recorded for them describe state nobody holds.
                shard.predicted.forget_receiver(receiver);
                // And so do its staleness charges: nobody is left to
                // deliver them to.
                if !shard.charges.is_empty() {
                    shard.charges.retain(|_, owed| {
                        owed.remove(&receiver);
                        !owed.is_empty()
                    });
                }
                continue;
            };
            // Traced items the policy is about to judge: remember each
            // one's identity and earliest vouched-for event time so a
            // drop can re-charge it below.
            let queued_len = queued.len();
            let queued_traced: Vec<(u64, u32, u64)> = if charging {
                queued
                    .iter()
                    .filter_map(|u| u.trace().map(|t| (u.entity(), t.seq, t.charge_origin_us())))
                    .collect()
            } else {
                Vec::new()
            };
            let selection = policy.select(
                viewer,
                metric,
                |u: &U| u.origin(),
                |u: &U| u.entity(),
                |u: &U| u.wire_bytes(),
                queued,
            );
            // When the policy kept everything verbatim (no cap, under
            // budget), every traced item survived by construction —
            // skip the survivor matching entirely.
            if charging
                && !queued_traced.is_empty()
                && (selection.dropped > 0 || selection.kept.len() != queued_len)
            {
                // A traced item the policy merged or dropped leaves the
                // same gap a suppression does: re-charge it so the next
                // delivered rebase of its entity carries the full age
                // (chained drops keep compounding via charge_origin).
                // One pass collects the surviving trace identities so
                // the per-item check is against the (tiny) traced
                // subset, not the whole kept list.
                let kept_traced: Vec<(u64, u32)> = selection
                    .kept
                    .iter()
                    .filter_map(|u| u.trace().map(|t| (u.entity(), t.seq)))
                    .collect();
                for (entity, seq, first_us) in queued_traced {
                    if !kept_traced.contains(&(entity, seq)) {
                        shard
                            .charges
                            .entry(entity)
                            .or_default()
                            .entry(receiver)
                            .and_modify(|t| *t = (*t).min(first_us))
                            .or_insert(first_us);
                    }
                }
            }
            shard.spans.lap(Stage::Policy);
            let kept_origins: Vec<Point> = selection.kept.iter().map(|u| u.origin()).collect();
            let origins = shard.encoder.encode_flush(receiver, &kept_origins);
            batches.push(FlushBatch {
                receiver,
                items: selection.kept,
                origins,
                rate_limited: selection.dropped as u64,
            });
            shard.spans.lap(Stage::Delta);
        }
        shard.spans.end_flush();
        (batches, orphaned)
    }

    // -- delta-stream bookkeeping --------------------------------------------

    /// Marks a receiver's delta stream dirty (next flush keyframes).
    pub fn reset_stream(&mut self, key: K) {
        let si = self.shard_ix(key);
        self.shards[si].encoder.reset(key);
    }

    /// Wipes every delta stream (driver shutdown, promotions).
    pub fn clear_streams(&mut self) {
        for shard in &mut self.shards {
            shard.encoder.clear();
        }
    }

    /// Number of receivers currently holding a delta base.
    pub fn streams(&self) -> usize {
        self.shards.iter().map(|s| s.encoder.streams()).sum()
    }

    /// Exports every delta stream as `(key, base, countdown)` in global
    /// key order (region snapshots) — canonical regardless of the shard
    /// count, so a standby with a different `flush_workers` imports the
    /// same bytes.
    pub fn export_streams(&self) -> Vec<(K, Point, u32)> {
        let mut out: Vec<(K, Point, u32)> = self
            .shards
            .iter()
            .flat_map(|s| s.encoder.export_streams())
            .collect();
        out.sort_by_key(|(k, _, _)| *k);
        out
    }

    /// Replaces the delta-stream table with exported state, re-routing
    /// each entry to its shard under the *local* shard count.
    pub fn import_streams(&mut self, streams: impl IntoIterator<Item = (K, Point, u32)>) {
        let mut per_shard: Vec<Vec<(K, Point, u32)>> = vec![Vec::new(); self.shards.len()];
        for entry in streams {
            per_shard[self.shard_ix(entry.0)].push(entry);
        }
        for (shard, entries) in self.shards.iter_mut().zip(per_shard) {
            shard.encoder.import_streams(entries);
        }
    }

    // -- prediction bases ----------------------------------------------------

    /// Exports every prediction basis as `(receiver, [(entity, basis)])`
    /// in global key order (region snapshots): what each receiver
    /// currently extrapolates each entity from.
    pub fn export_bases(&self) -> Vec<(K, Vec<(u64, Basis)>)> {
        let mut out: Vec<(K, Vec<(u64, Basis)>)> = self
            .shards
            .iter()
            .flat_map(|s| s.predicted.export())
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Replaces the prediction-basis table with exported state,
    /// re-routing each receiver to its shard under the *local* shard
    /// count. A promoted standby importing the primary's bases keeps
    /// suppressing consistently with what the receivers actually hold,
    /// instead of rebasing (and retransmitting) every entity at
    /// failover — even when its `flush_workers` differs from the
    /// primary's.
    pub fn import_bases(&mut self, bases: impl IntoIterator<Item = (K, Vec<(u64, Basis)>)>) {
        let mut per_shard = vec![Vec::new(); self.shards.len()];
        for entry in bases {
            per_shard[self.shard_ix(entry.0)].push(entry);
        }
        for (shard, entries) in self.shards.iter_mut().zip(per_shard) {
            shard.predicted.import(entries);
        }
    }

    /// Wipes every prediction basis and motion track (driver shutdown:
    /// reconnecting receivers start extrapolating from nothing).
    pub fn clear_bases(&mut self) {
        for shard in &mut self.shards {
            shard.predicted.clear();
        }
        self.motion.clear();
    }

    /// Number of receivers currently holding at least one prediction
    /// basis (observability for drivers and tests).
    pub fn prediction_receivers(&self) -> usize {
        self.shards.iter().map(|s| s.predicted.receivers()).sum()
    }

    // -- auto-tuning ---------------------------------------------------------

    /// Feeds the tuner one density observation; when it decides on a new
    /// resolution, the grid is rebuilt in place (subscribers, streams
    /// and pending batches all survive) and the new value returned.
    pub fn maybe_retune(&mut self) -> Option<u32> {
        let cells = self.tuner.observe(self.grid.len())?;
        let bounds = self.grid.bounds();
        let subscribers: Vec<(K, Point)> = self.grid.subscribers().collect();
        self.grid = Self::make_grid(bounds, cells);
        for (key, pos) in subscribers {
            self.grid.insert(key, pos);
        }
        Some(cells)
    }

    /// Exports the tuner state as `(cells, streak, pending)` (region
    /// snapshots).
    pub fn tuner_state(&self) -> (u32, u32, u32) {
        self.tuner.state()
    }

    /// Whether the auto-tuner is enabled.
    pub fn autotune_enabled(&self) -> bool {
        self.tuner.is_enabled()
    }

    /// Adopts a replicated tuner state (promotions), rebuilding the
    /// grid if the inherited resolution differs from the current one —
    /// a promoted standby starts with the primary's tuned grid instead
    /// of re-learning the density.
    pub fn restore_tuner(&mut self, cells: u32, streak: u32, pending: u32) {
        self.tuner.restore(cells, streak, pending);
        if self.tuner.current() != self.grid.cells_per_axis() {
            let bounds = self.grid.bounds();
            let subscribers: Vec<(K, Point)> = self.grid.subscribers().collect();
            self.grid = Self::make_grid(bounds, self.tuner.current());
            for (key, pos) in subscribers {
                self.grid.insert(key, pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal payload for the unit suite.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Ev {
        at: Point,
        entity: u64,
        bytes: usize,
        ring: u8,
    }

    impl Disseminated for Ev {
        fn origin(&self) -> Point {
            self.at
        }
        fn entity(&self) -> u64 {
            self.entity
        }
        fn wire_bytes(&self) -> usize {
            self.bytes
        }
        fn ring(&self) -> u8 {
            self.ring
        }
        fn strip_payload(&mut self) {
            self.bytes = 0;
        }
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            metric: Metric::Euclidean,
            policy: FlushPolicy::unlimited(),
            keyframe_every: 8,
            origin_quantum: 0.0,
            autotune: AutoTunerConfig::default(),
            predict: PredictorConfig::default(),
            position_only_ring: 0,
            telemetry: false,
        }
    }

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn pipe(rings: RingSet) -> DisseminationPipeline<u32, Ev> {
        DisseminationPipeline::new(world(), 16, rings, cfg())
    }

    fn ev(at: Point, ring: u8) -> Ev {
        Ev {
            at,
            entity: 1,
            bytes: 8,
            ring,
        }
    }

    #[test]
    fn untiered_pipeline_delivers_to_everyone_in_radius() {
        let mut p = pipe(RingSet::single(50.0));
        p.subscribe(1, Point::new(100.0, 100.0));
        p.subscribe(2, Point::new(130.0, 100.0));
        p.subscribe(3, Point::new(300.0, 300.0));
        let origin = Point::new(100.0, 100.0);
        let stats = p.disseminate(origin, origin, 1, 0.0, true, Some(1), true, |ring, _| {
            ev(origin, ring)
        });
        assert_eq!(stats.delivered, 1, "only subscriber 2 is in radius");
        assert_eq!(stats.sampled_out, 0);
        assert_eq!(stats.suppressed, 0);
        let out = p.flush(|_| Some(Point::new(130.0, 100.0)));
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].receiver, 2);
        assert_eq!(out.batches[0].items[0].ring, 0);
        assert!(out.batches[0].origins[0].is_keyframe());
    }

    #[test]
    fn outer_rings_sample_and_tag_items() {
        let rings = RingSet::from_tiers(&[20.0, 100.0], &[1, 2]);
        let mut p = pipe(rings);
        p.subscribe(1, Point::new(100.0, 100.0)); // near
        p.subscribe(2, Point::new(180.0, 100.0)); // far ring, rate 2
        let origin = Point::new(100.0, 100.0);
        for _ in 0..4 {
            p.disseminate(origin, origin, 1, 0.0, true, None, true, |ring, _| {
                ev(origin, ring)
            });
        }
        let out = p.flush(|k| {
            Some(if k == 1 {
                Point::new(100.0, 100.0)
            } else {
                Point::new(180.0, 100.0)
            })
        });
        let near = out.batches.iter().find(|b| b.receiver == 1).unwrap();
        let far = out.batches.iter().find(|b| b.receiver == 2).unwrap();
        assert_eq!(near.items.len(), 4, "near ring gets every event");
        assert!(near.items.iter().all(|i| i.ring == 0));
        assert_eq!(near.origins.len(), 4);
        assert_eq!(far.items.len(), 2, "far ring at rate 2 gets half");
        assert!(far.items.iter().all(|i| i.ring == 1));
    }

    #[test]
    fn vanished_receivers_are_orphaned_not_flushed() {
        let mut p = pipe(RingSet::single(50.0));
        p.subscribe(1, Point::new(100.0, 100.0));
        let origin = Point::new(110.0, 100.0);
        p.disseminate(origin, origin, 1, 0.0, true, None, true, |ring, _| {
            ev(origin, ring)
        });
        let out = p.flush(|_| None);
        assert!(out.batches.is_empty());
        assert_eq!(out.orphaned, 1);
        assert_eq!(p.streams(), 0, "orphaning clears the delta stream");
    }

    #[test]
    fn retune_preserves_subscribers_and_query_results() {
        let mut p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            8,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        for i in 0..2000u32 {
            p.subscribe(i, Point::new((i % 40) as f64 * 10.0, (i / 40) as f64 * 8.0));
        }
        // 2000 subscribers at 4/cell want ~22 → pow2 16; wait out the streak.
        let mut retuned = None;
        for _ in 0..AutoTunerConfig::default().streak {
            retuned = p.maybe_retune();
        }
        assert_eq!(retuned, Some(16));
        assert_eq!(p.cells_per_axis(), 16);
        assert_eq!(p.grid().len(), 2000, "rebuild keeps every subscriber");
        let at = Point::new(100.0, 100.0);
        let stats = p.disseminate(at, at, 1, 0.0, true, None, false, |ring, _| ev(at, ring));
        assert!(stats.delivered > 0);
    }

    #[test]
    fn tuner_state_round_trips_through_restore() {
        let p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            64,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        let (cells, streak, pending) = p.tuner_state();
        let mut q = DisseminationPipeline::<u32, Ev>::new(
            world(),
            8,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        q.subscribe(1, Point::new(10.0, 10.0));
        q.restore_tuner(cells, streak, pending);
        assert_eq!(q.cells_per_axis(), 64, "promoted grid inherits the tuning");
        assert_eq!(q.grid().len(), 1);
    }

    /// A predicting pipeline over one far-ring receiver watching entity
    /// 9 move linearly at 10 u/s (events every 100 ms).
    fn predicting_pipe(budget: f64) -> DisseminationPipeline<u32, Ev> {
        let rings = RingSet::from_tiers(&[20.0, 200.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Ev> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                predict: PredictorConfig::with_budgets(&[0.0, budget]),
                ..cfg()
            },
        );
        p.subscribe(1, Point::new(100.0, 300.0)); // far ring from the track below
        p
    }

    fn drive_linear(p: &mut DisseminationPipeline<u32, Ev>, steps: u32) -> DisseminateStats {
        let mut total = DisseminateStats::default();
        for i in 0..steps {
            let at = Point::new(100.0 + i as f64, 200.0);
            let s = p.disseminate(at, at, 9, i as f64 * 0.1, true, None, true, |ring, _| {
                ev(at, ring)
            });
            total.delivered += s.delivered;
            total.suppressed += s.suppressed;
            total.pred_error_max = total.pred_error_max.max(s.pred_error_max);
        }
        total
    }

    #[test]
    fn linear_motion_is_suppressed_within_budget() {
        let mut p = predicting_pipe(2.0);
        let stats = drive_linear(&mut p, 20);
        // The first two events establish the basis and the velocity
        // estimate; once the secant locks on, the extrapolation is exact
        // and everything else is suppressed.
        assert!(
            stats.suppressed >= 16,
            "linear motion must be suppressed: {stats:?}"
        );
        assert!(stats.pred_error_max <= 2.0, "{stats:?}");
        assert!(p.prediction_receivers() > 0);
        // Only the transmitted events were queued.
        let out = p.flush(|_| Some(Point::new(100.0, 300.0)));
        assert_eq!(out.batches[0].items.len() as u64, stats.delivered);
    }

    #[test]
    fn prediction_off_or_zero_budget_delivers_everything() {
        // Budget 0 on every ring: nothing suppressed even with predict on.
        let mut p = predicting_pipe(0.0);
        let stats = drive_linear(&mut p, 10);
        assert_eq!(stats.suppressed, 0);
        assert_eq!(stats.delivered, 10);
        // Predict off entirely: identical delivery, no bases kept.
        let rings = RingSet::from_tiers(&[20.0, 200.0], &[1, 1]);
        let mut q: DisseminationPipeline<u32, Ev> =
            DisseminationPipeline::new(world(), 16, rings, cfg());
        q.subscribe(1, Point::new(100.0, 300.0));
        let stats = drive_linear(&mut q, 10);
        assert_eq!(stats.suppressed, 0);
        assert_eq!(q.prediction_receivers(), 0);
    }

    #[test]
    fn near_ring_budget_is_pinned_to_zero() {
        let rings = RingSet::from_tiers(&[50.0, 200.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Ev> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                // A (misconfigured) near budget must be ignored.
                predict: PredictorConfig::with_budgets(&[100.0, 100.0]),
                ..cfg()
            },
        );
        p.subscribe(1, Point::new(110.0, 200.0)); // near ring
        let stats = drive_linear(&mut p, 10);
        assert_eq!(stats.suppressed, 0, "near means every event");
        assert_eq!(stats.delivered, 10);
    }

    #[test]
    fn rejoin_resets_the_receivers_prediction_bases() {
        let mut p = predicting_pipe(2.0);
        drive_linear(&mut p, 10);
        assert!(p.prediction_receivers() > 0);
        p.subscribe(1, Point::new(100.0, 300.0)); // rejoin
        assert_eq!(
            p.prediction_receivers(),
            0,
            "a fresh connection extrapolates from nothing"
        );
        // The next event transmits (no basis to suppress against).
        let at = Point::new(120.0, 200.0);
        let s = p.disseminate(at, at, 9, 2.0, true, None, true, |ring, _| ev(at, ring));
        assert_eq!(s.delivered, 1);
        assert_eq!(s.suppressed, 0);
    }

    #[test]
    fn exported_bases_reproduce_suppression_on_import() {
        let mut p = predicting_pipe(2.0);
        drive_linear(&mut p, 10);
        let mut q = predicting_pipe(2.0);
        q.import_bases(p.export_bases());
        // Both pipelines make the same decision on the same next event —
        // but q's motion model is cold, so feed both the same history
        // first via the bases alone: the decision is basis-driven.
        let at = Point::new(110.0, 200.0);
        let sp = p.disseminate(at, at, 9, 1.0, true, None, false, |ring, _| ev(at, ring));
        let sq = q.disseminate(at, at, 9, 1.0, true, None, false, |ring, _| ev(at, ring));
        assert_eq!(sp.suppressed, sq.suppressed);
        assert_eq!(sp.delivered, sq.delivered);
        assert_eq!(p.export_bases(), q.export_bases());
    }

    #[test]
    fn outer_ring_items_ship_position_only() {
        let rings = RingSet::from_tiers(&[20.0, 100.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Ev> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                position_only_ring: 1,
                ..cfg()
            },
        );
        p.subscribe(1, Point::new(100.0, 100.0)); // near
        p.subscribe(2, Point::new(180.0, 100.0)); // far
        let origin = Point::new(100.0, 100.0);
        let stats = p.disseminate(origin, origin, 9, 0.0, true, None, true, |ring, _| {
            ev(origin, ring)
        });
        assert_eq!(stats.stripped, 1, "only the far item degrades");
        let out = p.flush(|k| {
            Some(if k == 1 {
                Point::new(100.0, 100.0)
            } else {
                Point::new(180.0, 100.0)
            })
        });
        let near = out.batches.iter().find(|b| b.receiver == 1).unwrap();
        let far = out.batches.iter().find(|b| b.receiver == 2).unwrap();
        assert_eq!(near.items[0].bytes, 8, "near ships the full payload");
        assert_eq!(far.items[0].bytes, 0, "far ships position-only");
    }

    // -- sharding ------------------------------------------------------------

    /// Drives a moderately messy workload — joins, moves, tiered
    /// disseminations, an unsubscribe, a vanished receiver — and
    /// returns every flush outcome.
    fn drive_workload(p: &mut DisseminationPipeline<u32, Ev>) -> Vec<FlushOutcome<u32, Ev>> {
        let mut rng: u64 = 0x5eed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for k in 0..40u32 {
            let x = (next() % 400) as f64;
            let y = (next() % 400) as f64;
            p.subscribe(k, Point::new(x, y));
        }
        let mut outs = Vec::new();
        for round in 0..6u32 {
            for i in 0..25u32 {
                let at = Point::new((next() % 400) as f64, (next() % 400) as f64);
                let entity = next() % 8 + 1;
                let t = (round * 25 + i) as f64 * 0.05;
                p.disseminate(
                    at,
                    at,
                    entity,
                    t,
                    i % 3 != 0,
                    Some(i % 40),
                    true,
                    |ring, _| Ev {
                        at,
                        entity,
                        bytes: 8 + (entity as usize % 4) * 16,
                        ring,
                    },
                );
            }
            if round == 2 {
                p.unsubscribe(7);
            }
            let gone = 5 + round; // receiver vanished between enqueue and flush
            outs.push(p.flush(move |k| {
                if k == gone {
                    None
                } else {
                    Some(Point::new((k % 20) as f64 * 20.0, (k / 20) as f64 * 20.0))
                }
            }));
        }
        outs
    }

    #[test]
    fn flush_output_is_byte_identical_for_any_shard_count() {
        let rings = RingSet::from_tiers(&[40.0, 90.0, 150.0], &[1, 2, 4]);
        let make = |shards: u32| {
            let cfg = PipelineConfig {
                policy: FlushPolicy {
                    max_items: 6,
                    budget_bytes: 200,
                },
                predict: PredictorConfig::with_budgets(&[0.0, 1.5, 3.0]),
                position_only_ring: 2,
                ..cfg()
            };
            DisseminationPipeline::<u32, Ev>::new(world(), 16, rings, cfg).with_shards(shards)
        };
        let mut reference = make(1);
        let baseline = drive_workload(&mut reference);
        for shards in 2..=8u32 {
            let mut p = make(shards);
            assert_eq!(p.shard_count(), shards as usize);
            let outs = drive_workload(&mut p);
            assert_eq!(
                outs, baseline,
                "{shards}-shard flush output diverged from the sequential path"
            );
        }
    }

    #[test]
    fn parallel_flush_matches_the_sequential_path() {
        let rings = RingSet::from_tiers(&[40.0, 150.0], &[1, 2]);
        let mut seq =
            DisseminationPipeline::<u32, Ev>::new(world(), 16, rings, cfg()).with_shards(4);
        let mut par = DisseminationPipeline::<u32, Ev>::new(world(), 16, rings, cfg())
            .with_shards(4)
            .with_parallel_flush();
        assert!(par.parallel_flush());
        assert_eq!(drive_workload(&mut par), drive_workload(&mut seq));
    }

    #[test]
    fn exports_reroute_across_differing_shard_counts() {
        let rings = RingSet::from_tiers(&[20.0, 200.0], &[1, 1]);
        let make = |shards: u32| {
            DisseminationPipeline::<u32, Ev>::new(
                world(),
                16,
                rings,
                PipelineConfig {
                    predict: PredictorConfig::with_budgets(&[0.0, 2.0]),
                    ..cfg()
                },
            )
            .with_shards(shards)
        };
        let mut primary = make(4);
        for k in 0..12u32 {
            primary.subscribe(k, Point::new(100.0 + k as f64 * 5.0, 300.0));
        }
        for i in 0..10u32 {
            let at = Point::new(100.0 + i as f64, 200.0);
            primary.disseminate(at, at, 9, i as f64 * 0.1, true, None, true, |ring, _| {
                ev(at, ring)
            });
        }
        primary.flush(|_| Some(Point::new(100.0, 300.0)));
        // Promote onto a standby running a different worker count (the
        // gameserver restore flow: re-anchor the grid, then import).
        let mut standby = make(2);
        let subs: Vec<(u32, Point)> = primary.grid().subscribers().collect();
        standby.reset(world(), subs);
        standby.import_streams(primary.export_streams());
        standby.import_bases(primary.export_bases());
        assert_eq!(standby.streams(), primary.streams());
        assert_eq!(standby.export_streams(), primary.export_streams());
        assert_eq!(standby.export_bases(), primary.export_bases());
        // Both make identical decisions on the next event and encode the
        // next flush identically.
        let at = Point::new(111.0, 200.0);
        let sp = primary.disseminate(at, at, 9, 1.1, true, None, true, |ring, _| ev(at, ring));
        let sq = standby.disseminate(at, at, 9, 1.1, true, None, true, |ring, _| ev(at, ring));
        assert_eq!(sp, sq);
        let fp = primary.flush(|_| Some(Point::new(100.0, 300.0)));
        let fq = standby.flush(|_| Some(Point::new(100.0, 300.0)));
        assert_eq!(fp, fq);
    }

    #[test]
    fn stage_histograms_merge_across_shards() {
        let rings = RingSet::single(150.0);
        let mut p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            16,
            rings,
            PipelineConfig {
                telemetry: true,
                ..cfg()
            },
        )
        .with_shards(4);
        for k in 0..16u32 {
            p.subscribe(k, Point::new(100.0 + k as f64, 100.0));
        }
        let origin = Point::new(100.0, 100.0);
        for _ in 0..3 {
            p.disseminate(origin, origin, 1, 0.0, true, None, true, |ring, _| {
                ev(origin, ring)
            });
            p.flush(|_| Some(origin));
        }
        // Driver-thread stages: one sample per flush.
        assert_eq!(p.stage_histogram(Stage::Query).count(), 3);
        assert_eq!(p.stage_histogram(Stage::Tier).count(), 3);
        assert_eq!(p.stage_histogram(Stage::Predict).count(), 3);
        // Sharded stages: one sample per shard per flush.
        assert_eq!(p.stage_histogram(Stage::Policy).count(), 12);
        assert_eq!(p.stage_histogram(Stage::Delta).count(), 12);
        // The retained last-flush breakdown mirrors the shard layout.
        let spans = p.last_flush_spans();
        assert_eq!(spans.len(), 4, "one breakdown row per shard");
        assert_eq!(p.shard_stage_sums(Stage::Delta).len(), 4);
        assert_eq!(p.shard_stage_sums(Stage::Query).len(), 1);
    }

    // -- trace charging ------------------------------------------------------

    use matrix_telemetry::TraceTag;

    /// A traced payload for the charging tests.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Tr {
        at: Point,
        entity: u64,
        tag: Option<TraceTag>,
    }

    impl Disseminated for Tr {
        fn origin(&self) -> Point {
            self.at
        }
        fn entity(&self) -> u64 {
            self.entity
        }
        fn wire_bytes(&self) -> usize {
            8
        }
        fn trace(&self) -> Option<TraceTag> {
            self.tag
        }
        fn trace_charge(&mut self, age_us: u64) {
            if let Some(tag) = &mut self.tag {
                tag.charge(age_us);
            }
        }
    }

    #[test]
    fn suppressed_events_charge_the_next_delivered_rebase() {
        let rings = RingSet::from_tiers(&[20.0, 200.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Tr> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                predict: PredictorConfig::with_budgets(&[0.0, 2.0]),
                ..cfg()
            },
        )
        .with_trace_charging();
        assert!(p.trace_charging());
        p.subscribe(1, Point::new(100.0, 300.0)); // far ring
        let mut first_gap_us: Option<u64> = None;
        let mut expected: Vec<(u32, u64)> = Vec::new(); // (seq, stale_us)
        for i in 0..20u32 {
            let at = Point::new(100.0 + i as f64, 200.0);
            let ingest_us = i as u64 * 100_000;
            let tag = TraceTag::new(7, i, ingest_us);
            let s = p.disseminate(at, at, 9, i as f64 * 0.1, true, None, true, |_, _| Tr {
                at,
                entity: 9,
                tag: Some(tag),
            });
            if s.suppressed > 0 {
                first_gap_us.get_or_insert(ingest_us);
            } else {
                assert_eq!(s.delivered, 1);
                let stale = first_gap_us
                    .take()
                    .map_or(0, |gap| ingest_us.saturating_sub(gap));
                expected.push((i, stale));
            }
        }
        assert!(
            expected.iter().any(|&(_, stale)| stale > 0),
            "the drive must produce at least one charged rebase: {expected:?}"
        );
        let out = p.flush(|_| Some(Point::new(100.0, 300.0)));
        let items = &out.batches[0].items;
        assert_eq!(items.len(), expected.len());
        for (item, (seq, stale)) in items.iter().zip(expected) {
            let tag = item.tag.expect("every delivered item stays traced");
            assert_eq!(tag.seq, seq);
            assert_eq!(
                tag.stale_us, stale,
                "seq {seq} must carry the suppressed gap's age"
            );
        }
    }

    #[test]
    fn policy_dropped_traces_recharge_a_later_flush() {
        let mut p: DisseminationPipeline<u32, Tr> = DisseminationPipeline::new(
            world(),
            16,
            RingSet::single(150.0),
            PipelineConfig {
                policy: FlushPolicy {
                    max_items: 1,
                    budget_bytes: 0,
                },
                ..cfg()
            },
        )
        .with_trace_charging();
        p.subscribe(1, Point::new(100.0, 100.0));
        let send = |p: &mut DisseminationPipeline<u32, Tr>, entity, x, seq, ingest_us| {
            let at = Point::new(x, 100.0);
            p.disseminate(
                at,
                at,
                entity,
                ingest_us as f64 / 1e6,
                true,
                None,
                true,
                |_, _| Tr {
                    at,
                    entity,
                    tag: Some(TraceTag::new(7, seq, ingest_us)),
                },
            );
        };
        // Entity 8 queues first but sits farther from the viewer than
        // entity 9, so the 1-item budget drops it.
        send(&mut p, 8, 120.0, 0, 0);
        send(&mut p, 9, 105.0, 1, 100_000);
        let out = p.flush(|_| Some(Point::new(100.0, 100.0)));
        assert_eq!(out.batches[0].items.len(), 1);
        assert_eq!(out.batches[0].items[0].entity, 9);
        assert_eq!(out.batches[0].rate_limited, 1);
        // The next rebase of entity 8 carries the dropped event's age.
        send(&mut p, 8, 121.0, 2, 300_000);
        let out = p.flush(|_| Some(Point::new(100.0, 100.0)));
        let tag = out.batches[0].items[0].tag.unwrap();
        assert_eq!(tag.seq, 2);
        assert_eq!(tag.stale_us, 300_000, "charged from the dropped seq 0");
        assert_eq!(tag.staleness_us(450_000), 150_000 + 300_000);
    }
}
