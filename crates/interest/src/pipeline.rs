//! The composable per-client dissemination pipeline.
//!
//! Earlier revisions hand-wired the dissemination stages inside the game
//! server's flush path: the interest grid was queried in one method, the
//! batcher filled inline, and the flush loop called the policy and the
//! delta encoder back to back with bespoke glue. Every new stage meant
//! editing that monolith in two drivers. [`DisseminationPipeline`] makes
//! the stages an explicit, reusable component with one seam per stage:
//!
//! 1. **interest query** — the [`InterestGrid`](crate::InterestGrid)
//!    answers "who can see this point" within the outermost ring;
//! 2. **ring tiering** — [`RingSet`](crate::RingSet) grades each
//!    receiver by distance and [`RingSampler`](crate::RingSampler)
//!    deterministically samples the outer tiers (near = every event);
//! 3. **prediction** — a [`MotionModel`](matrix_predict::MotionModel)
//!    estimates each entity's velocity and a
//!    [`PredictedStream`](matrix_predict::PredictedStream) simulates
//!    every receiver's dead-reckoning extrapolation, *suppressing* the
//!    event for receivers whose prediction stays within the ring's
//!    error budget (the near ring's budget is pinned to 0 — near means
//!    every event, preserving the delivery guarantee). Outer-ring items
//!    can additionally ship position-only
//!    ([`Disseminated::strip_payload`]);
//! 4. **entity merge + budget policy** —
//!    [`FlushPolicy`](crate::FlushPolicy) ranks the queued items by
//!    relevance, supersedes per-entity duplicates under pressure and
//!    enforces the count/byte budgets;
//! 5. **delta encoding** — [`DeltaEncoder`](crate::DeltaEncoder) turns
//!    surviving origins into exact offsets with periodic keyframes.
//!
//! A density-driven [`AutoTuner`](crate::AutoTuner) re-picks the grid
//! resolution as the subscriber count drifts (stage 1's only tunable),
//! rebuilding the index in place.
//!
//! The pipeline is deliberately payload-agnostic: anything implementing
//! [`Disseminated`] flows through, so the middleware's update items, the
//! property suites' synthetic payloads and the benches all drive the
//! same code. With rings untiered and the tuner disabled, the pipeline's
//! output is **byte-identical** to the hand-wired v2 flush path — a
//! property test in `tests/interest_properties.rs` pins that equivalence
//! down, which is what makes this refactor safe to sit under both the
//! discrete-event harness and the async runtime.

use crate::delta::{DeltaEncoder, EncodedOrigin};
use crate::grid::InterestGrid;
use crate::policy::{FlushPolicy, ANON_ENTITY};
use crate::rings::{RingSampler, RingSet, MAX_RINGS};
use crate::tuner::{AutoTuner, AutoTunerConfig};
use crate::UpdateBatcher;
use matrix_geometry::{Metric, Point, Rect};
use matrix_predict::{quantize_velocity, Admission, Basis, MotionModel, PredictedStream};
use matrix_telemetry::{Stage, StageSpans};
use std::hash::Hash;

/// What the pipeline needs to know about a payload to rank, merge,
/// budget and account for it.
pub trait Disseminated {
    /// Where the event happened (already quantised by the producer if a
    /// wire lattice is in effect).
    fn origin(&self) -> Point;
    /// Source entity id (`0` = anonymous, exempt from per-entity
    /// superseding).
    fn entity(&self) -> u64;
    /// Estimated absolute wire cost, used by the byte budget.
    fn wire_bytes(&self) -> usize;
    /// The vision ring this item was admitted under (`0` = near). The
    /// producer's `make` callback receives the ring and embeds it in
    /// the payload (it usually travels to the receiver as a fidelity
    /// tag), so the pipeline queues no side-band tier state.
    fn ring(&self) -> u8 {
        0
    }
    /// Degrades this item to position-only: strip the game payload,
    /// keep the origin (and velocity). Applied by the pipeline to items
    /// admitted through rings at or beyond
    /// [`PipelineConfig::position_only_ring`] — a far-ring entity's
    /// whereabouts matter for rendering, its full state rarely does.
    /// The default is a no-op for payloads with nothing to strip.
    fn strip_payload(&mut self) {}
}

/// Configuration of the pipeline's dead-reckoning stage.
///
/// The error budget is an exact bound on the receiver's extrapolation
/// error *at admission*: suppression simulates the receiver with the
/// receiver's own arithmetic, so a suppressed event is one the
/// receiver provably reconstructs within budget. Downstream of this
/// stage the ordinary batching semantics apply — an admitted rebase
/// waits out the batch interval like any item, and under count/byte
/// cap pressure ([`FlushPolicy`]) it can be deferred to a later flush
/// with the same staleness the rate limiter always traded. The
/// configurations whose end-to-end error bound is verified (E15, the
/// property suites) therefore run per-event flushes with the caps off;
/// production deployments that cap flushes should read the budget as
/// an admission-time bound, not a render-time one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Master switch. Off (the default) keeps the pipeline byte-identical
    /// to the pre-prediction send path: no velocities on the wire, no
    /// suppression, no motion bookkeeping.
    pub enabled: bool,
    /// Per-ring receiver error budgets in world units, parallel to the
    /// ring set (`0.0` = never suppress). The near ring (index 0) is
    /// pinned to `0.0` regardless of this entry — near means every
    /// event.
    pub error_budgets: [f64; MAX_RINGS],
    /// Sliding-window length of the per-entity velocity estimator
    /// (observations; clamped to ≥ 2).
    pub motion_window: u32,
    /// Fixed-point lattice shipped velocities are snapped to, in world
    /// units per second (`0.0` = fall back to the origin lattice).
    /// Velocities tolerate a much coarser lattice than origins: a
    /// quantization error of `q/2` per axis drifts the receiver by at
    /// most `q/√2 · t` over a basis lifetime `t`, far inside any usable
    /// ring budget — while every halving of the resolution shortens the
    /// tag on the text codec. Keep it a power-of-two multiple of the
    /// origin quantum so the binary codec's fixed-point field carries
    /// the snapped value exactly.
    pub velocity_quantum: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            enabled: false,
            error_budgets: [0.0; MAX_RINGS],
            motion_window: 4,
            velocity_quantum: 0.125,
        }
    }
}

impl PredictorConfig {
    /// An enabled predictor with the given per-ring budgets (missing
    /// entries stay `0.0` = never suppress).
    pub fn with_budgets(budgets: &[f64]) -> PredictorConfig {
        let mut cfg = PredictorConfig {
            enabled: true,
            ..PredictorConfig::default()
        };
        for (slot, b) in cfg.error_budgets.iter_mut().zip(budgets) {
            *slot = b.max(0.0);
        }
        cfg
    }

    /// The effective budget for a ring: entry clamped into the array,
    /// with the near ring pinned to 0 (every event).
    pub fn budget_for(&self, ring: u8) -> f64 {
        if ring == 0 {
            return 0.0;
        }
        self.error_budgets[(ring as usize).min(MAX_RINGS - 1)]
    }
}

/// Static configuration of a pipeline (everything except the grid
/// geometry, which arrives via [`DisseminationPipeline::reset`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Distance metric for interest queries and relevance ranking.
    pub metric: Metric,
    /// Per-client, per-flush delivery budgets (stage 3).
    pub policy: FlushPolicy,
    /// Delta keyframe interval (stage 4; `0` = absolute-only).
    pub keyframe_every: u32,
    /// Fixed-point lattice the delta encoder verifies offsets against
    /// (`0.0` = no lattice requirement). Shipped velocities snap to
    /// their own, coarser lattice —
    /// [`PredictorConfig::velocity_quantum`].
    pub origin_quantum: f64,
    /// Grid resolution auto-tuning (stage 1's knob).
    pub autotune: AutoTunerConfig,
    /// Dead-reckoning suppression (stage 3's knob).
    pub predict: PredictorConfig,
    /// Ring index from which items ship position-only
    /// ([`Disseminated::strip_payload`]); `0` disables payload
    /// degradation (the near ring always ships in full).
    pub position_only_ring: u8,
    /// Enables the per-stage span timers
    /// ([`DisseminationPipeline::spans`]): each stage's time per flush
    /// cycle lands in a latency histogram. Off (the default), every
    /// timing call is a branch-only no-op — no clock reads.
    pub telemetry: bool,
}

/// One receiver's flushed batch. `items` and `origins` are parallel —
/// handing back the two vectors the policy and encoder stages already
/// produced keeps the flush hot path free of intermediate copies (the
/// caller zips them while assembling its wire messages).
#[derive(Debug, Clone)]
pub struct FlushBatch<K, U> {
    /// The receiving subscriber.
    pub receiver: K,
    /// Kept payloads, most relevant first. Never empty. Each carries
    /// its ring tag ([`Disseminated::ring`]).
    pub items: Vec<U>,
    /// How each item's origin travels on the wire (parallel to
    /// `items`).
    pub origins: Vec<EncodedOrigin>,
    /// Items merged or dropped by the budget policy for this receiver.
    pub rate_limited: u64,
}

/// Everything one flush produced.
#[derive(Debug, Clone, Default)]
pub struct FlushOutcome<K, U> {
    /// Per-receiver batches, in receiver order.
    pub batches: Vec<FlushBatch<K, U>>,
    /// Queued items discarded because their receiver vanished between
    /// enqueue and flush.
    pub orphaned: u64,
}

/// What one dissemination (stages 1–3) did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DisseminateStats {
    /// Receivers the event was delivered to (queued, or counted when
    /// emission is off).
    pub delivered: u64,
    /// Receivers inside the AOI whose ring sampled this event out.
    pub sampled_out: u64,
    /// Receivers whose dead-reckoning extrapolation held this event
    /// within the ring's error budget — nothing was queued; the
    /// receiver's prediction stands in for the transmission.
    pub suppressed: u64,
    /// Items degraded to position-only by the per-ring payload policy.
    pub stripped: u64,
    /// Sum of the simulated receiver errors over the suppressed
    /// deliveries (world units) — `sum / suppressed` is the mean error
    /// the predictions absorbed.
    pub pred_error_sum: f64,
    /// Largest simulated receiver error among the suppressed deliveries.
    pub pred_error_max: f64,
}

/// The composed dissemination pipeline (see the module docs for the
/// stage walk-through).
#[derive(Debug, Clone)]
pub struct DisseminationPipeline<K: Ord + Copy + Eq + Hash, U> {
    metric: Metric,
    policy: FlushPolicy,
    rings: RingSet,
    grid: InterestGrid<K>,
    sampler: RingSampler<K>,
    batcher: UpdateBatcher<K, U>,
    encoder: DeltaEncoder<K>,
    tuner: AutoTuner,
    predict: PredictorConfig,
    position_only_ring: u8,
    vel_quantum: f64,
    motion: MotionModel,
    predicted: PredictedStream<K>,
    spans: StageSpans,
    /// Reused per-dissemination candidate buffer `(key, pos, ring)` —
    /// stage 1 fills it, stages 2–3 compact and drain it in place.
    scratch: Vec<(K, Point, u8)>,
}

impl<K: Ord + Copy + Eq + Hash, U: Disseminated> DisseminationPipeline<K, U> {
    /// Builds a pipeline over `bounds` at `cells_per_axis`, with the
    /// given ring tiers.
    pub fn new(
        bounds: Rect,
        cells_per_axis: u32,
        rings: RingSet,
        cfg: PipelineConfig,
    ) -> DisseminationPipeline<K, U> {
        let cells = cells_per_axis.max(1);
        DisseminationPipeline {
            metric: cfg.metric,
            policy: cfg.policy,
            rings,
            grid: Self::make_grid(bounds, cells),
            sampler: RingSampler::new(),
            batcher: UpdateBatcher::new(),
            encoder: DeltaEncoder::new(cfg.keyframe_every).with_quantum(cfg.origin_quantum),
            tuner: AutoTuner::new(cfg.autotune, cells),
            predict: cfg.predict,
            position_only_ring: cfg.position_only_ring,
            vel_quantum: if cfg.predict.velocity_quantum > 0.0 {
                cfg.predict.velocity_quantum
            } else {
                cfg.origin_quantum
            },
            motion: MotionModel::new(cfg.predict.motion_window),
            predicted: PredictedStream::new(),
            spans: StageSpans::new(cfg.telemetry),
            scratch: Vec::new(),
        }
    }

    /// Hold jittering subscribers in their cell for a tenth of a cell;
    /// the grid widens queries by the same margin, so results are exact.
    fn make_grid(bounds: Rect, cells: u32) -> InterestGrid<K> {
        let margin = 0.1 * (bounds.width() / cells as f64).min(bounds.height() / cells as f64);
        InterestGrid::new(bounds, cells).with_hysteresis(margin.max(0.0))
    }

    // -- subscribers (stage 1 state) -----------------------------------------

    /// Adds or re-adds a subscriber, resetting its delta stream (a
    /// (re)joining receiver holds no base, so its next flush keyframes)
    /// and its prediction bases (a fresh connection extrapolates from
    /// nothing, so the sender's mirror must be empty too).
    pub fn subscribe(&mut self, key: K, pos: Point) {
        self.grid.insert(key, pos);
        self.encoder.reset(key);
        self.predicted.forget_receiver(key);
    }

    /// Repositions a subscriber.
    pub fn reposition(&mut self, key: K, pos: Point) {
        self.grid.update(key, pos);
    }

    /// Removes a subscriber, dropping its queued updates, delta stream,
    /// sampling and prediction state. Returns how many queued updates
    /// died with it.
    pub fn unsubscribe(&mut self, key: K) -> usize {
        self.grid.remove(key);
        self.encoder.forget(key);
        self.sampler.forget(key);
        self.predicted.forget_receiver(key);
        self.batcher.forget(key)
    }

    /// Drops every trace of a departed *entity* (motion track and every
    /// receiver's prediction basis for it). Distinct from
    /// [`DisseminationPipeline::unsubscribe`], which removes a
    /// *receiver*: a client is usually both.
    pub fn forget_entity(&mut self, entity: u64) {
        self.motion.forget(entity);
        self.predicted.forget_entity(entity);
    }

    /// Re-anchors the grid to a new range with the given subscriber set
    /// (splits, reclaims, promotions — rare), keeping the tuned
    /// resolution, streams and pending batches.
    pub fn reset(&mut self, bounds: Rect, subscribers: impl IntoIterator<Item = (K, Point)>) {
        self.grid = Self::make_grid(bounds, self.tuner.current());
        for (key, pos) in subscribers {
            self.grid.insert(key, pos);
        }
    }

    /// Replaces the ring tiers (the registered radius changed).
    pub fn set_rings(&mut self, rings: RingSet) {
        self.rings = rings;
    }

    /// The current ring tiers.
    pub fn rings(&self) -> &RingSet {
        &self.rings
    }

    /// The interest grid (drivers query it for observability).
    pub fn grid(&self) -> &InterestGrid<K> {
        &self.grid
    }

    /// The grid resolution currently in effect.
    pub fn cells_per_axis(&self) -> u32 {
        self.grid.cells_per_axis()
    }

    /// The per-stage span timers (a no-op sink unless the pipeline was
    /// built with [`PipelineConfig::telemetry`] on).
    pub fn spans(&self) -> &StageSpans {
        &self.spans
    }

    // -- stages 1–3: query, tier, sample, predict, queue ---------------------

    /// Disseminates one event: queries the grid within the outermost
    /// ring, grades each receiver's ring by distance, samples the outer
    /// tiers, runs dead-reckoning suppression against each receiver's
    /// prediction basis, and (when `emit`) queues one item per admitted
    /// receiver. `origin` is the true event position (AOI distances);
    /// `wire_origin` is the lattice-snapped position receivers
    /// reconstruct — prediction bases are kept in wire coordinates so
    /// the sender's error simulation matches the receiver bit-for-bit.
    /// `make` produces the payload per admitted receiver, embedding the
    /// ring it was admitted under and the velocity shipped with the
    /// item (`(0.0, 0.0)` whenever prediction is off). An untiered ring
    /// set with prediction off costs exactly what the binary-radius
    /// fan-out did.
    ///
    /// `suppressible` marks events whose content a receiver can
    /// reconstruct by extrapolation — pure position updates. Events
    /// carrying payloads a prediction cannot reproduce (actions,
    /// chat, remote deliveries) must pass `false`: they still feed the
    /// motion model and *rebase* every receiver's prediction (the item
    /// carries origin + velocity like any other), but they are never
    /// suppressed — losing an action is a gameplay bug, not graceful
    /// degradation.
    #[allow(clippy::too_many_arguments)] // one seam per stage input, by design
    pub fn disseminate(
        &mut self,
        origin: Point,
        wire_origin: Point,
        entity: u64,
        now_secs: f64,
        suppressible: bool,
        exclude: Option<K>,
        emit: bool,
        mut make: impl FnMut(u8, (f64, f64)) -> U,
    ) -> DisseminateStats {
        let mut stats = DisseminateStats::default();
        let metric = self.metric;
        let rings = self.rings;
        let tiered = rings.is_tiered();
        // Anonymous events carry no entity identity to model or to
        // extrapolate, so they bypass the prediction stage entirely.
        let predicting = self.predict.enabled && entity != ANON_ENTITY;
        let vel = if predicting {
            // The model observes every event — suppressed or not — so
            // the velocity estimate tracks the true trajectory. The
            // shipped velocity sits on its own (coarser) wire lattice;
            // see [`PredictorConfig::velocity_quantum`].
            self.motion.observe(entity, wire_origin, now_secs);
            quantize_velocity(self.motion.velocity(entity), self.vel_quantum)
        } else {
            (0.0, 0.0)
        };
        self.spans.begin();
        // Stage 1: the grid answers "who can see this point". Candidates
        // land in a reusable scratch buffer so the later stages run as
        // plain loops the span timer can bracket; iteration order is the
        // grid's, exactly as when the stages were fused in one closure.
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.grid
            .query(origin, rings.outer_radius(), metric, |key, pos| {
                if Some(key) != exclude {
                    candidates.push((key, pos, 0u8));
                }
            });
        self.spans.lap(Stage::Query);
        // Stage 2: grade each candidate's ring by distance and let the
        // sampler thin the periphery, compacting survivors in place.
        let mut kept = 0;
        for i in 0..candidates.len() {
            let (key, pos, _) = candidates[i];
            let ring = if tiered {
                // The grid's Euclidean filter compares squared
                // distances while `ring_of` compares the rooted
                // one; at the outer boundary the two can disagree
                // by an ulp, so a receiver the query admitted is
                // clamped into the outermost ring rather than
                // silently dropped.
                let ring = rings
                    .ring_of(pos.distance_by(origin, metric))
                    .unwrap_or((rings.len() - 1) as u8);
                if !self.sampler.admit(&rings, key, ring) {
                    stats.sampled_out += 1;
                    continue;
                }
                ring
            } else {
                0
            };
            candidates[kept] = (key, pos, ring);
            kept += 1;
        }
        candidates.truncate(kept);
        self.spans.lap(Stage::Tier);
        // Stage 3: dead-reckoning admission, payload stripping, queueing.
        for &(key, _, ring) in &candidates {
            if predicting {
                // Non-suppressible events admit with budget 0:
                // always transmitted, and the transmission rebases
                // the receiver's prediction like any other.
                let budget = if suppressible {
                    self.predict.budget_for(ring)
                } else {
                    0.0
                };
                match self
                    .predicted
                    .admit(key, entity, wire_origin, vel, now_secs, budget)
                {
                    Admission::Suppress { error } => {
                        stats.suppressed += 1;
                        stats.pred_error_sum += error;
                        stats.pred_error_max = stats.pred_error_max.max(error);
                        continue;
                    }
                    Admission::Send => {}
                }
            }
            stats.delivered += 1;
            let strip = self.position_only_ring > 0 && ring >= self.position_only_ring;
            if strip {
                stats.stripped += 1;
            }
            if emit {
                let mut item = make(ring, vel);
                if strip {
                    item.strip_payload();
                }
                self.batcher.push(key, item);
            }
        }
        self.spans.lap(Stage::Predict);
        candidates.clear();
        self.scratch = candidates;
        stats
    }

    /// Queues one already-admitted item directly (snapshot restore: the
    /// item passed sampling on the primary; it must not be re-sampled).
    pub fn enqueue(&mut self, key: K, item: U) {
        self.batcher.push(key, item);
    }

    /// Whether any updates are queued.
    pub fn has_pending(&self) -> bool {
        !self.batcher.is_empty()
    }

    /// Visits every queued batch without consuming it (snapshots).
    pub fn pending(&self) -> impl Iterator<Item = (&K, &[U])> {
        self.batcher.peek()
    }

    /// Drops every queued update and all sampling phase (promotions:
    /// the captured pending set describes the pairing moment, not the
    /// crash).
    pub fn clear_pending(&mut self) {
        self.batcher = UpdateBatcher::new();
        self.sampler.clear();
    }

    // -- stages 3+4: merge, budget, encode -----------------------------------

    /// Flushes every queued batch through the policy and the encoder.
    /// `viewer_of` resolves a receiver's current position; `None` means
    /// the receiver vanished between enqueue and flush (its items are
    /// discarded and counted in [`FlushOutcome::orphaned`]).
    pub fn flush(&mut self, viewer_of: impl Fn(K) -> Option<Point>) -> FlushOutcome<K, U> {
        let mut outcome = FlushOutcome {
            batches: Vec::new(),
            orphaned: 0,
        };
        self.spans.begin();
        for (receiver, queued) in self.batcher.drain() {
            let Some(viewer) = viewer_of(receiver) else {
                outcome.orphaned += queued.len() as u64;
                self.encoder.forget(receiver);
                // The prediction mirror dies with the stream: these
                // queued rebases never reached the receiver, so bases
                // recorded for them describe state nobody holds.
                self.predicted.forget_receiver(receiver);
                continue;
            };
            let selection = self.policy.select(
                viewer,
                self.metric,
                |u: &U| u.origin(),
                |u: &U| u.entity(),
                |u: &U| u.wire_bytes(),
                queued,
            );
            self.spans.lap(Stage::Policy);
            let kept_origins: Vec<Point> = selection.kept.iter().map(|u| u.origin()).collect();
            let origins = self.encoder.encode_flush(receiver, &kept_origins);
            outcome.batches.push(FlushBatch {
                receiver,
                items: selection.kept,
                origins,
                rate_limited: selection.dropped as u64,
            });
            self.spans.lap(Stage::Delta);
        }
        // One flush cycle ends here: the spans fold the time the laps
        // attributed to each stage (across every dissemination since the
        // last flush, plus this drain) into one histogram sample each.
        self.spans.end_flush();
        outcome
    }

    // -- delta-stream bookkeeping --------------------------------------------

    /// Marks a receiver's delta stream dirty (next flush keyframes).
    pub fn reset_stream(&mut self, key: K) {
        self.encoder.reset(key);
    }

    /// Wipes every delta stream (driver shutdown, promotions).
    pub fn clear_streams(&mut self) {
        self.encoder.clear();
    }

    /// Number of receivers currently holding a delta base.
    pub fn streams(&self) -> usize {
        self.encoder.streams()
    }

    /// Exports every delta stream as `(key, base, countdown)` (region
    /// snapshots).
    pub fn export_streams(&self) -> Vec<(K, Point, u32)> {
        self.encoder.export_streams()
    }

    /// Replaces the delta-stream table with exported state.
    pub fn import_streams(&mut self, streams: impl IntoIterator<Item = (K, Point, u32)>) {
        self.encoder.import_streams(streams);
    }

    // -- prediction bases ----------------------------------------------------

    /// Exports every prediction basis as `(receiver, [(entity, basis)])`
    /// in key order (region snapshots): what each receiver currently
    /// extrapolates each entity from.
    pub fn export_bases(&self) -> Vec<(K, Vec<(u64, Basis)>)> {
        self.predicted.export()
    }

    /// Replaces the prediction-basis table with exported state. A
    /// promoted standby importing the primary's bases keeps suppressing
    /// consistently with what the receivers actually hold, instead of
    /// rebasing (and retransmitting) every entity at failover.
    pub fn import_bases(&mut self, bases: impl IntoIterator<Item = (K, Vec<(u64, Basis)>)>) {
        self.predicted.import(bases);
    }

    /// Wipes every prediction basis and motion track (driver shutdown:
    /// reconnecting receivers start extrapolating from nothing).
    pub fn clear_bases(&mut self) {
        self.predicted.clear();
        self.motion.clear();
    }

    /// Number of receivers currently holding at least one prediction
    /// basis (observability for drivers and tests).
    pub fn prediction_receivers(&self) -> usize {
        self.predicted.receivers()
    }

    // -- auto-tuning ---------------------------------------------------------

    /// Feeds the tuner one density observation; when it decides on a new
    /// resolution, the grid is rebuilt in place (subscribers, streams
    /// and pending batches all survive) and the new value returned.
    pub fn maybe_retune(&mut self) -> Option<u32> {
        let cells = self.tuner.observe(self.grid.len())?;
        let bounds = self.grid.bounds();
        let subscribers: Vec<(K, Point)> = self.grid.subscribers().collect();
        self.grid = Self::make_grid(bounds, cells);
        for (key, pos) in subscribers {
            self.grid.insert(key, pos);
        }
        Some(cells)
    }

    /// Exports the tuner state as `(cells, streak, pending)` (region
    /// snapshots).
    pub fn tuner_state(&self) -> (u32, u32, u32) {
        self.tuner.state()
    }

    /// Whether the auto-tuner is enabled.
    pub fn autotune_enabled(&self) -> bool {
        self.tuner.is_enabled()
    }

    /// Adopts a replicated tuner state (promotions), rebuilding the
    /// grid if the inherited resolution differs from the current one —
    /// a promoted standby starts with the primary's tuned grid instead
    /// of re-learning the density.
    pub fn restore_tuner(&mut self, cells: u32, streak: u32, pending: u32) {
        self.tuner.restore(cells, streak, pending);
        if self.tuner.current() != self.grid.cells_per_axis() {
            let bounds = self.grid.bounds();
            let subscribers: Vec<(K, Point)> = self.grid.subscribers().collect();
            self.grid = Self::make_grid(bounds, self.tuner.current());
            for (key, pos) in subscribers {
                self.grid.insert(key, pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal payload for the unit suite.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Ev {
        at: Point,
        entity: u64,
        bytes: usize,
        ring: u8,
    }

    impl Disseminated for Ev {
        fn origin(&self) -> Point {
            self.at
        }
        fn entity(&self) -> u64 {
            self.entity
        }
        fn wire_bytes(&self) -> usize {
            self.bytes
        }
        fn ring(&self) -> u8 {
            self.ring
        }
        fn strip_payload(&mut self) {
            self.bytes = 0;
        }
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            metric: Metric::Euclidean,
            policy: FlushPolicy::unlimited(),
            keyframe_every: 8,
            origin_quantum: 0.0,
            autotune: AutoTunerConfig::default(),
            predict: PredictorConfig::default(),
            position_only_ring: 0,
            telemetry: false,
        }
    }

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn pipe(rings: RingSet) -> DisseminationPipeline<u32, Ev> {
        DisseminationPipeline::new(world(), 16, rings, cfg())
    }

    fn ev(at: Point, ring: u8) -> Ev {
        Ev {
            at,
            entity: 1,
            bytes: 8,
            ring,
        }
    }

    #[test]
    fn untiered_pipeline_delivers_to_everyone_in_radius() {
        let mut p = pipe(RingSet::single(50.0));
        p.subscribe(1, Point::new(100.0, 100.0));
        p.subscribe(2, Point::new(130.0, 100.0));
        p.subscribe(3, Point::new(300.0, 300.0));
        let origin = Point::new(100.0, 100.0);
        let stats = p.disseminate(origin, origin, 1, 0.0, true, Some(1), true, |ring, _| {
            ev(origin, ring)
        });
        assert_eq!(stats.delivered, 1, "only subscriber 2 is in radius");
        assert_eq!(stats.sampled_out, 0);
        assert_eq!(stats.suppressed, 0);
        let out = p.flush(|_| Some(Point::new(130.0, 100.0)));
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].receiver, 2);
        assert_eq!(out.batches[0].items[0].ring, 0);
        assert!(out.batches[0].origins[0].is_keyframe());
    }

    #[test]
    fn outer_rings_sample_and_tag_items() {
        let rings = RingSet::from_tiers(&[20.0, 100.0], &[1, 2]);
        let mut p = pipe(rings);
        p.subscribe(1, Point::new(100.0, 100.0)); // near
        p.subscribe(2, Point::new(180.0, 100.0)); // far ring, rate 2
        let origin = Point::new(100.0, 100.0);
        for _ in 0..4 {
            p.disseminate(origin, origin, 1, 0.0, true, None, true, |ring, _| {
                ev(origin, ring)
            });
        }
        let out = p.flush(|k| {
            Some(if k == 1 {
                Point::new(100.0, 100.0)
            } else {
                Point::new(180.0, 100.0)
            })
        });
        let near = out.batches.iter().find(|b| b.receiver == 1).unwrap();
        let far = out.batches.iter().find(|b| b.receiver == 2).unwrap();
        assert_eq!(near.items.len(), 4, "near ring gets every event");
        assert!(near.items.iter().all(|i| i.ring == 0));
        assert_eq!(near.origins.len(), 4);
        assert_eq!(far.items.len(), 2, "far ring at rate 2 gets half");
        assert!(far.items.iter().all(|i| i.ring == 1));
    }

    #[test]
    fn vanished_receivers_are_orphaned_not_flushed() {
        let mut p = pipe(RingSet::single(50.0));
        p.subscribe(1, Point::new(100.0, 100.0));
        let origin = Point::new(110.0, 100.0);
        p.disseminate(origin, origin, 1, 0.0, true, None, true, |ring, _| {
            ev(origin, ring)
        });
        let out = p.flush(|_| None);
        assert!(out.batches.is_empty());
        assert_eq!(out.orphaned, 1);
        assert_eq!(p.streams(), 0, "orphaning clears the delta stream");
    }

    #[test]
    fn retune_preserves_subscribers_and_query_results() {
        let mut p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            8,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        for i in 0..2000u32 {
            p.subscribe(i, Point::new((i % 40) as f64 * 10.0, (i / 40) as f64 * 8.0));
        }
        // 2000 subscribers at 4/cell want ~22 → pow2 16; wait out the streak.
        let mut retuned = None;
        for _ in 0..AutoTunerConfig::default().streak {
            retuned = p.maybe_retune();
        }
        assert_eq!(retuned, Some(16));
        assert_eq!(p.cells_per_axis(), 16);
        assert_eq!(p.grid().len(), 2000, "rebuild keeps every subscriber");
        let at = Point::new(100.0, 100.0);
        let stats = p.disseminate(at, at, 1, 0.0, true, None, false, |ring, _| ev(at, ring));
        assert!(stats.delivered > 0);
    }

    #[test]
    fn tuner_state_round_trips_through_restore() {
        let p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            64,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        let (cells, streak, pending) = p.tuner_state();
        let mut q = DisseminationPipeline::<u32, Ev>::new(
            world(),
            8,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        q.subscribe(1, Point::new(10.0, 10.0));
        q.restore_tuner(cells, streak, pending);
        assert_eq!(q.cells_per_axis(), 64, "promoted grid inherits the tuning");
        assert_eq!(q.grid().len(), 1);
    }

    /// A predicting pipeline over one far-ring receiver watching entity
    /// 9 move linearly at 10 u/s (events every 100 ms).
    fn predicting_pipe(budget: f64) -> DisseminationPipeline<u32, Ev> {
        let rings = RingSet::from_tiers(&[20.0, 200.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Ev> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                predict: PredictorConfig::with_budgets(&[0.0, budget]),
                ..cfg()
            },
        );
        p.subscribe(1, Point::new(100.0, 300.0)); // far ring from the track below
        p
    }

    fn drive_linear(p: &mut DisseminationPipeline<u32, Ev>, steps: u32) -> DisseminateStats {
        let mut total = DisseminateStats::default();
        for i in 0..steps {
            let at = Point::new(100.0 + i as f64, 200.0);
            let s = p.disseminate(at, at, 9, i as f64 * 0.1, true, None, true, |ring, _| {
                ev(at, ring)
            });
            total.delivered += s.delivered;
            total.suppressed += s.suppressed;
            total.pred_error_max = total.pred_error_max.max(s.pred_error_max);
        }
        total
    }

    #[test]
    fn linear_motion_is_suppressed_within_budget() {
        let mut p = predicting_pipe(2.0);
        let stats = drive_linear(&mut p, 20);
        // The first two events establish the basis and the velocity
        // estimate; once the secant locks on, the extrapolation is exact
        // and everything else is suppressed.
        assert!(
            stats.suppressed >= 16,
            "linear motion must be suppressed: {stats:?}"
        );
        assert!(stats.pred_error_max <= 2.0, "{stats:?}");
        assert!(p.prediction_receivers() > 0);
        // Only the transmitted events were queued.
        let out = p.flush(|_| Some(Point::new(100.0, 300.0)));
        assert_eq!(out.batches[0].items.len() as u64, stats.delivered);
    }

    #[test]
    fn prediction_off_or_zero_budget_delivers_everything() {
        // Budget 0 on every ring: nothing suppressed even with predict on.
        let mut p = predicting_pipe(0.0);
        let stats = drive_linear(&mut p, 10);
        assert_eq!(stats.suppressed, 0);
        assert_eq!(stats.delivered, 10);
        // Predict off entirely: identical delivery, no bases kept.
        let rings = RingSet::from_tiers(&[20.0, 200.0], &[1, 1]);
        let mut q: DisseminationPipeline<u32, Ev> =
            DisseminationPipeline::new(world(), 16, rings, cfg());
        q.subscribe(1, Point::new(100.0, 300.0));
        let stats = drive_linear(&mut q, 10);
        assert_eq!(stats.suppressed, 0);
        assert_eq!(q.prediction_receivers(), 0);
    }

    #[test]
    fn near_ring_budget_is_pinned_to_zero() {
        let rings = RingSet::from_tiers(&[50.0, 200.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Ev> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                // A (misconfigured) near budget must be ignored.
                predict: PredictorConfig::with_budgets(&[100.0, 100.0]),
                ..cfg()
            },
        );
        p.subscribe(1, Point::new(110.0, 200.0)); // near ring
        let stats = drive_linear(&mut p, 10);
        assert_eq!(stats.suppressed, 0, "near means every event");
        assert_eq!(stats.delivered, 10);
    }

    #[test]
    fn rejoin_resets_the_receivers_prediction_bases() {
        let mut p = predicting_pipe(2.0);
        drive_linear(&mut p, 10);
        assert!(p.prediction_receivers() > 0);
        p.subscribe(1, Point::new(100.0, 300.0)); // rejoin
        assert_eq!(
            p.prediction_receivers(),
            0,
            "a fresh connection extrapolates from nothing"
        );
        // The next event transmits (no basis to suppress against).
        let at = Point::new(120.0, 200.0);
        let s = p.disseminate(at, at, 9, 2.0, true, None, true, |ring, _| ev(at, ring));
        assert_eq!(s.delivered, 1);
        assert_eq!(s.suppressed, 0);
    }

    #[test]
    fn exported_bases_reproduce_suppression_on_import() {
        let mut p = predicting_pipe(2.0);
        drive_linear(&mut p, 10);
        let mut q = predicting_pipe(2.0);
        q.import_bases(p.export_bases());
        // Both pipelines make the same decision on the same next event —
        // but q's motion model is cold, so feed both the same history
        // first via the bases alone: the decision is basis-driven.
        let at = Point::new(110.0, 200.0);
        let sp = p.disseminate(at, at, 9, 1.0, true, None, false, |ring, _| ev(at, ring));
        let sq = q.disseminate(at, at, 9, 1.0, true, None, false, |ring, _| ev(at, ring));
        assert_eq!(sp.suppressed, sq.suppressed);
        assert_eq!(sp.delivered, sq.delivered);
        assert_eq!(p.export_bases(), q.export_bases());
    }

    #[test]
    fn outer_ring_items_ship_position_only() {
        let rings = RingSet::from_tiers(&[20.0, 100.0], &[1, 1]);
        let mut p: DisseminationPipeline<u32, Ev> = DisseminationPipeline::new(
            world(),
            16,
            rings,
            PipelineConfig {
                position_only_ring: 1,
                ..cfg()
            },
        );
        p.subscribe(1, Point::new(100.0, 100.0)); // near
        p.subscribe(2, Point::new(180.0, 100.0)); // far
        let origin = Point::new(100.0, 100.0);
        let stats = p.disseminate(origin, origin, 9, 0.0, true, None, true, |ring, _| {
            ev(origin, ring)
        });
        assert_eq!(stats.stripped, 1, "only the far item degrades");
        let out = p.flush(|k| {
            Some(if k == 1 {
                Point::new(100.0, 100.0)
            } else {
                Point::new(180.0, 100.0)
            })
        });
        let near = out.batches.iter().find(|b| b.receiver == 1).unwrap();
        let far = out.batches.iter().find(|b| b.receiver == 2).unwrap();
        assert_eq!(near.items[0].bytes, 8, "near ships the full payload");
        assert_eq!(far.items[0].bytes, 0, "far ships position-only");
    }
}
