//! The composable per-client dissemination pipeline.
//!
//! Earlier revisions hand-wired the dissemination stages inside the game
//! server's flush path: the interest grid was queried in one method, the
//! batcher filled inline, and the flush loop called the policy and the
//! delta encoder back to back with bespoke glue. Every new stage meant
//! editing that monolith in two drivers. [`DisseminationPipeline`] makes
//! the stages an explicit, reusable component with one seam per stage:
//!
//! 1. **interest query** — the [`InterestGrid`](crate::InterestGrid)
//!    answers "who can see this point" within the outermost ring;
//! 2. **ring tiering** — [`RingSet`](crate::RingSet) grades each
//!    receiver by distance and [`RingSampler`](crate::RingSampler)
//!    deterministically samples the outer tiers (near = every event);
//! 3. **entity merge + budget policy** —
//!    [`FlushPolicy`](crate::FlushPolicy) ranks the queued items by
//!    relevance, supersedes per-entity duplicates under pressure and
//!    enforces the count/byte budgets;
//! 4. **delta encoding** — [`DeltaEncoder`](crate::DeltaEncoder) turns
//!    surviving origins into exact offsets with periodic keyframes.
//!
//! A density-driven [`AutoTuner`](crate::AutoTuner) re-picks the grid
//! resolution as the subscriber count drifts (stage 1's only tunable),
//! rebuilding the index in place.
//!
//! The pipeline is deliberately payload-agnostic: anything implementing
//! [`Disseminated`] flows through, so the middleware's update items, the
//! property suites' synthetic payloads and the benches all drive the
//! same code. With rings untiered and the tuner disabled, the pipeline's
//! output is **byte-identical** to the hand-wired v2 flush path — a
//! property test in `tests/interest_properties.rs` pins that equivalence
//! down, which is what makes this refactor safe to sit under both the
//! discrete-event harness and the async runtime.

use crate::delta::{DeltaEncoder, EncodedOrigin};
use crate::grid::InterestGrid;
use crate::policy::FlushPolicy;
use crate::rings::{RingSampler, RingSet};
use crate::tuner::{AutoTuner, AutoTunerConfig};
use crate::UpdateBatcher;
use matrix_geometry::{Metric, Point, Rect};
use std::hash::Hash;

/// What the pipeline needs to know about a payload to rank, merge,
/// budget and account for it.
pub trait Disseminated {
    /// Where the event happened (already quantised by the producer if a
    /// wire lattice is in effect).
    fn origin(&self) -> Point;
    /// Source entity id (`0` = anonymous, exempt from per-entity
    /// superseding).
    fn entity(&self) -> u64;
    /// Estimated absolute wire cost, used by the byte budget.
    fn wire_bytes(&self) -> usize;
    /// The vision ring this item was admitted under (`0` = near). The
    /// producer's `make` callback receives the ring and embeds it in
    /// the payload (it usually travels to the receiver as a fidelity
    /// tag), so the pipeline queues no side-band tier state.
    fn ring(&self) -> u8 {
        0
    }
}

/// Static configuration of a pipeline (everything except the grid
/// geometry, which arrives via [`DisseminationPipeline::reset`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Distance metric for interest queries and relevance ranking.
    pub metric: Metric,
    /// Per-client, per-flush delivery budgets (stage 3).
    pub policy: FlushPolicy,
    /// Delta keyframe interval (stage 4; `0` = absolute-only).
    pub keyframe_every: u32,
    /// Fixed-point lattice the delta encoder verifies offsets against
    /// (`0.0` = no lattice requirement).
    pub origin_quantum: f64,
    /// Grid resolution auto-tuning (stage 1's knob).
    pub autotune: AutoTunerConfig,
}

/// One receiver's flushed batch. `items` and `origins` are parallel —
/// handing back the two vectors the policy and encoder stages already
/// produced keeps the flush hot path free of intermediate copies (the
/// caller zips them while assembling its wire messages).
#[derive(Debug, Clone)]
pub struct FlushBatch<K, U> {
    /// The receiving subscriber.
    pub receiver: K,
    /// Kept payloads, most relevant first. Never empty. Each carries
    /// its ring tag ([`Disseminated::ring`]).
    pub items: Vec<U>,
    /// How each item's origin travels on the wire (parallel to
    /// `items`).
    pub origins: Vec<EncodedOrigin>,
    /// Items merged or dropped by the budget policy for this receiver.
    pub rate_limited: u64,
}

/// Everything one flush produced.
#[derive(Debug, Clone, Default)]
pub struct FlushOutcome<K, U> {
    /// Per-receiver batches, in receiver order.
    pub batches: Vec<FlushBatch<K, U>>,
    /// Queued items discarded because their receiver vanished between
    /// enqueue and flush.
    pub orphaned: u64,
}

/// What one dissemination (stage 1+2) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisseminateStats {
    /// Receivers the event was delivered to (queued, or counted when
    /// emission is off).
    pub delivered: u64,
    /// Receivers inside the AOI whose ring sampled this event out.
    pub sampled_out: u64,
}

/// The composed dissemination pipeline (see the module docs for the
/// stage walk-through).
#[derive(Debug, Clone)]
pub struct DisseminationPipeline<K: Ord + Copy + Eq + Hash, U> {
    metric: Metric,
    policy: FlushPolicy,
    rings: RingSet,
    grid: InterestGrid<K>,
    sampler: RingSampler<K>,
    batcher: UpdateBatcher<K, U>,
    encoder: DeltaEncoder<K>,
    tuner: AutoTuner,
}

impl<K: Ord + Copy + Eq + Hash, U: Disseminated> DisseminationPipeline<K, U> {
    /// Builds a pipeline over `bounds` at `cells_per_axis`, with the
    /// given ring tiers.
    pub fn new(
        bounds: Rect,
        cells_per_axis: u32,
        rings: RingSet,
        cfg: PipelineConfig,
    ) -> DisseminationPipeline<K, U> {
        let cells = cells_per_axis.max(1);
        DisseminationPipeline {
            metric: cfg.metric,
            policy: cfg.policy,
            rings,
            grid: Self::make_grid(bounds, cells),
            sampler: RingSampler::new(),
            batcher: UpdateBatcher::new(),
            encoder: DeltaEncoder::new(cfg.keyframe_every).with_quantum(cfg.origin_quantum),
            tuner: AutoTuner::new(cfg.autotune, cells),
        }
    }

    /// Hold jittering subscribers in their cell for a tenth of a cell;
    /// the grid widens queries by the same margin, so results are exact.
    fn make_grid(bounds: Rect, cells: u32) -> InterestGrid<K> {
        let margin = 0.1 * (bounds.width() / cells as f64).min(bounds.height() / cells as f64);
        InterestGrid::new(bounds, cells).with_hysteresis(margin.max(0.0))
    }

    // -- subscribers (stage 1 state) -----------------------------------------

    /// Adds or re-adds a subscriber, resetting its delta stream (a
    /// (re)joining receiver holds no base, so its next flush keyframes).
    pub fn subscribe(&mut self, key: K, pos: Point) {
        self.grid.insert(key, pos);
        self.encoder.reset(key);
    }

    /// Repositions a subscriber.
    pub fn reposition(&mut self, key: K, pos: Point) {
        self.grid.update(key, pos);
    }

    /// Removes a subscriber, dropping its queued updates, delta stream
    /// and sampling state. Returns how many queued updates died with it.
    pub fn unsubscribe(&mut self, key: K) -> usize {
        self.grid.remove(key);
        self.encoder.forget(key);
        self.sampler.forget(key);
        self.batcher.forget(key)
    }

    /// Re-anchors the grid to a new range with the given subscriber set
    /// (splits, reclaims, promotions — rare), keeping the tuned
    /// resolution, streams and pending batches.
    pub fn reset(&mut self, bounds: Rect, subscribers: impl IntoIterator<Item = (K, Point)>) {
        self.grid = Self::make_grid(bounds, self.tuner.current());
        for (key, pos) in subscribers {
            self.grid.insert(key, pos);
        }
    }

    /// Replaces the ring tiers (the registered radius changed).
    pub fn set_rings(&mut self, rings: RingSet) {
        self.rings = rings;
    }

    /// The current ring tiers.
    pub fn rings(&self) -> &RingSet {
        &self.rings
    }

    /// The interest grid (drivers query it for observability).
    pub fn grid(&self) -> &InterestGrid<K> {
        &self.grid
    }

    /// The grid resolution currently in effect.
    pub fn cells_per_axis(&self) -> u32 {
        self.grid.cells_per_axis()
    }

    // -- stages 1+2: query, tier, sample, queue ------------------------------

    /// Disseminates one event: queries the grid within the outermost
    /// ring, grades each receiver's ring by distance, samples the outer
    /// tiers, and (when `emit`) queues one item per admitted receiver.
    /// `make` produces the payload per admitted receiver, embedding the
    /// ring it was admitted under. An untiered ring set skips the
    /// distance grading entirely — the hot path then costs exactly what
    /// the binary-radius fan-out did.
    pub fn disseminate(
        &mut self,
        origin: Point,
        exclude: Option<K>,
        emit: bool,
        mut make: impl FnMut(u8) -> U,
    ) -> DisseminateStats {
        let mut stats = DisseminateStats::default();
        let metric = self.metric;
        let rings = self.rings;
        let tiered = rings.is_tiered();
        let sampler = &mut self.sampler;
        let batcher = &mut self.batcher;
        self.grid
            .query(origin, rings.outer_radius(), metric, |key, pos| {
                if Some(key) == exclude {
                    return;
                }
                let ring = if tiered {
                    // The grid's Euclidean filter compares squared
                    // distances while `ring_of` compares the rooted
                    // one; at the outer boundary the two can disagree
                    // by an ulp, so a receiver the query admitted is
                    // clamped into the outermost ring rather than
                    // silently dropped.
                    let ring = rings
                        .ring_of(pos.distance_by(origin, metric))
                        .unwrap_or((rings.len() - 1) as u8);
                    if !sampler.admit(&rings, key, ring) {
                        stats.sampled_out += 1;
                        return;
                    }
                    ring
                } else {
                    0
                };
                stats.delivered += 1;
                if emit {
                    batcher.push(key, make(ring));
                }
            });
        stats
    }

    /// Queues one already-admitted item directly (snapshot restore: the
    /// item passed sampling on the primary; it must not be re-sampled).
    pub fn enqueue(&mut self, key: K, item: U) {
        self.batcher.push(key, item);
    }

    /// Whether any updates are queued.
    pub fn has_pending(&self) -> bool {
        !self.batcher.is_empty()
    }

    /// Visits every queued batch without consuming it (snapshots).
    pub fn pending(&self) -> impl Iterator<Item = (&K, &[U])> {
        self.batcher.peek()
    }

    /// Drops every queued update and all sampling phase (promotions:
    /// the captured pending set describes the pairing moment, not the
    /// crash).
    pub fn clear_pending(&mut self) {
        self.batcher = UpdateBatcher::new();
        self.sampler.clear();
    }

    // -- stages 3+4: merge, budget, encode -----------------------------------

    /// Flushes every queued batch through the policy and the encoder.
    /// `viewer_of` resolves a receiver's current position; `None` means
    /// the receiver vanished between enqueue and flush (its items are
    /// discarded and counted in [`FlushOutcome::orphaned`]).
    pub fn flush(&mut self, viewer_of: impl Fn(K) -> Option<Point>) -> FlushOutcome<K, U> {
        let mut outcome = FlushOutcome {
            batches: Vec::new(),
            orphaned: 0,
        };
        for (receiver, queued) in self.batcher.drain() {
            let Some(viewer) = viewer_of(receiver) else {
                outcome.orphaned += queued.len() as u64;
                self.encoder.forget(receiver);
                continue;
            };
            let selection = self.policy.select(
                viewer,
                self.metric,
                |u: &U| u.origin(),
                |u: &U| u.entity(),
                |u: &U| u.wire_bytes(),
                queued,
            );
            let kept_origins: Vec<Point> = selection.kept.iter().map(|u| u.origin()).collect();
            let origins = self.encoder.encode_flush(receiver, &kept_origins);
            outcome.batches.push(FlushBatch {
                receiver,
                items: selection.kept,
                origins,
                rate_limited: selection.dropped as u64,
            });
        }
        outcome
    }

    // -- delta-stream bookkeeping --------------------------------------------

    /// Marks a receiver's delta stream dirty (next flush keyframes).
    pub fn reset_stream(&mut self, key: K) {
        self.encoder.reset(key);
    }

    /// Wipes every delta stream (driver shutdown, promotions).
    pub fn clear_streams(&mut self) {
        self.encoder.clear();
    }

    /// Number of receivers currently holding a delta base.
    pub fn streams(&self) -> usize {
        self.encoder.streams()
    }

    /// Exports every delta stream as `(key, base, countdown)` (region
    /// snapshots).
    pub fn export_streams(&self) -> Vec<(K, Point, u32)> {
        self.encoder.export_streams()
    }

    /// Replaces the delta-stream table with exported state.
    pub fn import_streams(&mut self, streams: impl IntoIterator<Item = (K, Point, u32)>) {
        self.encoder.import_streams(streams);
    }

    // -- auto-tuning ---------------------------------------------------------

    /// Feeds the tuner one density observation; when it decides on a new
    /// resolution, the grid is rebuilt in place (subscribers, streams
    /// and pending batches all survive) and the new value returned.
    pub fn maybe_retune(&mut self) -> Option<u32> {
        let cells = self.tuner.observe(self.grid.len())?;
        let bounds = self.grid.bounds();
        let subscribers: Vec<(K, Point)> = self.grid.subscribers().collect();
        self.grid = Self::make_grid(bounds, cells);
        for (key, pos) in subscribers {
            self.grid.insert(key, pos);
        }
        Some(cells)
    }

    /// Exports the tuner state as `(cells, streak, pending)` (region
    /// snapshots).
    pub fn tuner_state(&self) -> (u32, u32, u32) {
        self.tuner.state()
    }

    /// Whether the auto-tuner is enabled.
    pub fn autotune_enabled(&self) -> bool {
        self.tuner.is_enabled()
    }

    /// Adopts a replicated tuner state (promotions), rebuilding the
    /// grid if the inherited resolution differs from the current one —
    /// a promoted standby starts with the primary's tuned grid instead
    /// of re-learning the density.
    pub fn restore_tuner(&mut self, cells: u32, streak: u32, pending: u32) {
        self.tuner.restore(cells, streak, pending);
        if self.tuner.current() != self.grid.cells_per_axis() {
            let bounds = self.grid.bounds();
            let subscribers: Vec<(K, Point)> = self.grid.subscribers().collect();
            self.grid = Self::make_grid(bounds, self.tuner.current());
            for (key, pos) in subscribers {
                self.grid.insert(key, pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal payload for the unit suite.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Ev {
        at: Point,
        entity: u64,
        bytes: usize,
        ring: u8,
    }

    impl Disseminated for Ev {
        fn origin(&self) -> Point {
            self.at
        }
        fn entity(&self) -> u64 {
            self.entity
        }
        fn wire_bytes(&self) -> usize {
            self.bytes
        }
        fn ring(&self) -> u8 {
            self.ring
        }
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            metric: Metric::Euclidean,
            policy: FlushPolicy::unlimited(),
            keyframe_every: 8,
            origin_quantum: 0.0,
            autotune: AutoTunerConfig::default(),
        }
    }

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn pipe(rings: RingSet) -> DisseminationPipeline<u32, Ev> {
        DisseminationPipeline::new(world(), 16, rings, cfg())
    }

    fn ev(at: Point, ring: u8) -> Ev {
        Ev {
            at,
            entity: 1,
            bytes: 8,
            ring,
        }
    }

    #[test]
    fn untiered_pipeline_delivers_to_everyone_in_radius() {
        let mut p = pipe(RingSet::single(50.0));
        p.subscribe(1, Point::new(100.0, 100.0));
        p.subscribe(2, Point::new(130.0, 100.0));
        p.subscribe(3, Point::new(300.0, 300.0));
        let origin = Point::new(100.0, 100.0);
        let stats = p.disseminate(origin, Some(1), true, |ring| ev(origin, ring));
        assert_eq!(stats.delivered, 1, "only subscriber 2 is in radius");
        assert_eq!(stats.sampled_out, 0);
        let out = p.flush(|_| Some(Point::new(130.0, 100.0)));
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].receiver, 2);
        assert_eq!(out.batches[0].items[0].ring, 0);
        assert!(out.batches[0].origins[0].is_keyframe());
    }

    #[test]
    fn outer_rings_sample_and_tag_items() {
        let rings = RingSet::from_tiers(&[20.0, 100.0], &[1, 2]);
        let mut p = pipe(rings);
        p.subscribe(1, Point::new(100.0, 100.0)); // near
        p.subscribe(2, Point::new(180.0, 100.0)); // far ring, rate 2
        let origin = Point::new(100.0, 100.0);
        for _ in 0..4 {
            p.disseminate(origin, None, true, |ring| ev(origin, ring));
        }
        let out = p.flush(|k| {
            Some(if k == 1 {
                Point::new(100.0, 100.0)
            } else {
                Point::new(180.0, 100.0)
            })
        });
        let near = out.batches.iter().find(|b| b.receiver == 1).unwrap();
        let far = out.batches.iter().find(|b| b.receiver == 2).unwrap();
        assert_eq!(near.items.len(), 4, "near ring gets every event");
        assert!(near.items.iter().all(|i| i.ring == 0));
        assert_eq!(near.origins.len(), 4);
        assert_eq!(far.items.len(), 2, "far ring at rate 2 gets half");
        assert!(far.items.iter().all(|i| i.ring == 1));
    }

    #[test]
    fn vanished_receivers_are_orphaned_not_flushed() {
        let mut p = pipe(RingSet::single(50.0));
        p.subscribe(1, Point::new(100.0, 100.0));
        let origin = Point::new(110.0, 100.0);
        p.disseminate(origin, None, true, |ring| ev(origin, ring));
        let out = p.flush(|_| None);
        assert!(out.batches.is_empty());
        assert_eq!(out.orphaned, 1);
        assert_eq!(p.streams(), 0, "orphaning clears the delta stream");
    }

    #[test]
    fn retune_preserves_subscribers_and_query_results() {
        let mut p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            8,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        for i in 0..2000u32 {
            p.subscribe(i, Point::new((i % 40) as f64 * 10.0, (i / 40) as f64 * 8.0));
        }
        // 2000 subscribers at 4/cell want ~22 → pow2 16; wait out the streak.
        let mut retuned = None;
        for _ in 0..AutoTunerConfig::default().streak {
            retuned = p.maybe_retune();
        }
        assert_eq!(retuned, Some(16));
        assert_eq!(p.cells_per_axis(), 16);
        assert_eq!(p.grid().len(), 2000, "rebuild keeps every subscriber");
        let stats = p.disseminate(Point::new(100.0, 100.0), None, false, |ring| {
            ev(Point::new(100.0, 100.0), ring)
        });
        assert!(stats.delivered > 0);
    }

    #[test]
    fn tuner_state_round_trips_through_restore() {
        let p = DisseminationPipeline::<u32, Ev>::new(
            world(),
            64,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        let (cells, streak, pending) = p.tuner_state();
        let mut q = DisseminationPipeline::<u32, Ev>::new(
            world(),
            8,
            RingSet::single(50.0),
            PipelineConfig {
                autotune: AutoTunerConfig::enabled(),
                ..cfg()
            },
        );
        q.subscribe(1, Point::new(10.0, 10.0));
        q.restore_tuner(cells, streak, pending);
        assert_eq!(q.cells_per_axis(), 64, "promoted grid inherits the tuning");
        assert_eq!(q.grid().len(), 1);
    }
}
