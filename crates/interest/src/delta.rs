//! Per-client delta compression of update origins.
//!
//! Absolute-origin batch items repeat full coordinates for every event a
//! client observes. Inside a crowd those coordinates are strongly
//! correlated: consecutive items in one batch come from neighbours a few
//! units apart, and consecutive batches re-describe the same
//! neighbourhood. [`DeltaEncoder`] exploits that redundancy the way the
//! adaptive-dissemination literature does — it keeps, per receiver, the
//! last origin the receiver reconstructed and encodes each subsequent
//! origin as an offset from the previous one, falling back to absolute
//! *keyframes* periodically, on resync, and whenever an offset would be
//! large or lossy.
//!
//! Correctness over compression: an offset is only emitted when (a) the
//! receiver's reconstruction (`base + offset`) reproduces the original
//! coordinates **bit-for-bit** in `f64` arithmetic, and (b) the offset
//! actually fits the compact fixed-point wire frame the byte accounting
//! models — i.e. it is an exact multiple of the configured *quantum*
//! within the delta threshold. When either fails — distant teleports,
//! extreme magnitudes, origins off the quantisation lattice — the
//! encoder silently emits an absolute item instead. Decoding therefore
//! always reconstructs the exact origins an absolute-only encoder would
//! have sent; the property suite in `tests/interest_properties.rs` pins
//! this down.
//!
//! Compression consequently depends on the *producer* putting origins on
//! the lattice: the game server quantises batch origins (for keyframes
//! and deltas alike) to `GameServerConfig::origin_quantum` before they
//! enter the dissemination pipeline, which is what real game netcode
//! does with fixed-point network positions.

use matrix_geometry::Point;
use std::collections::BTreeMap;

/// How one batch item's origin travels on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncodedOrigin {
    /// Full absolute coordinates — a keyframe. Always safe to decode,
    /// regardless of receiver state.
    Absolute(Point),
    /// Offset from the previous item's reconstructed origin (for the
    /// first item of a flush, from the last origin of the previous
    /// flush). Only decodable when the receiver holds that base.
    Offset {
        /// X offset from the base origin.
        dx: f64,
        /// Y offset from the base origin.
        dy: f64,
    },
}

impl EncodedOrigin {
    /// Whether this is an absolute keyframe item.
    pub fn is_keyframe(&self) -> bool {
        matches!(self, EncodedOrigin::Absolute(_))
    }
}

/// Per-receiver stream state: the base the *receiver* currently holds.
#[derive(Debug, Clone, Copy)]
struct StreamState {
    /// Origin of the last item flushed to this receiver.
    base: Point,
    /// Flushes left before an absolute keyframe is forced.
    flushes_until_keyframe: u32,
}

/// Encodes per-client update-origin streams as chained deltas with
/// periodic keyframes.
///
/// One encoder serves every client of a game server; each client has an
/// independent stream. The caller drives it once per flush with the
/// origins it is about to send (already priority-ordered — see
/// [`FlushPolicy`](crate::FlushPolicy)) and transmits the returned
/// [`EncodedOrigin`]s in order.
///
/// # Keyframes
///
/// `keyframe_every = 0` disables delta encoding entirely (every item
/// absolute — the v1 baseline). `keyframe_every = n ≥ 1` forces at least
/// one absolute item every `n` flushes per client; any absolute item
/// emitted for other reasons (resync, exactness fallback, threshold)
/// also rebases the stream and restarts the countdown.
///
/// # Resync
///
/// [`DeltaEncoder::reset`] marks a client's stream dirty so its next
/// flush starts with a keyframe — call it whenever the receiver may have
/// lost state (join, re-join after a server switch, handover).
/// [`DeltaEncoder::forget`] additionally drops the bookkeeping for
/// departed clients, and [`DeltaEncoder::clear`] wipes every stream
/// (driver shutdown), so a later rejoin can never be fed a stale base.
#[derive(Debug, Clone)]
pub struct DeltaEncoder<K: Ord> {
    keyframe_every: u32,
    max_delta: f64,
    quantum: f64,
    streams: BTreeMap<K, StreamState>,
}

impl<K: Ord + Copy> DeltaEncoder<K> {
    /// Largest offset magnitude encodable as a delta, modelling the
    /// fixed-point range of the compact wire representation. Larger jumps
    /// (teleports, cross-world events) are sent absolute.
    pub const DEFAULT_MAX_DELTA: f64 = 4096.0;

    /// Default offset resolution: 1/256 world unit. With the default
    /// threshold of ±4096 units an offset spans at most 2²¹ quanta, so
    /// each axis fits a 3-byte signed fixed-point field — the frame the
    /// wire accounting models. Powers of two keep the quantisation
    /// arithmetic exact in `f64`.
    pub const DEFAULT_QUANTUM: f64 = 1.0 / 256.0;

    /// Creates an encoder forcing a keyframe at least every
    /// `keyframe_every` flushes per client (`0` = absolute-only).
    pub fn new(keyframe_every: u32) -> DeltaEncoder<K> {
        DeltaEncoder {
            keyframe_every,
            max_delta: Self::DEFAULT_MAX_DELTA,
            quantum: Self::DEFAULT_QUANTUM,
            streams: BTreeMap::new(),
        }
    }

    /// Overrides the offset-magnitude threshold above which items are
    /// sent absolute.
    pub fn with_max_delta(mut self, max_delta: f64) -> DeltaEncoder<K> {
        self.max_delta = max_delta;
        self
    }

    /// Overrides the fixed-point offset resolution (`0.0` drops the
    /// lattice requirement — useful for tests, but then the compact
    /// frame size the accounting models is not generally attainable).
    pub fn with_quantum(mut self, quantum: f64) -> DeltaEncoder<K> {
        self.quantum = quantum;
        self
    }

    /// The configured keyframe interval (`0` = delta encoding disabled).
    pub fn keyframe_every(&self) -> u32 {
        self.keyframe_every
    }

    /// Number of client streams currently holding a delta base.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// Whether `d` fits the compact fixed-point offset field: an exact
    /// multiple of the quantum (no lattice requirement when the quantum
    /// is 0).
    fn fits_fixed_point(&self, d: f64) -> bool {
        self.quantum == 0.0 || (d / self.quantum).fract() == 0.0
    }

    /// Tries to encode `next` as an offset from `base`: the offset must
    /// be finite, within the threshold, representable in the compact
    /// fixed-point frame, and reconstruct bit-for-bit.
    fn try_offset(&self, base: Point, next: Point) -> Option<EncodedOrigin> {
        let dx = next.x - base.x;
        let dy = next.y - base.y;
        let exact = dx.is_finite()
            && dy.is_finite()
            && dx.abs() <= self.max_delta
            && dy.abs() <= self.max_delta
            && self.fits_fixed_point(dx)
            && self.fits_fixed_point(dy)
            && base.x + dx == next.x
            && base.y + dy == next.y;
        exact.then_some(EncodedOrigin::Offset { dx, dy })
    }

    /// Encodes one flush of origins for `client`, in order, updating the
    /// stream state. The first item is absolute when the client has no
    /// stream (fresh or reset) or the keyframe countdown expired;
    /// otherwise every item chains off the previous reconstructed origin.
    pub fn encode_flush(&mut self, client: K, origins: &[Point]) -> Vec<EncodedOrigin> {
        if origins.is_empty() {
            return Vec::new();
        }
        if self.keyframe_every == 0 {
            return origins
                .iter()
                .map(|&p| EncodedOrigin::Absolute(p))
                .collect();
        }
        let state = self.streams.get(&client).copied();
        let force_keyframe = match state {
            None => true,
            Some(s) => s.flushes_until_keyframe == 0,
        };
        let mut out = Vec::with_capacity(origins.len());
        let mut sent_keyframe = false;
        let mut base = state.map(|s| s.base);
        for &origin in origins {
            let encoded = match base {
                Some(b) if !(force_keyframe && out.is_empty()) => self
                    .try_offset(b, origin)
                    .unwrap_or(EncodedOrigin::Absolute(origin)),
                _ => EncodedOrigin::Absolute(origin),
            };
            sent_keyframe |= encoded.is_keyframe();
            out.push(encoded);
            // Offsets reconstruct exactly, so the receiver's base after
            // this item is the true origin on both sides.
            base = Some(origin);
        }
        let countdown = if sent_keyframe {
            self.keyframe_every.saturating_sub(1)
        } else {
            state
                .map(|s| s.flushes_until_keyframe.saturating_sub(1))
                .unwrap_or(0)
        };
        self.streams.insert(
            client,
            StreamState {
                base: base.expect("non-empty flush"),
                flushes_until_keyframe: countdown,
            },
        );
        out
    }

    /// Exports every stream's state as `(client, base, countdown)`
    /// triples, in key order — the region-snapshot form used by the
    /// replication layer. Importing the result into a fresh encoder
    /// (same `keyframe_every`) reproduces the next flush exactly.
    pub fn export_streams(&self) -> Vec<(K, Point, u32)> {
        self.streams
            .iter()
            .map(|(k, s)| (*k, s.base, s.flushes_until_keyframe))
            .collect()
    }

    /// Replaces the stream table with previously exported state (the
    /// restore half of [`DeltaEncoder::export_streams`]).
    pub fn import_streams(&mut self, streams: impl IntoIterator<Item = (K, Point, u32)>) {
        self.streams = streams
            .into_iter()
            .map(|(k, base, flushes_until_keyframe)| {
                (
                    k,
                    StreamState {
                        base,
                        flushes_until_keyframe,
                    },
                )
            })
            .collect();
    }

    /// Resync: the receiver may have lost its base (join, re-join,
    /// handover) — its next flush starts with a keyframe.
    pub fn reset(&mut self, client: K) {
        self.streams.remove(&client);
    }

    /// Drops all stream bookkeeping for a departed client.
    pub fn forget(&mut self, client: K) {
        self.streams.remove(&client);
    }

    /// Wipes every stream (driver shutdown): any client that later
    /// rejoins gets a keyframe, never a delta against a base it lost.
    pub fn clear(&mut self) {
        self.streams.clear();
    }
}

/// Snaps a point onto the fixed-point lattice of resolution `quantum`
/// (`0.0` returns the point unchanged). Producers quantise batch
/// origins — keyframes and deltas alike — before they enter the
/// dissemination pipeline, so offsets between any two origins are exact
/// multiples of the quantum and fit the compact delta frame. With a
/// power-of-two quantum the snapped coordinates are exact in `f64` for
/// any realistic world size.
pub fn quantize(p: Point, quantum: f64) -> Point {
    if quantum == 0.0 {
        return p;
    }
    let snap = |v: f64| {
        let q = (v / quantum).round() * quantum;
        if q.is_finite() {
            q
        } else {
            v // magnitudes beyond the lattice stay absolute-only
        }
    };
    Point::new(snap(p.x), snap(p.y))
}

/// Receiver-side mirror of one client's delta stream.
///
/// Feed it every [`EncodedOrigin`] in arrival order;
/// [`DeltaStream::apply`] returns the reconstructed absolute origin.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaStream {
    base: Option<Point>,
}

impl DeltaStream {
    /// A stream with no base yet (fresh connection).
    pub fn new() -> DeltaStream {
        DeltaStream::default()
    }

    /// The last reconstructed origin, if any item arrived yet.
    pub fn base(&self) -> Option<Point> {
        self.base
    }

    /// Applies one item, returning its absolute origin. Returns `None`
    /// for an offset arriving with no base — a protocol violation (the
    /// sender must keyframe after every resync).
    pub fn apply(&mut self, item: EncodedOrigin) -> Option<Point> {
        let origin = match item {
            EncodedOrigin::Absolute(p) => p,
            EncodedOrigin::Offset { dx, dy } => {
                let b = self.base?;
                Point::new(b.x + dx, b.y + dy)
            }
        };
        self.base = Some(origin);
        Some(origin)
    }

    /// Drops the base (the client re-joined or switched servers).
    pub fn reset(&mut self) {
        self.base = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(items: &[EncodedOrigin], stream: &mut DeltaStream) -> Vec<Point> {
        items
            .iter()
            .map(|&i| stream.apply(i).expect("decodable"))
            .collect()
    }

    #[test]
    fn first_flush_is_keyframed_then_deltas_chain() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(4);
        let origins = [
            Point::new(10.0, 10.0),
            Point::new(11.5, 10.0),
            Point::new(12.0, 9.0),
        ];
        let items = enc.encode_flush(1, &origins);
        assert!(items[0].is_keyframe());
        assert!(!items[1].is_keyframe());
        assert!(!items[2].is_keyframe());
        let mut stream = DeltaStream::new();
        assert_eq!(decode(&items, &mut stream), origins);

        // Next flush chains off the last origin without a keyframe.
        let next = [Point::new(12.5, 9.0)];
        let items = enc.encode_flush(1, &next);
        assert!(!items[0].is_keyframe());
        assert_eq!(decode(&items, &mut stream), next);
    }

    #[test]
    fn keyframe_interval_forces_absolute() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(2);
        let p = |i: u64| [Point::new(10.0 + i as f64, 10.0)];
        assert!(enc.encode_flush(1, &p(0))[0].is_keyframe()); // flush 1: key
        assert!(!enc.encode_flush(1, &p(1))[0].is_keyframe()); // flush 2: delta
        assert!(enc.encode_flush(1, &p(2))[0].is_keyframe()); // flush 3: forced
        assert!(!enc.encode_flush(1, &p(3))[0].is_keyframe());
    }

    #[test]
    fn zero_interval_disables_deltas() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(0);
        for i in 0..5u64 {
            let items = enc.encode_flush(1, &[Point::new(i as f64, 0.0)]);
            assert!(items[0].is_keyframe());
        }
        assert_eq!(enc.streams(), 0, "absolute-only mode keeps no state");
    }

    #[test]
    fn teleports_and_extreme_magnitudes_fall_back_to_keyframes() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(8);
        enc.encode_flush(1, &[Point::new(0.0, 0.0)]);
        // Beyond the threshold: absolute.
        let far = enc.encode_flush(1, &[Point::new(1.0e5, 0.0)]);
        assert!(far[0].is_keyframe());
        // Magnitudes whose difference cannot round-trip: absolute.
        enc.encode_flush(1, &[Point::new(1.0e16, 0.0)]);
        let tiny = enc.encode_flush(1, &[Point::new(1.0, 0.0)]);
        assert!(tiny[0].is_keyframe());
    }

    #[test]
    fn off_lattice_offsets_fall_back_to_keyframes() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(8);
        enc.encode_flush(1, &[Point::new(0.0, 0.0)]);
        // 0.1 is not a multiple of 1/256: the compact fixed-point frame
        // cannot carry it exactly, so the item ships absolute.
        let off = enc.encode_flush(1, &[Point::new(0.1, 0.0)]);
        assert!(off[0].is_keyframe());
        // Snapped onto the lattice it deltas fine.
        let p = quantize(Point::new(0.1, 0.0), DeltaEncoder::<u32>::DEFAULT_QUANTUM);
        enc.reset(1);
        enc.encode_flush(1, &[Point::new(0.0, 0.0)]);
        let on = enc.encode_flush(1, &[p]);
        assert!(!on[0].is_keyframe());
    }

    #[test]
    fn quantize_snaps_exactly_and_passes_through_zero_quantum() {
        let q = DeltaEncoder::<u32>::DEFAULT_QUANTUM;
        let p = quantize(Point::new(123.456, -7.89), q);
        assert_eq!(p.x, (123.456f64 / q).round() * q);
        assert_eq!((p.x / q).fract(), 0.0);
        assert_eq!((p.y / q).fract(), 0.0);
        let raw = Point::new(1.23456789, 2.0);
        assert_eq!(quantize(raw, 0.0), raw);
        // Magnitudes beyond the lattice stay untouched rather than
        // overflowing to infinity.
        let huge = Point::new(f64::MAX, 0.0);
        assert_eq!(quantize(huge, q), huge);
    }

    #[test]
    fn reset_forces_resync_keyframe() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(100);
        enc.encode_flush(7, &[Point::new(5.0, 5.0)]);
        assert!(!enc.encode_flush(7, &[Point::new(6.0, 5.0)])[0].is_keyframe());
        enc.reset(7);
        assert!(enc.encode_flush(7, &[Point::new(7.0, 5.0)])[0].is_keyframe());
    }

    #[test]
    fn clear_wipes_every_stream() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(8);
        enc.encode_flush(1, &[Point::new(1.0, 1.0)]);
        enc.encode_flush(2, &[Point::new(2.0, 2.0)]);
        assert_eq!(enc.streams(), 2);
        enc.clear();
        assert_eq!(enc.streams(), 0);
        assert!(enc.encode_flush(1, &[Point::new(1.5, 1.0)])[0].is_keyframe());
    }

    #[test]
    fn exported_streams_restore_into_an_equivalent_encoder() {
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(3);
        enc.encode_flush(1, &[Point::new(1.0, 2.0)]);
        enc.encode_flush(1, &[Point::new(1.5, 2.0)]);
        enc.encode_flush(2, &[Point::new(9.0, 9.0)]);

        let mut restored: DeltaEncoder<u32> = DeltaEncoder::new(3);
        restored.import_streams(enc.export_streams());
        assert_eq!(restored.streams(), 2);
        // Both encoders produce identical items for the same next flush.
        let next = [Point::new(2.0, 2.0)];
        assert_eq!(enc.encode_flush(1, &next), restored.encode_flush(1, &next));
        let far = [Point::new(9.5, 9.0)];
        assert_eq!(enc.encode_flush(2, &far), restored.encode_flush(2, &far));
    }

    #[test]
    fn offset_without_base_is_rejected() {
        let mut stream = DeltaStream::new();
        assert_eq!(
            stream.apply(EncodedOrigin::Offset { dx: 1.0, dy: 0.0 }),
            None
        );
        assert!(stream
            .apply(EncodedOrigin::Absolute(Point::new(1.0, 2.0)))
            .is_some());
        assert!(stream
            .apply(EncodedOrigin::Offset { dx: 1.0, dy: 0.0 })
            .is_some());
    }
}
