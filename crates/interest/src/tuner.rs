//! Density-driven interest-grid resolution auto-tuning.
//!
//! The spatial-hash grid's `cells_per_axis` is a classic static knob:
//! too coarse and every query scans a crowd, too fine and per-move
//! bookkeeping plus empty-cell walks dominate. The right value depends
//! on the *observed* subscriber count, which changes by orders of
//! magnitude over a region's life (a freshly split child starts near
//! empty; a flash crowd packs thousands in). [`AutoTuner`] closes that
//! loop: it watches the subscriber count and re-picks the resolution so
//! the average cell holds roughly `target_per_cell` subscribers.
//!
//! Two guards keep it from thrashing, mirroring the middleware's own
//! anti-oscillation heuristics (§3.2.3 of the paper):
//!
//! * **ratio hysteresis** — a retune is only *proposed* when the ideal
//!   resolution differs from the current one by at least
//!   `hysteresis` (default 1.5×). Resolutions are quantised to powers of
//!   two, and the proposal threshold sits strictly inside the
//!   quantisation band (√2 ≈ 1.41 < 1.5), so density jitter around a
//!   rounding boundary can never flip the choice;
//! * **streak** — the proposal must repeat on `streak` consecutive
//!   observations before the grid is actually rebuilt (rebuilds
//!   re-index every subscriber, so they are rare by design).
//!
//! The tuner's state is two integers, exported via
//! [`AutoTuner::state`] and restored with [`AutoTuner::restore`] — the
//! region-snapshot path ships them to the warm standby so a promoted
//! server inherits the tuned grid instead of re-learning the density
//! from the configured default.

/// Configuration of the grid auto-tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTunerConfig {
    /// Whether the tuner may retune at all (`false` = observe-only).
    pub enabled: bool,
    /// Desired average subscribers per grid cell at uniform density.
    pub target_per_cell: f64,
    /// Lower bound on `cells_per_axis`.
    pub min_cells: u32,
    /// Upper bound on `cells_per_axis`.
    pub max_cells: u32,
    /// Minimum ratio between the ideal and current resolution before a
    /// retune is proposed (must exceed √2, the power-of-two rounding
    /// half-band, for the hysteresis to be real).
    pub hysteresis: f64,
    /// Consecutive agreeing observations required before retuning.
    pub streak: u32,
}

impl Default for AutoTunerConfig {
    fn default() -> Self {
        AutoTunerConfig {
            enabled: false,
            target_per_cell: 4.0,
            min_cells: 8,
            max_cells: 256,
            hysteresis: 1.5,
            streak: 3,
        }
    }
}

impl AutoTunerConfig {
    /// An enabled tuner with the default density targets.
    pub fn enabled() -> AutoTunerConfig {
        AutoTunerConfig {
            enabled: true,
            ..AutoTunerConfig::default()
        }
    }

    /// The ideal (unquantised) cells-per-axis for a subscriber count:
    /// the axis resolution at which the average cell holds
    /// `target_per_cell` subscribers.
    fn ideal(&self, subscribers: usize) -> f64 {
        (subscribers as f64 / self.target_per_cell.max(f64::MIN_POSITIVE))
            .sqrt()
            .max(1.0)
    }

    /// The resolution the tuner would steady-state at for a subscriber
    /// count: the ideal axis quantised to the nearest power of two and
    /// clamped to the configured bounds. Pure — benchmarks use it to
    /// build "as-tuned" grids without running the observation loop.
    pub fn cells_for(&self, subscribers: usize) -> u32 {
        let ideal = self.ideal(subscribers);
        let exp = ideal.log2().round().clamp(0.0, 30.0);
        let pow2 = 1u32 << (exp as u32);
        pow2.clamp(self.min_cells.max(1), self.max_cells.max(1))
    }
}

/// The observation loop: feed it subscriber counts, rebuild the grid
/// when it says so.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTuner {
    cfg: AutoTunerConfig,
    current: u32,
    /// The resolution the in-flight streak agrees on (`0` = none).
    pending: u32,
    streak: u32,
}

impl AutoTuner {
    /// A tuner starting from the configured static resolution.
    pub fn new(cfg: AutoTunerConfig, initial_cells: u32) -> AutoTuner {
        AutoTuner {
            cfg,
            current: initial_cells.max(1),
            pending: 0,
            streak: 0,
        }
    }

    /// The resolution the tuner currently stands behind.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Whether retuning is enabled.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Feeds one density observation. Returns `Some(new_cells)` when the
    /// caller should rebuild the grid at the new resolution — i.e. when
    /// `streak` consecutive observations were decisive (ideal outside
    /// the hysteresis band) **and agreed on the same target**. An
    /// observation proposing a different target restarts the streak at
    /// it, so density oscillating between two regimes keeps resetting
    /// the count instead of accumulating towards alternating rebuilds.
    pub fn observe(&mut self, subscribers: usize) -> Option<u32> {
        if !self.cfg.enabled {
            return None;
        }
        let ideal = self.cfg.ideal(subscribers);
        let current = self.current as f64;
        let decisive =
            ideal >= current * self.cfg.hysteresis || ideal <= current / self.cfg.hysteresis;
        let want = self.cfg.cells_for(subscribers);
        if !decisive || want == self.current {
            self.pending = 0;
            self.streak = 0;
            return None;
        }
        if want == self.pending {
            self.streak += 1;
        } else {
            self.pending = want;
            self.streak = 1;
        }
        if self.streak < self.cfg.streak.max(1) {
            return None;
        }
        self.pending = 0;
        self.streak = 0;
        self.current = want;
        Some(want)
    }

    /// Exports the tuner state as `(current_cells, streak, pending)` —
    /// the region-snapshot form shipped to warm standbys.
    pub fn state(&self) -> (u32, u32, u32) {
        (self.current, self.streak, self.pending)
    }

    /// Restores previously exported state (the promoted-standby path).
    /// The config stays the local one; only the learned resolution and
    /// the in-flight streak/target are adopted.
    pub fn restore(&mut self, current: u32, streak: u32, pending: u32) {
        self.current = current.max(1);
        self.streak = streak;
        self.pending = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner(initial: u32) -> AutoTuner {
        AutoTuner::new(AutoTunerConfig::enabled(), initial)
    }

    #[test]
    fn disabled_tuner_never_retunes() {
        let mut t = AutoTuner::new(AutoTunerConfig::default(), 32);
        for n in [0usize, 10, 10_000, 1_000_000] {
            assert_eq!(t.observe(n), None);
        }
        assert_eq!(t.current(), 32);
    }

    #[test]
    fn sustained_density_growth_retunes_upward() {
        let mut t = tuner(8);
        // 10_000 subscribers at 4/cell want a 64-cell axis wall to wall.
        let mut changed = None;
        for _ in 0..AutoTunerConfig::default().streak {
            changed = t.observe(10_000);
        }
        assert_eq!(changed, Some(64));
        assert_eq!(t.current(), 64);
        // Steady state: no further change at the same density.
        for _ in 0..10 {
            assert_eq!(t.observe(10_000), None);
        }
    }

    #[test]
    fn emptying_region_retunes_downward_to_the_floor() {
        let mut t = tuner(128);
        let mut changed = None;
        for _ in 0..3 {
            changed = t.observe(0);
        }
        assert_eq!(changed, Some(AutoTunerConfig::default().min_cells));
    }

    #[test]
    fn one_spike_is_not_enough() {
        let mut t = tuner(8);
        assert_eq!(t.observe(100_000), None, "first observation only streaks");
        assert_eq!(t.observe(50), None, "the streak broke");
        assert_eq!(t.observe(100_000), None);
        assert_eq!(t.current(), 8);
    }

    #[test]
    fn jitter_inside_the_hysteresis_band_never_retunes() {
        // 4_096 subscribers at 4/cell → ideal axis 32. ±30% subscriber
        // jitter moves the ideal by ±14%, well inside the 1.5× band.
        let mut t = tuner(32);
        for i in 0..100 {
            let n = if i % 2 == 0 { 2_900 } else { 5_300 };
            assert_eq!(t.observe(n), None, "observation {i}");
        }
        assert_eq!(t.current(), 32);
    }

    #[test]
    fn bounds_are_respected() {
        let cfg = AutoTunerConfig::enabled();
        assert_eq!(cfg.cells_for(0), cfg.min_cells);
        assert_eq!(cfg.cells_for(usize::MAX / 4), cfg.max_cells);
        let mid = cfg.cells_for(4_096);
        assert!(mid >= cfg.min_cells && mid <= cfg.max_cells);
        assert_eq!(mid, 32);
    }

    #[test]
    fn restored_state_reproduces_decisions() {
        let mut a = tuner(8);
        a.observe(10_000);
        let (cells, streak, pending) = a.state();
        assert_eq!((streak, pending), (1, 64), "mid-streak state exported");
        let mut b = tuner(8);
        b.restore(cells, streak, pending);
        for _ in 0..5 {
            assert_eq!(a.observe(10_000), b.observe(10_000));
            assert_eq!(a.state(), b.state());
        }
    }

    #[test]
    fn oscillating_density_never_accumulates_a_streak() {
        // Regression: alternating decisive observations in opposite
        // directions must not count toward one streak — each proposal
        // change restarts it, so the tuner holds still instead of
        // thrashing between resolutions every `streak` ticks.
        let mut t = tuner(32);
        for i in 0..30 {
            let n = if i % 2 == 0 { 10 } else { 100_000 };
            assert_eq!(t.observe(n), None, "observation {i}");
        }
        assert_eq!(t.current(), 32, "oscillation must not retune");
    }
}
