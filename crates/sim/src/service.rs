//! Fluid model of a server's receive queue.
//!
//! Figure 2b of the paper plots each game server's *receive queue length*
//! while a hotspot forms and dissolves. We model the queue as a fluid:
//! work arrives in discrete lumps (packets), drains at the server's service
//! rate, and the backlog at any instant is the arrivals minus the drained
//! amount. A server whose arrival rate exceeds its service rate grows its
//! queue linearly — exactly the runaway the paper's splits relieve.

use crate::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A work-conserving service queue with a fixed drain rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceQueue {
    rate_per_sec: f64,
    backlog: f64,
    last: SimTime,
    total_arrived: f64,
    total_dropped: f64,
    capacity: Option<f64>,
}

impl ServiceQueue {
    /// Creates a queue draining `rate_per_sec` units of work per second,
    /// with unlimited buffering.
    pub fn new(rate_per_sec: f64) -> ServiceQueue {
        ServiceQueue {
            rate_per_sec,
            backlog: 0.0,
            last: SimTime::ZERO,
            total_arrived: 0.0,
            total_dropped: 0.0,
            capacity: None,
        }
    }

    /// Bounds the queue at `capacity` units; arrivals beyond it are dropped
    /// (and counted), modelling a full kernel receive buffer.
    pub fn with_capacity(mut self, capacity: f64) -> ServiceQueue {
        self.capacity = Some(capacity);
        self
    }

    /// The configured drain rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Adds `work` units at time `now`. Returns the amount actually
    /// enqueued (less than `work` only when a capacity bound drops the
    /// excess).
    pub fn arrive(&mut self, now: SimTime, work: f64) -> f64 {
        self.drain_to(now);
        self.total_arrived += work;
        let accepted = match self.capacity {
            Some(cap) => {
                let room = (cap - self.backlog).max(0.0);
                let acc = work.min(room);
                self.total_dropped += work - acc;
                acc
            }
            None => work,
        };
        self.backlog += accepted;
        accepted
    }

    /// Queue length (units of pending work) at `now`.
    pub fn backlog_at(&mut self, now: SimTime) -> f64 {
        self.drain_to(now);
        self.backlog
    }

    /// Time until the current backlog would fully drain, assuming no new
    /// arrivals. The queueing component of response latency.
    pub fn drain_time(&mut self, now: SimTime) -> SimDuration {
        let b = self.backlog_at(now);
        if self.rate_per_sec <= 0.0 {
            // A dead server never drains; report an hour as "forever".
            return SimDuration::from_secs(3600);
        }
        SimDuration::from_secs_f64(b / self.rate_per_sec)
    }

    /// Total work ever offered.
    pub fn total_arrived(&self) -> f64 {
        self.total_arrived
    }

    /// Work dropped at the capacity bound.
    pub fn total_dropped(&self) -> f64 {
        self.total_dropped
    }

    /// Resets the backlog (server restarted / state migrated away).
    pub fn clear(&mut self, now: SimTime) {
        self.drain_to(now);
        self.backlog = 0.0;
    }

    /// Scales the backlog by `factor` in `[0, 1]` — used when a fraction
    /// of the connections the queued work belongs to is redirected away
    /// (their buffered packets go with them or are discarded).
    pub fn scale_backlog(&mut self, now: SimTime, factor: f64) {
        self.drain_to(now);
        self.backlog *= factor.clamp(0.0, 1.0);
    }

    fn drain_to(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt = (now - self.last).as_secs_f64();
        self.backlog = (self.backlog - dt * self.rate_per_sec).max(0.0);
        self.last = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_at_rate() {
        let mut q = ServiceQueue::new(100.0);
        q.arrive(SimTime::ZERO, 100.0);
        assert_eq!(q.backlog_at(SimTime::from_millis(500)), 50.0);
        assert_eq!(q.backlog_at(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn backlog_never_negative() {
        let mut q = ServiceQueue::new(1000.0);
        q.arrive(SimTime::ZERO, 10.0);
        assert_eq!(q.backlog_at(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn overload_grows_linearly() {
        let mut q = ServiceQueue::new(10.0);
        // 20 units/s arriving against 10/s service: +10/s backlog.
        // 200 units offered over t=0..9, 100 drained by t=10.
        for s in 0..10 {
            q.arrive(SimTime::from_secs(s), 20.0);
        }
        let b = q.backlog_at(SimTime::from_secs(10));
        assert!((b - 100.0).abs() < 1e-9, "backlog {b}");
    }

    #[test]
    fn capacity_drops_excess() {
        let mut q = ServiceQueue::new(1.0).with_capacity(10.0);
        let accepted = q.arrive(SimTime::ZERO, 25.0);
        assert_eq!(accepted, 10.0);
        assert_eq!(q.total_dropped(), 15.0);
        assert_eq!(q.total_arrived(), 25.0);
    }

    #[test]
    fn drain_time_reflects_backlog() {
        let mut q = ServiceQueue::new(50.0);
        q.arrive(SimTime::ZERO, 100.0);
        assert_eq!(q.drain_time(SimTime::ZERO), SimDuration::from_secs(2));
    }

    #[test]
    fn zero_rate_reports_forever() {
        let mut q = ServiceQueue::new(0.0);
        q.arrive(SimTime::ZERO, 1.0);
        assert_eq!(q.drain_time(SimTime::ZERO), SimDuration::from_secs(3600));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = ServiceQueue::new(1.0);
        q.arrive(SimTime::ZERO, 100.0);
        q.clear(SimTime::from_secs(1));
        assert_eq!(q.backlog_at(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut q = ServiceQueue::new(10.0);
        q.arrive(SimTime::from_secs(5), 100.0);
        // Queries at earlier instants do not rewind the drain.
        assert_eq!(q.backlog_at(SimTime::from_secs(1)), 100.0);
        assert_eq!(q.backlog_at(SimTime::from_secs(6)), 90.0);
    }
}
