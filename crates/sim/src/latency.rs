//! Network latency, loss and bandwidth models for simulated links.

use crate::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Distribution of one-way message latency on a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound.
        max: SimDuration,
    },
    /// Normal with the given mean and standard deviation (truncated at 0).
    Normal {
        /// Mean latency.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
    },
}

impl LatencyModel {
    /// Convenience: a constant latency in milliseconds.
    pub const fn constant_millis(ms: u64) -> LatencyModel {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let us = rng.uniform_u64(min.as_micros(), max.as_micros().max(min.as_micros()) + 1);
                SimDuration::from_micros(us)
            }
            LatencyModel::Normal { mean, std_dev } => {
                let us = rng.normal(mean.as_micros() as f64, std_dev.as_micros() as f64);
                SimDuration::from_micros(us.round() as u64)
            }
        }
    }

    /// The distribution's mean, used by analytical models.
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::Normal { mean, .. } => mean,
        }
    }
}

impl Default for LatencyModel {
    /// 1 ms — same-rack datacenter link, matching the paper's deployment of
    /// game server and Matrix server near each other.
    fn default() -> Self {
        LatencyModel::constant_millis(1)
    }
}

/// A simulated link: latency distribution, random loss, and optional
/// serialisation delay from finite bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message propagation latency.
    pub latency: LatencyModel,
    /// Probability that a message is silently dropped.
    pub loss_probability: f64,
    /// Link capacity in bytes per second; `None` means unconstrained.
    pub bandwidth_bytes_per_sec: Option<f64>,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency: LatencyModel::default(),
            loss_probability: 0.0,
            bandwidth_bytes_per_sec: None,
        }
    }
}

impl LinkModel {
    /// A lossless constant-latency link.
    pub const fn constant_millis(ms: u64) -> LinkModel {
        LinkModel {
            latency: LatencyModel::constant_millis(ms),
            loss_probability: 0.0,
            bandwidth_bytes_per_sec: None,
        }
    }

    /// Samples the delivery delay for a message of `bytes`, or `None` if
    /// the message is lost.
    pub fn delay_for(&self, bytes: usize, rng: &mut SimRng) -> Option<SimDuration> {
        if rng.chance(self.loss_probability) {
            return None;
        }
        let mut d = self.latency.sample(rng);
        if let Some(bw) = self.bandwidth_bytes_per_sec {
            if bw > 0.0 {
                d += SimDuration::from_secs_f64(bytes as f64 / bw);
            }
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed_from_u64(1);
        let m = LatencyModel::constant_millis(5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        }
        assert_eq!(m.mean(), SimDuration::from_millis(5));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(2),
            max: SimDuration::from_millis(8),
        };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(2) && d <= SimDuration::from_millis(8));
        }
        assert_eq!(m.mean(), SimDuration::from_millis(5));
    }

    #[test]
    fn normal_is_non_negative() {
        let mut rng = SimRng::seed_from_u64(3);
        let m = LatencyModel::Normal {
            mean: SimDuration::from_micros(100),
            std_dev: SimDuration::from_micros(500),
        };
        for _ in 0..1000 {
            let _ = m.sample(&mut rng); // must not panic / go negative
        }
    }

    #[test]
    fn lossless_link_always_delivers() {
        let mut rng = SimRng::seed_from_u64(4);
        let link = LinkModel::constant_millis(1);
        for _ in 0..100 {
            assert!(link.delay_for(100, &mut rng).is_some());
        }
    }

    #[test]
    fn lossy_link_drops_roughly_p() {
        let mut rng = SimRng::seed_from_u64(5);
        let link = LinkModel {
            loss_probability: 0.25,
            ..LinkModel::constant_millis(1)
        };
        let n = 10_000;
        let lost = (0..n)
            .filter(|_| link.delay_for(10, &mut rng).is_none())
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn bandwidth_adds_serialisation_delay() {
        let mut rng = SimRng::seed_from_u64(6);
        let link = LinkModel {
            latency: LatencyModel::constant_millis(1),
            loss_probability: 0.0,
            bandwidth_bytes_per_sec: Some(1_000_000.0), // 1 MB/s
        };
        // 1 MB payload at 1 MB/s: one extra second on the wire.
        let d = link.delay_for(1_000_000, &mut rng).unwrap();
        assert_eq!(d, SimDuration::from_millis(1) + SimDuration::from_secs(1));
    }
}
