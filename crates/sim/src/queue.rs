//! The deterministic event queue at the heart of the simulator.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A future event: its due time, a tie-breaking sequence number, and the
/// payload. Ordering is `(time, seq)` so two events scheduled for the same
/// instant fire in scheduling order — the property that makes runs
/// reproducible.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A priority queue of timestamped events with FIFO tie-breaking.
///
/// The driver loop owns the clock: it pops events in time order and is
/// expected never to schedule into the past (doing so is tolerated — the
/// event fires "now" — but indicates a modelling bug, so [`EventQueue::pop`]
/// never reorders already-popped time).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns the earliest event, with its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// The due time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (throughput metric).
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "later");
        q.schedule(SimTime::from_secs(1), "soon");
        assert_eq!(q.pop().unwrap().1, "soon");
        q.schedule(SimTime::from_secs(2), "inserted");
        assert_eq!(q.pop().unwrap().1, "inserted");
        assert_eq!(q.pop().unwrap().1, "later");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        q.pop().unwrap();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn delivered_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn same_seed_same_trajectory() {
        // Determinism witness: two identical schedules drain identically.
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..50u64 {
                q.schedule(SimTime::from_micros(i % 7), i);
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn supports_relative_scheduling_via_add() {
        let mut q = EventQueue::new();
        let now = SimTime::from_secs(10);
        q.schedule(now + SimDuration::from_millis(1), "x");
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(10_001_000));
    }
}
