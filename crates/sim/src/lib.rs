//! Deterministic discrete-event simulation kernel.
//!
//! The Matrix paper evaluated on a physical cluster running real games.
//! This crate is the testbed substitute (see DESIGN.md §2): a virtual
//! clock, a deterministic event queue, seeded randomness, network latency
//! and loss models, and a fluid service-queue model that produces the
//! receive-queue-length series of Figure 2b.
//!
//! Everything is reproducible: the same seed and schedule produce the same
//! trajectory, which is what lets the experiment harness regenerate the
//! paper's figures as stable artefacts.
//!
//! # Example
//!
//! ```
//! use matrix_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "world");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "hello");
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1.as_millis(), e1), (1, "hello"));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((t2.as_millis(), e2), (5, "world"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod queue;
mod rng;
mod service;
mod time;

pub use latency::{LatencyModel, LinkModel};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use service::ServiceQueue;
pub use time::{SimDuration, SimTime};
