//! Virtual time: instants and durations with microsecond resolution.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in integer microseconds since the
/// start of the run.
///
/// Integer time keeps event ordering exact: two runs with the same seed
/// schedule identical timestamps, with no floating-point drift.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in integer microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Constructs an instant from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Constructs an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Raw microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the run, as a float (for plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Constructs a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest microsecond and saturating negative values at zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer multiplication, for backoff and tick schedules.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_secs(1) - SimTime::from_secs(5);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(15).to_string(), "15us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }
}
