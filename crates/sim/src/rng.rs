//! Seeded randomness for reproducible workloads.

/// A deterministic random source.
///
/// Self-contained xoshiro256++ generator (Blackman & Vigna) seeded
/// through SplitMix64, exposing exactly the sampling primitives the
/// workloads need; constructing it from a `u64` seed keeps experiment
/// configs serialisable and diffable, and carrying no external dependency
/// keeps the workspace building offline.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw 64-bit step of xoshiro256++.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; used to give each client or
    /// server its own stream so adding one consumer does not perturb the
    /// others' draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        let v = lo + self.next_f64() * (hi - lo);
        // Floating rounding can land exactly on `hi`; fold back inside.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        let span = hi - lo;
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the span sizes the workloads use, and determinism is what we
        // actually need.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Normally distributed sample (Box–Muller), truncated at zero.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::EPSILON);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * std_dev).max(0.0)
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.uniform_u64(0, items.len() as u64) as usize;
            Some(&items[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..20)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 3);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&v));
        }
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
    }

    #[test]
    fn uniform_u64_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(rng.uniform_u64(5, 5), 5);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.normal(10.0, 1.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn pick_is_none_on_empty() {
        let mut rng = SimRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        assert!(rng.pick(&[9]).is_some());
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent_a = SimRng::seed_from_u64(99);
        let mut child_a = parent_a.fork();
        let a: Vec<u64> = (0..10).map(|_| child_a.uniform_u64(0, 1000)).collect();

        let mut parent_b = SimRng::seed_from_u64(99);
        let mut child_b = parent_b.fork();
        // Consuming from the parent after forking must not affect the child.
        parent_b.uniform(0.0, 1.0);
        let b: Vec<u64> = (0..10).map(|_| child_b.uniform_u64(0, 1000)).collect();
        assert_eq!(a, b);
    }
}
