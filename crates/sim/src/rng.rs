//! Seeded randomness for reproducible workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source.
///
/// Thin wrapper over a seeded [`StdRng`] exposing exactly the sampling
/// primitives the workloads need; constructing it from a `u64` seed keeps
/// experiment configs serialisable and diffable.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; used to give each client or
    /// server its own stream so adding one consumer does not perturb the
    /// others' draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Exponentially distributed sample with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Normally distributed sample (Box–Muller), truncated at zero.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * std_dev).max(0.0)
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..items.len());
            Some(&items[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..20).filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)).count();
        assert!(same < 3);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&v));
        }
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.normal(10.0, 1.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn pick_is_none_on_empty() {
        let mut rng = SimRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        assert!(rng.pick(&[9]).is_some());
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent_a = SimRng::seed_from_u64(99);
        let mut child_a = parent_a.fork();
        let a: Vec<u64> = (0..10).map(|_| child_a.uniform_u64(0, 1000)).collect();

        let mut parent_b = SimRng::seed_from_u64(99);
        let mut child_b = parent_b.fork();
        // Consuming from the parent after forking must not affect the child.
        parent_b.uniform(0.0, 1.0);
        let b: Vec<u64> = (0..10).map(|_| child_b.uniform_u64(0, 1000)).collect();
        assert_eq!(a, b);
    }
}
