//! Dead reckoning for the Matrix middleware: predictive dissemination.
//!
//! PRs 1–4 attacked *who* receives an event (interest grid, vision
//! rings) and *how compactly* it ships (deltas, budgets); every relevant
//! movement event was still transmitted on every flush. Dead reckoning —
//! the standard multiplier from the synchronization literature (Khan &
//! Chabridon's reusable synchronization component; D'Angelo et al.'s
//! adaptive event dissemination) — goes one step further: model each
//! entity's motion, let receivers *extrapolate* between updates, and
//! transmit only when the receiver's prediction would drift past an
//! error budget.
//!
//! Three pieces, deliberately independent of the middleware's message
//! types so the pipeline, the property suites and the benches all drive
//! the same code:
//!
//! * [`MotionModel`] — sender-side per-entity velocity estimation over a
//!   sliding window of recent positions. Purely observational: it sees
//!   every event (including suppressed ones), so its estimate tracks the
//!   true trajectory.
//! * [`PredictedStream`] — the sender's mirror of each receiver's
//!   extrapolation state, one basis per (receiver, entity): the last
//!   position + velocity actually transmitted. [`PredictedStream::admit`]
//!   simulates the receiver's prediction with the **same arithmetic**
//!   the receiver uses ([`extrapolate`]) and suppresses the event while
//!   the simulated error stays within the caller's budget — so the bound
//!   the sender enforces *is* the error the receiver experiences,
//!   bit-for-bit (property-pinned in `tests/predict_properties.rs`).
//! * [`Extrapolator`] — the receiver side: stores the last received
//!   basis per entity and advances it to any later instant. A client
//!   renders extrapolated positions between updates instead of frozen
//!   ones.
//!
//! A budget of `0.0` disables suppression entirely (every event ships),
//! which is how the near vision ring keeps PR 4's delivery guarantee:
//! near means every event, predicted or not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use matrix_geometry::Point;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

/// Advances a transmitted basis (`pos`, `vel`) by `dt` seconds.
///
/// This is *the* dead-reckoning arithmetic, shared verbatim by the
/// sender's error simulation ([`PredictedStream`]) and the receiver's
/// renderer ([`Extrapolator`]): one `f64` multiply-add per axis, no
/// intermediate rounding — given the same basis and the same `dt`, both
/// sides compute the identical point, so the sender's simulated error
/// equals the receiver's real error exactly.
pub fn extrapolate(pos: Point, vel: (f64, f64), dt: f64) -> Point {
    Point::new(pos.x + vel.0 * dt, pos.y + vel.1 * dt)
}

/// Snaps each velocity component onto the fixed-point lattice of
/// resolution `quantum` (`0.0` returns the velocity unchanged) — the
/// same treatment batch origins get, so the compact wire frame the byte
/// accounting models genuinely carries the shipped velocity. Non-finite
/// snaps pass the component through unchanged.
pub fn quantize_velocity(vel: (f64, f64), quantum: f64) -> (f64, f64) {
    if quantum == 0.0 {
        return vel;
    }
    let snap = |v: f64| {
        let q = (v / quantum).round() * quantum;
        if q.is_finite() {
            q
        } else {
            v
        }
    };
    (snap(vel.0), snap(vel.1))
}

// ---------------------------------------------------------------------------
// Sender side: motion estimation
// ---------------------------------------------------------------------------

/// Per-entity velocity estimation over a sliding window of observed
/// positions.
///
/// The model observes **every** event an entity produces — suppressed or
/// transmitted — because the sender always knows the truth; only the
/// *transmissions* are rationed. The estimate is the secant over the
/// window (newest minus oldest position over elapsed time): cheap,
/// deterministic, and exact for the linear motion dead reckoning is
/// good at. Entities that jitter in place estimate a near-zero velocity,
/// which degrades gracefully into a plain change-threshold filter.
#[derive(Debug, Clone)]
pub struct MotionModel {
    window: usize,
    tracks: HashMap<u64, VecDeque<(f64, Point)>>,
}

impl MotionModel {
    /// A model remembering up to `window` observations per entity
    /// (clamped to at least 2 — velocity needs a secant).
    pub fn new(window: u32) -> MotionModel {
        MotionModel {
            window: (window as usize).max(2),
            tracks: HashMap::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of entities currently tracked.
    pub fn tracked(&self) -> usize {
        self.tracks.len()
    }

    /// Records one observed position. Out-of-order or repeated
    /// timestamps replace the newest sample instead of corrupting the
    /// secant.
    pub fn observe(&mut self, entity: u64, pos: Point, time: f64) {
        let track = self.tracks.entry(entity).or_default();
        if let Some(&(newest, _)) = track.back() {
            if time <= newest {
                track.pop_back();
            }
        }
        track.push_back((time, pos));
        while track.len() > self.window {
            track.pop_front();
        }
    }

    /// The current velocity estimate in world units per second, `(0, 0)`
    /// until two distinct-time observations exist.
    pub fn velocity(&self, entity: u64) -> (f64, f64) {
        let Some(track) = self.tracks.get(&entity) else {
            return (0.0, 0.0);
        };
        let (Some(&(t0, p0)), Some(&(t1, p1))) = (track.front(), track.back()) else {
            return (0.0, 0.0);
        };
        let dt = t1 - t0;
        if dt <= 0.0 {
            return (0.0, 0.0);
        }
        ((p1.x - p0.x) / dt, (p1.y - p0.y) / dt)
    }

    /// Drops all observations for a departed entity.
    pub fn forget(&mut self, entity: u64) {
        self.tracks.remove(&entity);
    }

    /// Drops every track.
    pub fn clear(&mut self) {
        self.tracks.clear();
    }
}

// ---------------------------------------------------------------------------
// Sender side: per-receiver suppression
// ---------------------------------------------------------------------------

/// One transmitted basis: what a receiver extrapolates an entity from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Basis {
    /// The last transmitted (wire) position.
    pub pos: Point,
    /// The velocity transmitted with it, world units per second.
    pub vel: (f64, f64),
    /// When it was transmitted, in seconds.
    pub time: f64,
}

impl Basis {
    /// Where a receiver holding this basis believes the entity is at
    /// time `at`.
    pub fn predict(&self, at: f64) -> Point {
        extrapolate(self.pos, self.vel, at - self.time)
    }
}

/// The verdict of one [`PredictedStream::admit`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Transmit: no basis yet, suppression disabled (budget 0), or the
    /// receiver's prediction drifted past the budget. The stream has
    /// recorded the new basis.
    Send,
    /// Suppress: the receiver's extrapolation is within the budget.
    /// `error` is the simulated (== real) prediction error in world
    /// units.
    Suppress {
        /// Simulated receiver error at this instant.
        error: f64,
    },
}

impl Admission {
    /// Whether the event should be transmitted.
    pub fn is_send(&self) -> bool {
        matches!(self, Admission::Send)
    }
}

/// The sender's mirror of every receiver's extrapolation state.
///
/// One basis per (receiver, entity) pair, recorded at each transmission.
/// [`PredictedStream::admit`] decides transmit-vs-suppress by running
/// the receiver's own arithmetic against the basis — never a separate
/// approximation — so the configured budget is a hard bound on the
/// receiver-side error at every event instant.
#[derive(Debug, Clone, Default)]
pub struct PredictedStream<K> {
    bases: HashMap<K, BTreeMap<u64, Basis>>,
}

impl<K: Copy + Eq + Hash + Ord> PredictedStream<K> {
    /// An empty stream set.
    pub fn new() -> PredictedStream<K> {
        PredictedStream {
            bases: HashMap::new(),
        }
    }

    /// Registers one candidate event for `receiver`: entity `entity`
    /// moved to (wire position) `pos` at time `now`, with current
    /// velocity estimate `vel`. Returns whether to transmit under
    /// `budget` (world units; `0.0` = always transmit), recording the
    /// new basis on every transmission.
    pub fn admit(
        &mut self,
        receiver: K,
        entity: u64,
        pos: Point,
        vel: (f64, f64),
        now: f64,
        budget: f64,
    ) -> Admission {
        let per_entity = self.bases.entry(receiver).or_default();
        if budget > 0.0 {
            if let Some(basis) = per_entity.get(&entity) {
                let error = basis.predict(now).distance(pos);
                if error <= budget {
                    return Admission::Suppress { error };
                }
            }
        }
        per_entity.insert(
            entity,
            Basis {
                pos,
                vel,
                time: now,
            },
        );
        Admission::Send
    }

    /// The basis a receiver currently holds for an entity, if any.
    pub fn basis(&self, receiver: K, entity: u64) -> Option<Basis> {
        self.bases.get(&receiver)?.get(&entity).copied()
    }

    /// Number of receivers holding at least one basis.
    pub fn receivers(&self) -> usize {
        self.bases.len()
    }

    /// Drops all bases of a departed (or resynced) receiver — after a
    /// rejoin the receiver's extrapolator is empty, so the mirror must
    /// be too.
    pub fn forget_receiver(&mut self, receiver: K) {
        self.bases.remove(&receiver);
    }

    /// Drops one entity's basis from every receiver (the entity left).
    pub fn forget_entity(&mut self, entity: u64) {
        self.bases.retain(|_, per_entity| {
            per_entity.remove(&entity);
            !per_entity.is_empty()
        });
    }

    /// Drops every basis.
    pub fn clear(&mut self) {
        self.bases.clear();
    }

    /// Exports every basis as `(receiver, [(entity, basis)])`, receivers
    /// and entities in key order — the region-snapshot form used by the
    /// replication layer. Importing the result into a fresh stream
    /// reproduces every admit decision exactly.
    pub fn export(&self) -> Vec<(K, Vec<(u64, Basis)>)> {
        let mut out: Vec<(K, Vec<(u64, Basis)>)> = self
            .bases
            .iter()
            .map(|(k, per_entity)| (*k, per_entity.iter().map(|(e, b)| (*e, *b)).collect()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Replaces the basis table with previously exported state (the
    /// restore half of [`PredictedStream::export`]).
    pub fn import(&mut self, bases: impl IntoIterator<Item = (K, Vec<(u64, Basis)>)>) {
        self.bases = bases
            .into_iter()
            .map(|(k, per_entity)| (k, per_entity.into_iter().collect()))
            .collect();
    }
}

// ---------------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------------

/// Receiver-side dead reckoning: the last received basis per entity,
/// advanced on demand.
///
/// Feed it every received update's position + velocity;
/// [`Extrapolator::predict`] answers "where do I render this entity
/// *now*" between updates. Reset it whenever the stream restarts (join,
/// server switch) — exactly when the delta stream's base drops.
#[derive(Debug, Clone, Default)]
pub struct Extrapolator {
    bases: BTreeMap<u64, Basis>,
}

impl Extrapolator {
    /// An empty extrapolator (fresh connection).
    pub fn new() -> Extrapolator {
        Extrapolator::default()
    }

    /// Records one received update for `entity`.
    pub fn update(&mut self, entity: u64, pos: Point, vel: (f64, f64), time: f64) {
        self.bases.insert(entity, Basis { pos, vel, time });
    }

    /// The extrapolated position of `entity` at time `at`, or `None`
    /// before any update arrived.
    pub fn predict(&self, entity: u64, at: f64) -> Option<Point> {
        self.bases.get(&entity).map(|b| b.predict(at))
    }

    /// The raw basis held for `entity`, if any.
    pub fn basis(&self, entity: u64) -> Option<Basis> {
        self.bases.get(&entity).copied()
    }

    /// Number of entities with a basis.
    pub fn tracked(&self) -> usize {
        self.bases.len()
    }

    /// Drops one entity (it left the area of interest).
    pub fn forget(&mut self, entity: u64) {
        self.bases.remove(&entity);
    }

    /// Drops every basis older than `cutoff` (seconds), returning how
    /// many were culled. Renderers call this periodically: an entity no
    /// update has arrived for in a while has left the area of interest
    /// or the server — dead reckoning carries an entity *between*
    /// updates, it must not resurrect one that stopped producing them.
    pub fn prune_older_than(&mut self, cutoff: f64) -> usize {
        let before = self.bases.len();
        self.bases.retain(|_, b| b.time >= cutoff);
        before - self.bases.len()
    }

    /// Drops everything (the stream restarted: join or server switch).
    pub fn reset(&mut self) {
        self.bases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_is_a_single_multiply_add() {
        let p = extrapolate(Point::new(10.0, 20.0), (2.0, -4.0), 0.5);
        assert_eq!(p, Point::new(11.0, 18.0));
        assert_eq!(
            extrapolate(Point::new(1.0, 2.0), (5.0, 5.0), 0.0),
            Point::new(1.0, 2.0)
        );
    }

    #[test]
    fn motion_model_estimates_linear_velocity_exactly() {
        let mut m = MotionModel::new(4);
        for i in 0..6 {
            m.observe(
                7,
                Point::new(i as f64 * 3.0, 100.0 - i as f64),
                i as f64 * 0.1,
            );
        }
        let (vx, vy) = m.velocity(7);
        assert!((vx - 30.0).abs() < 1e-9, "{vx}");
        assert!((vy + 10.0).abs() < 1e-9, "{vy}");
    }

    #[test]
    fn motion_model_needs_two_distinct_times() {
        let mut m = MotionModel::new(4);
        assert_eq!(m.velocity(1), (0.0, 0.0), "unknown entity");
        m.observe(1, Point::new(5.0, 5.0), 1.0);
        assert_eq!(m.velocity(1), (0.0, 0.0), "one sample");
        // A repeated timestamp replaces the sample instead of making a
        // zero-dt secant.
        m.observe(1, Point::new(6.0, 5.0), 1.0);
        assert_eq!(m.velocity(1), (0.0, 0.0));
        m.observe(1, Point::new(7.0, 5.0), 2.0);
        let (vx, _) = m.velocity(1);
        assert!((vx - 1.0).abs() < 1e-9, "{vx}");
    }

    #[test]
    fn motion_window_slides() {
        let mut m = MotionModel::new(2);
        m.observe(1, Point::new(0.0, 0.0), 0.0);
        m.observe(1, Point::new(10.0, 0.0), 1.0); // 10 u/s
        m.observe(1, Point::new(12.0, 0.0), 2.0); // window now [1s, 2s]: 2 u/s
        let (vx, _) = m.velocity(1);
        assert!((vx - 2.0).abs() < 1e-9, "{vx}");
        m.forget(1);
        assert_eq!(m.velocity(1), (0.0, 0.0));
        assert_eq!(m.tracked(), 0);
    }

    #[test]
    fn first_event_always_transmits_then_budget_suppresses() {
        let mut s: PredictedStream<u32> = PredictedStream::new();
        // First contact: no basis, must send.
        assert!(s
            .admit(1, 7, Point::new(0.0, 0.0), (10.0, 0.0), 0.0, 5.0)
            .is_send());
        // One second later the entity is at x=10 — exactly where the
        // receiver extrapolated it. Suppressed, error 0.
        match s.admit(1, 7, Point::new(10.0, 0.0), (10.0, 0.0), 1.0, 5.0) {
            Admission::Suppress { error } => assert_eq!(error, 0.0),
            other => panic!("expected suppression: {other:?}"),
        }
        // The basis did not advance: it still describes t=0.
        assert_eq!(s.basis(1, 7).unwrap().time, 0.0);
        // A swerve past the budget transmits and rebases.
        assert!(s
            .admit(1, 7, Point::new(20.0, 9.0), (10.0, 4.0), 2.0, 5.0)
            .is_send());
        assert_eq!(s.basis(1, 7).unwrap().time, 2.0);
    }

    #[test]
    fn zero_budget_never_suppresses() {
        let mut s: PredictedStream<u32> = PredictedStream::new();
        for i in 0..5 {
            assert!(
                s.admit(1, 7, Point::new(0.0, 0.0), (0.0, 0.0), i as f64, 0.0)
                    .is_send(),
                "budget 0 means every event, even a perfectly predicted one"
            );
        }
    }

    #[test]
    fn suppression_error_equals_receiver_error_bitwise() {
        // The determinism contract: sender simulation and receiver
        // extrapolation share `extrapolate`, so the distances agree
        // bit-for-bit.
        let mut s: PredictedStream<u32> = PredictedStream::new();
        let mut r = Extrapolator::new();
        let basis_pos = Point::new(3.7, -1.9);
        let vel = (12.34, -5.678);
        assert!(s.admit(1, 7, basis_pos, vel, 0.25, 2.0).is_send());
        r.update(7, basis_pos, vel, 0.25);
        let truth = Point::new(5.01, -2.44);
        let verdict = s.admit(1, 7, truth, vel, 0.375, 2.0);
        let receiver_err = r.predict(7, 0.375).unwrap().distance(truth);
        match verdict {
            Admission::Suppress { error } => assert_eq!(error, receiver_err),
            Admission::Send => panic!("within budget: {receiver_err}"),
        }
    }

    #[test]
    fn forgetting_receivers_and_entities_clears_bases() {
        let mut s: PredictedStream<u32> = PredictedStream::new();
        s.admit(1, 7, Point::new(0.0, 0.0), (1.0, 0.0), 0.0, 1.0);
        s.admit(2, 7, Point::new(0.0, 0.0), (1.0, 0.0), 0.0, 1.0);
        s.admit(2, 8, Point::new(5.0, 0.0), (1.0, 0.0), 0.0, 1.0);
        s.forget_receiver(1);
        assert!(s.basis(1, 7).is_none());
        s.forget_entity(7);
        assert!(s.basis(2, 7).is_none());
        assert!(s.basis(2, 8).is_some());
        s.clear();
        assert_eq!(s.receivers(), 0);
    }

    #[test]
    fn export_import_round_trips_admit_decisions() {
        let mut s: PredictedStream<u32> = PredictedStream::new();
        s.admit(2, 8, Point::new(1.0, 2.0), (3.0, 4.0), 0.5, 2.0);
        s.admit(1, 7, Point::new(9.0, 9.0), (-1.0, 0.0), 0.75, 2.0);
        let mut t: PredictedStream<u32> = PredictedStream::new();
        t.import(s.export());
        let probe = Point::new(9.0 - 0.25, 9.0);
        assert_eq!(
            s.admit(1, 7, probe, (-1.0, 0.0), 1.0, 2.0),
            t.admit(1, 7, probe, (-1.0, 0.0), 1.0, 2.0),
        );
        assert_eq!(s.export(), t.export());
    }

    #[test]
    fn quantized_velocity_sits_on_the_lattice() {
        let q = 1.0 / 256.0;
        let (vx, vy) = quantize_velocity((12.3456, -0.0071), q);
        assert_eq!((vx / q).fract(), 0.0);
        assert_eq!((vy / q).fract(), 0.0);
        assert_eq!(quantize_velocity((1.23, 4.56), 0.0), (1.23, 4.56));
    }

    #[test]
    fn extrapolator_predicts_and_resets() {
        let mut r = Extrapolator::new();
        assert!(r.predict(7, 1.0).is_none());
        r.update(7, Point::new(10.0, 0.0), (5.0, 1.0), 1.0);
        assert_eq!(r.predict(7, 3.0), Some(Point::new(20.0, 2.0)));
        assert_eq!(r.tracked(), 1);
        r.forget(7);
        assert!(r.predict(7, 3.0).is_none());
        r.update(8, Point::new(0.0, 0.0), (0.0, 0.0), 0.0);
        r.reset();
        assert_eq!(r.tracked(), 0);
    }
}
