//! Substrate benchmarks: the discrete-event kernel must be fast enough
//! that simulated experiments measure the middleware, not the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use matrix_sim::{EventQueue, ServiceQueue, SimRng, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.bench_function("interleaved_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut out = 0u64;
            for round in 0..10u64 {
                for i in 0..100u64 {
                    q.schedule(SimTime::from_micros(round * 1000 + i), i);
                }
                for _ in 0..100 {
                    if let Some((_, e)) = q.pop() {
                        out = out.wrapping_add(e);
                    }
                }
            }
            black_box(out)
        })
    });
    group.finish();
}

fn bench_service_queue(c: &mut Criterion) {
    c.bench_function("service_queue_arrive_drain", |b| {
        b.iter(|| {
            let mut q = ServiceQueue::new(1000.0);
            for i in 0..1000u64 {
                q.arrive(SimTime::from_millis(i), 1.5);
            }
            black_box(q.backlog_at(SimTime::from_secs(2)))
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_mixed_draws", |b| {
        let mut rng = SimRng::seed_from_u64(42);
        b.iter(|| {
            let a = rng.uniform(0.0, 800.0);
            let b2 = rng.exponential(0.2);
            let c2 = rng.normal(10.0, 2.0);
            let d = rng.chance(0.3);
            black_box((a, b2, c2, d))
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_service_queue, bench_rng);
criterion_main!(benches);
