//! E4 (micro) — per-message costs of the middleware state machines: the
//! packet forwarding path, the handoff path, and the fan-out path. These
//! are the per-packet overheads Matrix adds to a game server's critical
//! path, which §2.2 demands stay negligible.

use criterion::{criterion_group, criterion_main, Criterion};
use matrix_core::{
    ClientId, ClientToGame, CoordReply, GamePacket, GameServerConfig, GameServerNode, GameToMatrix,
    MatrixConfig, MatrixServer, SpatialTag,
};
use matrix_geometry::{build_overlap, Metric, PartitionMap, Point, Rect, ServerId, SplitStrategy};
use matrix_sim::SimTime;
use std::hint::black_box;

fn routed_server() -> MatrixServer {
    let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
    let mut map = PartitionMap::new(world, ServerId(1));
    map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
        .unwrap();
    map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
        .unwrap();
    let overlap = build_overlap(&map, 100.0, Metric::Euclidean);
    let mut server = MatrixServer::with_range(
        ServerId(1),
        MatrixConfig::default(),
        map.range_of(ServerId(1)).unwrap(),
        100.0,
    );
    server.on_coord(
        SimTime::ZERO,
        CoordReply::Tables {
            epoch: 1,
            table: overlap.table_for(ServerId(1)).unwrap().clone(),
            extra_tables: vec![],
            map,
        },
    );
    server
}

fn bench_forward_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_path");
    // Interior packet: table lookup says "no peers".
    group.bench_function("interior_packet", |b| {
        let mut server = routed_server();
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(700.0, 300.0)), 64, 0);
        b.iter(|| black_box(server.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt.clone()))))
    });
    // Boundary packet: routed to one peer.
    group.bench_function("boundary_packet", |b| {
        let mut server = routed_server();
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(410.0, 300.0)), 64, 0);
        b.iter(|| black_box(server.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt.clone()))))
    });
    group.finish();
}

fn bench_game_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("game_server");
    // Move processing with a populated server (fan-out counting).
    for &clients in &[10usize, 100, 600] {
        group.bench_function(format!("move_with_{clients}_clients"), |b| {
            let mut game = GameServerNode::new(ServerId(1), GameServerConfig::default());
            game.register(Rect::from_coords(0.0, 0.0, 800.0, 800.0), 100.0);
            for i in 0..clients {
                let pos = Point::new(
                    400.0 + 50.0 * ((i % 25) as f64 - 12.0),
                    400.0 + 50.0 * ((i / 25) as f64 - 12.0),
                );
                game.on_client(
                    SimTime::ZERO,
                    ClientId(i as u64 + 1),
                    ClientToGame::Join {
                        pos,
                        state_bytes: 100,
                    },
                );
            }
            b.iter(|| {
                black_box(game.on_client(
                    SimTime::ZERO,
                    ClientId(1),
                    ClientToGame::Move {
                        pos: Point::new(400.0, 400.0),
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("handoff");
    group.bench_function("redirect_region_100_of_200", |b| {
        b.iter(|| {
            let mut game = GameServerNode::new(ServerId(1), GameServerConfig::default());
            game.register(Rect::from_coords(0.0, 0.0, 800.0, 800.0), 100.0);
            for i in 0..200u64 {
                let x = if i < 100 { 100.0 } else { 700.0 };
                game.on_client(
                    SimTime::ZERO,
                    ClientId(i + 1),
                    ClientToGame::Join {
                        pos: Point::new(x, 400.0),
                        state_bytes: 100,
                    },
                );
            }
            let actions = game.on_matrix(
                SimTime::ZERO,
                matrix_core::MatrixToGame::RedirectClients {
                    region: Rect::from_coords(0.0, 0.0, 400.0, 800.0),
                    to: ServerId(2),
                },
            );
            black_box(actions)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_path,
    bench_game_server,
    bench_handoff
);
criterion_main!(benches);
