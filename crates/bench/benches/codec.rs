//! Wire-codec gate (PR 7): for a dense-crowd `UpdateBatch` stream, the
//! v2 binary codec must cut encode CPU by at least 40% and
//! bytes-on-wire by at least 25% against the v1 JSON codec.
//!
//! The workload is the dissemination hot path's output shape: per-flush
//! batches of mostly delta items (lattice-snapped sub-unit moves, ~1/8
//! keyframes, entity + ring tags, some velocity tags), framed exactly
//! as each codec puts them on a socket — v2 with header + CRC trailer,
//! v1 as a JSON line + `'\n'`. Both arms encode the identical batches;
//! rounds alternate so drift (thermal, cache, scheduler) hits both, the
//! best round of each arm is compared (the usual min-of-N noise
//! filter), and the process **exits non-zero** when either reduction
//! misses its floor — so CI fails the build on a codec regression, not
//! a human reading a report.
//!
//! Not a criterion bench on purpose: the verdict needs a process exit
//! code, and the two arms must interleave in one process.

use matrix_core::codec::encode_game_to_client;
use matrix_core::codec_v2::{self, FrameMeta};
use matrix_core::{BatchItem, DeltaItem, GameToClient, UpdateItem};
use matrix_geometry::Point;
use matrix_sim::SimRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Flushed batches per round — one per client per tick in a crowd.
const BATCHES: usize = 2000;
/// Visible neighbours per client in the dense hotspot.
const ITEMS_PER_BATCH: usize = 48;
const MIN_ROUNDS: usize = 4;
const MAX_ROUNDS: usize = 12;
/// Floors from the PR acceptance bar.
const CPU_FLOOR: f64 = 0.40;
const BYTES_FLOOR: f64 = 0.25;

/// Lattice-snapped value with 1/256 granularity, like every coordinate
/// the pipeline emits after `quantize`.
fn lattice(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    (rng.uniform(lo, hi) * 256.0).round() / 256.0
}

/// One flush's worth of updates, shaped like the delta encoder's
/// output for a dense crowd: mostly sub-unit deltas, a keyframe every
/// ~8 items (the stream resync cadence), outer-ring items velocity
/// tagged as the predictor would.
fn dense_batches() -> Vec<GameToClient> {
    let mut rng = SimRng::seed_from_u64(0xBA7C);
    (0..BATCHES)
        .map(|_| {
            let updates = (0..ITEMS_PER_BATCH)
                .map(|i| {
                    let entity = rng.uniform_u64(1, 4000);
                    let ring = rng.uniform_u64(0, 3) as u8;
                    let (vx, vy) = if ring > 0 && rng.chance(0.3) {
                        (lattice(&mut rng, -8.0, 8.0), lattice(&mut rng, -8.0, 8.0))
                    } else {
                        (0.0, 0.0)
                    };
                    if i % 8 == 0 {
                        BatchItem::Absolute(UpdateItem {
                            origin: Point::new(
                                lattice(&mut rng, 0.0, 800.0),
                                lattice(&mut rng, 0.0, 800.0),
                            ),
                            payload_bytes: 64,
                            entity,
                            ring,
                            vx,
                            vy,
                            trace: None,
                        })
                    } else {
                        BatchItem::Delta(DeltaItem {
                            dx: lattice(&mut rng, -2.0, 2.0),
                            dy: lattice(&mut rng, -2.0, 2.0),
                            payload_bytes: 64,
                            entity,
                            ring,
                            vx,
                            vy,
                            trace: None,
                        })
                    }
                })
                .collect();
            GameToClient::UpdateBatch { updates }
        })
        .collect()
}

/// Encodes the whole stream once; returns (elapsed, bytes on the wire).
fn run_round(binary: bool, batches: &[GameToClient]) -> (Duration, usize) {
    let t0 = Instant::now();
    let mut bytes = 0usize;
    if binary {
        let mut meta = FrameMeta::default();
        for msg in batches {
            let frame = codec_v2::encode_server_frame(msg, meta, true);
            bytes += frame.len();
            black_box(&frame);
            meta.seq += 1;
        }
    } else {
        for msg in batches {
            let line = encode_game_to_client(msg);
            bytes += line.len() + 1; // the '\n' terminator ships too
            black_box(&line);
        }
    }
    (t0.elapsed(), bytes)
}

fn main() {
    let batches = dense_batches();
    let mut best_json = Duration::MAX;
    let mut best_bin = Duration::MAX;
    let mut json_bytes = 0;
    let mut bin_bytes = 0;
    let mut cpu_cut = f64::NEG_INFINITY;
    for round in 0..MAX_ROUNDS {
        let (json_t, jb) = run_round(false, &batches);
        let (bin_t, bb) = run_round(true, &batches);
        best_json = best_json.min(json_t);
        best_bin = best_bin.min(bin_t);
        json_bytes = jb;
        bin_bytes = bb;
        println!(
            "round {round}: json {:>8.3} ms   binary {:>8.3} ms",
            json_t.as_secs_f64() * 1e3,
            bin_t.as_secs_f64() * 1e3
        );
        cpu_cut = 1.0 - best_bin.as_secs_f64() / best_json.as_secs_f64();
        if round + 1 >= MIN_ROUNDS && cpu_cut >= CPU_FLOOR {
            break;
        }
    }
    let bytes_cut = 1.0 - bin_bytes as f64 / json_bytes as f64;
    println!(
        "encode CPU: json {:.3} ms, binary {:.3} ms => -{:.1}% (floor -{:.0}%)",
        best_json.as_secs_f64() * 1e3,
        best_bin.as_secs_f64() * 1e3,
        cpu_cut * 100.0,
        CPU_FLOOR * 100.0
    );
    println!(
        "bytes on wire: json {json_bytes}, binary {bin_bytes} => -{:.1}% (floor -{:.0}%)",
        bytes_cut * 100.0,
        BYTES_FLOOR * 100.0
    );
    let mut failed = false;
    if cpu_cut < CPU_FLOOR {
        matrix_core::emit_diag(
            "bench",
            "codec_cpu_floor_missed",
            &[
                ("cut", &format!("{cpu_cut:.4}")),
                ("floor", &format!("{CPU_FLOOR:.4}")),
            ],
        );
        failed = true;
    }
    if bytes_cut < BYTES_FLOOR {
        matrix_core::emit_diag(
            "bench",
            "codec_bytes_floor_missed",
            &[
                ("cut", &format!("{bytes_cut:.4}")),
                ("floor", &format!("{BYTES_FLOOR:.4}")),
            ],
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("binary codec clears both floors");
}
