//! E9 — the routing-lookup comparison behind §3.2.4.
//!
//! The paper chose precomputed overlap tables (O(1) per packet) over
//! DHT-style lookups ("usually need O(log N) lookups for N Matrix
//! servers"). This bench measures, per fleet size: the overlap-table
//! lookup, the brute-force Equation-1 scan (O(N)), and the number of
//! Chord hops a DHT would take (each hop being a network round trip —
//! milliseconds, not nanoseconds, in deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_bench::{grid, probes};
use matrix_core::baseline::DhtDirectory;
use matrix_geometry::{build_overlap, consistency_set, Metric, PartitionIndex, ServerId};
use std::hint::black_box;

fn bench_route_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_lookup");
    for &n in &[4u32, 16, 64, 256] {
        let map = grid(n);
        let overlap = build_overlap(&map, 100.0, Metric::Euclidean);
        let points = probes(map.world(), 1024);

        // O(1): the Matrix overlap-table path.
        group.bench_with_input(BenchmarkId::new("overlap_table", n), &n, |b, _| {
            let owner = ServerId(1);
            let table = overlap.table_for(owner).unwrap();
            let mine = map.range_of(owner).unwrap();
            let local: Vec<_> = points.iter().map(|p| mine.clamp(*p)).collect();
            let mut i = 0;
            b.iter(|| {
                let p = local[i % local.len()];
                i += 1;
                black_box(table.lookup(p))
            });
        });

        // O(N): brute-force Equation 1 over the directory.
        group.bench_with_input(BenchmarkId::new("exact_scan", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let p = points[i % points.len()];
                i += 1;
                let owner = map.owner_of(p).unwrap();
                black_box(consistency_set(&map, p, owner, 100.0, Metric::Euclidean))
            });
        });

        // O(1) directory lookups via the grid index (owner resolution for
        // handoffs and non-proximal packets).
        group.bench_with_input(BenchmarkId::new("grid_index_owner", n), &n, |b, _| {
            let index = PartitionIndex::build_auto(&map);
            let mut i = 0;
            b.iter(|| {
                let p = points[i % points.len()];
                i += 1;
                black_box(index.owner_of(p))
            });
        });

        // O(N) linear owner scan, for comparison with the index.
        group.bench_with_input(BenchmarkId::new("linear_owner", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let p = points[i % points.len()];
                i += 1;
                black_box(map.owner_of(p))
            });
        });

        // O(log N) network hops: Chord greedy routing (hop count; each
        // hop is a full network RTT in deployment).
        group.bench_with_input(BenchmarkId::new("dht_lookup", n), &n, |b, _| {
            let servers: Vec<ServerId> = (1..=n).map(ServerId).collect();
            let dht = DhtDirectory::new(&servers, 50.0);
            let mut i = 0;
            b.iter(|| {
                let p = points[i % points.len()];
                i += 1;
                black_box(dht.lookup(ServerId(1), p))
            });
        });
    }
    group.finish();

    // Report mean DHT hop counts once (the latency-relevant number).
    let world = grid(4).world();
    println!("\nmean DHT hops (× one network RTT each in deployment):");
    for &n in &[4u32, 16, 64, 256] {
        let servers: Vec<ServerId> = (1..=n).map(ServerId).collect();
        let dht = DhtDirectory::new(&servers, 50.0);
        println!("  {n:>4} servers: {:.2} hops", dht.mean_hops(world, 256));
    }
}

criterion_group!(benches, bench_route_lookup);
criterion_main!(benches);
