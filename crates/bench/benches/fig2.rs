//! E1/E2 — the full Figure-2 scenario as a benchmark.
//!
//! One iteration replays the entire 300-simulated-second hotspot
//! experiment (600-client crowd, splits, drains, reclaims, second
//! hotspot). Asserting the paper-shape invariants on every iteration
//! makes this a regression bench: both the runtime *and* the result are
//! pinned.

use criterion::{criterion_group, criterion_main, Criterion};
use matrix_experiments::fig2;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("full_scenario", |b| {
        b.iter(|| {
            let report = fig2::run(42);
            // Paper-shape invariants (Figure 2): a handful of servers,
            // splits and reclaims both happen, and the fleet collapses
            // back afterwards.
            assert!(
                report.peak_servers >= 3 && report.peak_servers <= 6,
                "{}",
                report.peak_servers
            );
            assert!(report.splits >= 3);
            assert!(report.reclaims >= 3);
            assert!(report.servers_in_use.last_value().unwrap_or(99.0) <= 2.0);
            black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
