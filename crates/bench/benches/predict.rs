//! E15 bench — dead reckoning: bytes-on-wire and flush CPU of the
//! predictive pipeline vs the sampled-rings pipeline.
//!
//! PR 4's rings graded the periphery's update *rate*; prediction grades
//! its *accuracy* — receivers extrapolate each entity from its last
//! transmitted position + velocity, and the sender transmits only when
//! that extrapolation would drift past the ring's error budget. This
//! bench replays a racer-style workload (every client on a straight
//! constant-velocity run, bouncing at the walls — the motion-model best
//! case) through three `GameServerNode` configurations:
//!
//! * `binary` — single vision radius, no tiers, no prediction (the
//!   PR 2 pipeline);
//! * `rings` — the recommended sampled tiers, 1 / 1-in-2 / 1-in-4
//!   (the PR 4 pipeline, E14's winning row);
//! * `predict` — the same ring boundaries at every-event rates with
//!   dead reckoning on (near budget pinned 0, outer budgets 4% of each
//!   ring radius).
//!
//! Identical inputs (same seeded grid of racers, same movement trace)
//! drive all three; the difference in `GameStats::batch_bytes` is the
//! wire saving. Recorded on the PR-5 machine, 400 racers × 40 steps:
//!
//! | pipeline | batch MB | vs binary | vs rings | suppressed | items     |
//! |----------|---------:|----------:|---------:|-----------:|----------:|
//! | binary   |     70.8 |         — |        — |          — | 1_018_596 |
//! | rings    |     31.0 |    -56.2% |        — |          — |   445_769 |
//! | predict  |     20.9 |    -70.5% |   -32.7% |    740_372 |   278_224 |
//!
//! On straight-line traffic ~73% of the every-event outer-ring volume
//! is suppressed — the receivers' extrapolations absorb whole legs of
//! every run at a mean absorbed error of 0.06 world units (max 7.5,
//! exactly the far ring's budget) — landing **-32.7%** under the
//! *sampled* rings baseline, clear of the ≥ 30% target the
//! `matrix-experiments predict` verdict enforces (E15's own racer
//! replay measures -31.5% at full scale). The criterion group times
//! the full replay per configuration: 574 ms (binary) vs 319 ms
//! (rings) vs 324 ms (predict) per replay on the recording machine —
//! the motion bookkeeping costs ~2% over rings while the bytes drop by
//! another third, because suppressed items never reach the queue, rank
//! or encode stages at all.
//!
//! Run with `cargo bench -p matrix-bench --bench predict`; the byte
//! comparison prints before the timing group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_core::{ClientId, ClientToGame, GameServerConfig, GameServerNode, GameStats, ServerId};
use matrix_games::GameSpec;
use matrix_geometry::{Point, Rect};
use matrix_sim::{SimDuration, SimRng, SimTime};

const WORLD: f64 = 600.0;
const CLIENTS: usize = 400;
const STEPS: usize = 40;
/// Racer speed × update interval: how far each client travels per step.
const STEP_DIST: f64 = 12.0;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD, WORLD)
}

/// Racers on straight constant-velocity runs, bouncing off the walls:
/// pre-generated so every configuration replays byte-for-byte identical
/// inputs.
fn movement_trace(rng: &mut SimRng) -> (Vec<Point>, Vec<Vec<(u64, Point)>>) {
    let mut pos: Vec<Point> = (0..CLIENTS)
        .map(|_| Point::new(rng.uniform(0.0, WORLD), rng.uniform(0.0, WORLD)))
        .collect();
    let mut vel: Vec<(f64, f64)> = (0..CLIENTS)
        .map(|_| {
            let angle = rng.uniform(0.0, std::f64::consts::TAU);
            (STEP_DIST * angle.cos(), STEP_DIST * angle.sin())
        })
        .collect();
    let spawn = pos.clone();
    let trace = (0..STEPS)
        .map(|_| {
            (0..CLIENTS as u64)
                .map(|id| {
                    let i = id as usize;
                    let (mut vx, mut vy) = vel[i];
                    let mut next = Point::new(pos[i].x + vx, pos[i].y + vy);
                    // Bounce: reflect at the walls, keeping speed.
                    if next.x < 0.0 || next.x > WORLD {
                        vx = -vx;
                        next = Point::new(pos[i].x + vx, next.y);
                    }
                    if next.y < 0.0 || next.y > WORLD {
                        vy = -vy;
                        next = Point::new(next.x, pos[i].y + vy);
                    }
                    vel[i] = (vx, vy);
                    pos[i] = next;
                    (id, next)
                })
                .collect()
        })
        .collect();
    (spawn, trace)
}

/// The three dissemination configurations under test.
fn configs() -> [(&'static str, GameServerConfig); 3] {
    let spec = GameSpec::racer();
    let base = GameServerConfig {
        emit_updates: true,
        batch_interval: SimDuration::from_millis(0),
        max_updates_per_flush: 0,
        client_budget_bytes: 0,
        vision_radius: spec.vision_radius,
        ..GameServerConfig::default()
    };
    let (radii, rates) = spec.ring_tiers();
    let mut rings = base;
    rings.set_rings(&radii, &rates);
    let mut predict = base;
    predict.set_rings(&radii, &vec![1; radii.len()]);
    predict.set_error_budgets(&spec.recommended_error_budgets());
    predict.predict = true;
    [("binary", base), ("rings", rings), ("predict", predict)]
}

/// Replays the trace through one configuration, returning the node's
/// dissemination counters.
fn run_workload(cfg: GameServerConfig, spawn: &[Point], trace: &[Vec<(u64, Point)>]) -> GameStats {
    let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
    node.register(world(), GameSpec::racer().radius);
    for (i, &pos) in spawn.iter().enumerate() {
        node.on_client(
            SimTime::ZERO,
            ClientId(i as u64 + 1),
            ClientToGame::Join {
                pos,
                state_bytes: 0,
            },
        );
    }
    let mut now = SimTime::ZERO;
    for round in trace {
        now += SimDuration::from_millis(100);
        for &(id, pos) in round {
            node.on_client(now, ClientId(id + 1), ClientToGame::Move { pos });
        }
    }
    *node.stats()
}

fn print_byte_comparison(spawn: &[Point], trace: &[Vec<(u64, Point)>]) {
    let mut binary_bytes = 0u64;
    let mut rings_bytes = 0u64;
    println!("predict bench — racers: {CLIENTS} clients, {STEPS} steps, {STEP_DIST} u/step");
    for (name, cfg) in configs() {
        let stats = run_workload(cfg, spawn, trace);
        match name {
            "binary" => binary_bytes = stats.batch_bytes,
            "rings" => rings_bytes = stats.batch_bytes,
            _ => {}
        }
        let vs = |base: u64| {
            if base == 0 {
                0.0
            } else {
                100.0 * (1.0 - stats.batch_bytes as f64 / base as f64)
            }
        };
        let mean_err = if stats.updates_suppressed == 0 {
            0.0
        } else {
            stats.pred_error_sum / stats.updates_suppressed as f64
        };
        println!(
            "  {name:<8} batch_bytes={:>11} ({:5.1}% vs binary, {:5.1}% vs rings)  \
             items={:>8}  suppressed={:>8}  mean_err={mean_err:.2}u  max_err={:.2}u",
            stats.batch_bytes,
            vs(binary_bytes),
            vs(rings_bytes),
            stats.keyframe_items + stats.delta_items,
            stats.updates_suppressed,
            stats.pred_error_max,
        );
    }
}

fn bench_predict(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(0xACE5);
    let (spawn, trace) = movement_trace(&mut rng);

    // Bytes-on-wire comparison (the acceptance number) prints once.
    print_byte_comparison(&spawn, &trace);

    // Flush CPU: one full workload replay per configuration, motion
    // bookkeeping and suppression included.
    let mut group = c.benchmark_group("predict_flush_cpu");
    group.sample_size(10);
    for (name, cfg) in configs() {
        group.bench_with_input(BenchmarkId::new("workload", name), &cfg, |b, cfg| {
            b.iter(|| run_workload(*cfg, &spawn, &trace));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
