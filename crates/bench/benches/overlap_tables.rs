//! E5 — coordinator overlap-table recomputation cost.
//!
//! §3.2.4: the MC "recomputes and redistributes overlap regions every
//! time a new Matrix server is used or whenever an existing Matrix server
//! is reclaimed". This bench prices one recomputation as a function of
//! fleet size and radius, demonstrating why taking the MC off the
//! forwarding path keeps it from becoming a bottleneck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_bench::grid;
use matrix_geometry::{build_overlap, Metric};
use std::hint::black_box;

fn bench_overlap_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_tables");
    for &n in &[4u32, 16, 64, 256] {
        let map = grid(n);
        group.bench_with_input(BenchmarkId::new("build_all", n), &n, |b, _| {
            b.iter(|| black_box(build_overlap(&map, 100.0, Metric::Euclidean)))
        });
    }
    for &radius in &[25.0f64, 100.0, 400.0] {
        let map = grid(64);
        group.bench_with_input(
            BenchmarkId::new("build_64_radius", radius as u64),
            &radius,
            |b, &r| b.iter(|| black_box(build_overlap(&map, r, Metric::Euclidean))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overlap_build);
criterion_main!(benches);
