//! E14 — adaptive dissemination: bytes-on-wire and flush CPU of the
//! per-client delta/priority pipeline vs the absolute-origin baseline.
//!
//! PR 1 made fan-out *cheap to compute*; the v2 dissemination pipeline
//! makes it *cheap to ship*. This bench replays a dense-crowd workload
//! (the E12 shape: one hotspot crowd, every client moving every flush
//! interval) through three `GameServerNode` configurations that differ
//! only in the dissemination layer:
//!
//! * `absolute` — the v1 wire format: every batch item carries absolute
//!   origins, no per-client caps (`keyframe_every = 0`, limits off);
//! * `delta` — per-client delta compression alone (keyframe interval 8,
//!   limits off);
//! * `pipeline` — delta compression plus priority-aware rate limiting at
//!   the bzflag preset's `max_updates_per_flush = 64`.
//!
//! Identical inputs (same seeded crowd, same movement trace) drive all
//! three; the difference in `GameStats::batch_bytes` is the wire saving.
//! Recorded on the PR-2 machine, 800 hotspot clients × 160 movers/flush
//! × 30 flushes:
//!
//! | encoding  | batch MB | vs absolute | items shipped | delta share |
//! |-----------|---------:|------------:|--------------:|------------:|
//! | absolute  |    128.5 |           — |     2_460_129 |           — |
//! | delta     |     99.0 |      -22.9% |     2_460_129 |       99.9% |
//! | pipeline  |     59.4 |      -53.7% |     1_470_717 |       99.8% |
//!
//! Keyframes appear only on stream starts and the periodic interval
//! (delta share ≈ 99.8%), and the acceptance target — ≥ 40%
//! `UpdateBatch` bytes-on-wire reduction on the dense-crowd workload —
//! is met by the pipeline with room to spare (the delta encoding alone
//! contributes ~23%, the relevance-ordered rate limiter the rest by
//! deferring ~40% of peak-crowd items to later flushes). The criterion
//! groups below time the flush-side CPU of the same three
//! configurations (grid query, batching, priority sort and encoding
//! included): 265 ms (absolute) vs 291 ms (delta) vs 281 ms (pipeline)
//! per full replay on the recording machine, i.e. ~108–118 ns per
//! fanned item — the pipeline costs ~6% flush CPU while the bytes
//! halve.
//!
//! Run with `cargo bench -p matrix-bench --bench delta`; the byte
//! comparison prints before the timing groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_core::{ClientId, ClientToGame, GameServerConfig, GameServerNode, GameStats, ServerId};
use matrix_geometry::{Point, Rect};
use matrix_sim::{SimDuration, SimRng, SimTime};

const WORLD: f64 = 800.0;
/// bzflag's radius of visibility (every crowd member sees the hotspot).
const RADIUS: f64 = 100.0;
/// Crowd spread around the hotspot, as in E12 (`radius * 0.5`).
const SPREAD: f64 = 50.0;
const CLIENTS: usize = 800;
const MOVERS_PER_FLUSH: usize = 160;
const FLUSHES: usize = 30;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD, WORLD)
}

/// The dense-crowd placement: gaussian pack around the E12 hotspot.
fn crowd(n: usize, rng: &mut SimRng) -> Vec<Point> {
    let center = Point::new(WORLD * 0.6, WORLD * 0.5);
    (0..n)
        .map(|_| {
            Point::new(
                rng.normal(center.x, SPREAD).clamp(0.0, WORLD),
                rng.normal(center.y, SPREAD).clamp(0.0, WORLD),
            )
        })
        .collect()
}

/// Pre-generated movement trace so every configuration replays byte-for-
/// byte identical inputs: per flush round, `MOVERS_PER_FLUSH` clients
/// take a small random-walk step.
fn movement_trace(positions: &[Point], rng: &mut SimRng) -> Vec<Vec<(u64, Point)>> {
    let mut current = positions.to_vec();
    (0..FLUSHES)
        .map(|_| {
            (0..MOVERS_PER_FLUSH)
                .map(|_| {
                    let id = rng.uniform_u64(0, current.len() as u64);
                    let p = current[id as usize];
                    let next = Point::new(
                        (p.x + rng.uniform(-2.0, 2.0)).clamp(0.0, WORLD),
                        (p.y + rng.uniform(-2.0, 2.0)).clamp(0.0, WORLD),
                    );
                    current[id as usize] = next;
                    (id, next)
                })
                .collect()
        })
        .collect()
}

/// The three dissemination configurations under test.
fn configs() -> [(&'static str, GameServerConfig); 3] {
    let base = GameServerConfig {
        emit_updates: true,
        batch_interval: SimDuration::from_millis(50),
        ..GameServerConfig::default()
    };
    [
        (
            "absolute",
            GameServerConfig {
                keyframe_every: 0,
                max_updates_per_flush: 0,
                client_budget_bytes: 0,
                ..base
            },
        ),
        (
            "delta",
            GameServerConfig {
                keyframe_every: 8,
                max_updates_per_flush: 0,
                client_budget_bytes: 0,
                ..base
            },
        ),
        (
            "pipeline",
            GameServerConfig {
                keyframe_every: 8,
                max_updates_per_flush: 64,
                client_budget_bytes: 0,
                ..base
            },
        ),
    ]
}

/// Replays the workload through one configuration, returning the node's
/// dissemination counters.
fn run_workload(
    cfg: GameServerConfig,
    positions: &[Point],
    trace: &[Vec<(u64, Point)>],
) -> GameStats {
    let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
    node.register(world(), RADIUS);
    for (i, &pos) in positions.iter().enumerate() {
        node.on_client(
            SimTime::ZERO,
            ClientId(i as u64),
            ClientToGame::Join {
                pos,
                state_bytes: 0,
            },
        );
    }
    let mut now = SimTime::ZERO;
    for round in trace {
        for &(id, pos) in round {
            node.on_client(now, ClientId(id), ClientToGame::Move { pos });
        }
        now += SimDuration::from_millis(50);
        node.on_tick(now, 0.0);
    }
    *node.stats()
}

fn print_byte_comparison(positions: &[Point], trace: &[Vec<(u64, Point)>]) {
    let mut absolute_bytes = 0u64;
    println!("delta bench — dense crowd: {CLIENTS} clients, {MOVERS_PER_FLUSH} movers/flush, {FLUSHES} flushes");
    for (name, cfg) in configs() {
        let stats = run_workload(cfg, positions, trace);
        if name == "absolute" {
            absolute_bytes = stats.batch_bytes;
        }
        let reduction = if absolute_bytes == 0 {
            0.0
        } else {
            100.0 * (1.0 - stats.batch_bytes as f64 / absolute_bytes as f64)
        };
        let items = stats.keyframe_items + stats.delta_items;
        let delta_share = if items == 0 {
            0.0
        } else {
            100.0 * stats.delta_items as f64 / items as f64
        };
        println!(
            "  {name:<9} batch_bytes={:>11} ({reduction:5.1}% vs absolute)  items={items:>8}  \
             delta%={delta_share:5.1}  rate_limited={}  saved={}",
            stats.batch_bytes, stats.updates_rate_limited, stats.delta_bytes_saved
        );
    }
}

fn bench_delta(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(0xDE17A);
    let positions = crowd(CLIENTS, &mut rng);
    let trace = movement_trace(&positions, &mut rng);

    // Bytes-on-wire comparison (the acceptance number) prints once.
    print_byte_comparison(&positions, &trace);

    // Flush CPU: one full workload replay per configuration. The replay
    // includes grid queries, batching, the priority sort and encoding —
    // the end-to-end flush-side cost a server actually pays.
    let mut group = c.benchmark_group("delta_flush_cpu");
    group.sample_size(10);
    for (name, cfg) in configs() {
        group.bench_with_input(BenchmarkId::new("workload", name), &cfg, |b, cfg| {
            b.iter(|| run_workload(*cfg, &positions, &trace));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
