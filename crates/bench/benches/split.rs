//! A1 (micro) — the cost of one split decision per strategy, and the
//! partition-map operations underneath the split/reclaim protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_bench::probes;
use matrix_geometry::{PartitionMap, Point, Rect, ServerId, SplitStrategy};
use std::hint::black_box;

fn bench_split_strategies(c: &mut Criterion) {
    let rect = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
    let clients: Vec<Point> = probes(rect, 600);
    let mut group = c.benchmark_group("split_strategy");
    for strategy in [
        SplitStrategy::SplitToLeft,
        SplitStrategy::LongestAxis,
        SplitStrategy::LoadAwareMedian,
    ] {
        group.bench_with_input(
            BenchmarkId::new("cut", strategy.to_string()),
            &strategy,
            |b, s| b.iter(|| black_box(s.split(&rect, &clients))),
        );
    }
    group.finish();
}

fn bench_partition_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_map");
    group.bench_function("split_reclaim_cycle", |b| {
        b.iter(|| {
            let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
            let mut map = PartitionMap::new(world, ServerId(1));
            for i in 2..=16u32 {
                map.split(
                    ServerId(i - 1),
                    ServerId(i),
                    &SplitStrategy::SplitToLeft,
                    &[],
                )
                .unwrap();
            }
            for i in (2..=16u32).rev() {
                map.reclaim(ServerId(i - 1), ServerId(i)).unwrap();
            }
            black_box(map)
        })
    });
    let map16 = matrix_bench::grid(16);
    let points = probes(map16.world(), 256);
    group.bench_function("owner_of_16", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = points[i % points.len()];
            i += 1;
            black_box(map16.owner_of(p))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_split_strategies, bench_partition_ops);
criterion_main!(benches);
