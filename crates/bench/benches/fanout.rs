//! E13 — per-event fan-out: linear client scan vs interest grid.
//!
//! Inside one game server, every event must find the co-located clients
//! whose area of interest contains it. The seed implementation scanned
//! all clients per event (O(n)); the `matrix-interest` spatial-hash grid
//! answers the same query in O(cells + matches). This bench measures one
//! fan-out query at 100/500/2000/8000 clients per server, under the two
//! placements that bracket reality:
//!
//! * `hotspot` — the whole crowd gaussian-packed around one point, the
//!   paper's flash-crowd shape. Events land in the crowd, so the match
//!   count is large for both paths; the grid's win is skipping nobody
//!   relevant while never touching the irrelevant tail.
//! * `uniform` — clients spread over the world. Matches are few; the
//!   linear scan still pays O(n) per event while the grid touches only
//!   the handful of cells under the query ball.
//!
//! Two baselines are kept honest on purpose: `linear_scan_btree`
//! reproduces the seed's real memory layout (`BTreeMap<ClientId,
//! ClientRecord>`), and `linear_scan_vec` is an idealized dense-vector
//! scan the seed never had.
//!
//! Acceptance target (ISSUE 1): grid ≥5× faster than the old linear
//! scan at 2000 clients, hotspot placement. Recorded on the PR-1
//! machine (ns/iter, hotspot):
//!
//! | n    | btree scan | vec scan | grid  | vs btree | vs vec |
//! |------|-----------:|---------:|------:|---------:|-------:|
//! | 100  |        217 |      111 |   194 |     1.1× |   0.6× |
//! | 500  |      1_098 |      538 |   282 |     3.9× |   1.9× |
//! | 2000 |      4_647 |    2_159 |   636 |   *7.3×* |   3.4× |
//! | 8000 |     18_303 |    8_607 | 1_618 |    11.3× |   5.3× |
//!
//! Uniform placement reaches 11–18× vs the btree scan; `grid_update`
//! (the incremental reposition cost the scan does not pay) stays flat at
//! ~65 ns regardless of n.
//!
//! PR 4 adds `interest_grid_autotuned`: the same query on a grid sized
//! by the density tuner's steady state (`AutoTunerConfig::cells_for`)
//! instead of the static 32. Recorded on the PR-4 machine (ns/iter,
//! hotspot): 195 → 111 at n=100 and 289 → 171 at n=500 (the tuner
//! coarsens a sparse grid, cutting empty-cell walks ~1.7×), converging
//! with the static resolution once the crowd justifies 32+ cells
//! (735 → 674 at 2000, parity at 8000).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_geometry::{Metric, Point, Rect};
use matrix_interest::{AutoTunerConfig, InterestGrid};
use matrix_sim::SimRng;
use std::collections::BTreeMap;
use std::hint::black_box;

const WORLD: f64 = 800.0;
/// The per-client AOI (vision) radius queried on fan-out. Narrower than
/// the consistency radius, as `GameServerConfig::vision_radius` allows.
const RADIUS: f64 = 50.0;
/// Hotspot crowd spread (σ): the crowd covers several AOI diameters,
/// like the paper's flash crowd spreading around a point of interest.
const SPREAD: f64 = 150.0;
const CELLS_PER_AXIS: u32 = 32;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD, WORLD)
}

/// Gaussian crowd around the Figure-2 hotspot.
fn hotspot_positions(n: usize, rng: &mut SimRng) -> Vec<Point> {
    let center = Point::new(WORLD * 0.6, WORLD * 0.5);
    (0..n)
        .map(|_| {
            Point::new(
                rng.normal(center.x, SPREAD).clamp(0.0, WORLD),
                rng.normal(center.y, SPREAD).clamp(0.0, WORLD),
            )
        })
        .collect()
}

/// Uniform spread over the world.
fn uniform_positions(n: usize, rng: &mut SimRng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.uniform(0.0, WORLD), rng.uniform(0.0, WORLD)))
        .collect()
}

/// Query origins: events come from the clients themselves.
fn origins(positions: &[Point]) -> Vec<Point> {
    positions.iter().copied().take(256).collect()
}

type Placer = fn(usize, &mut SimRng) -> Vec<Point>;

fn bench_fanout(c: &mut Criterion) {
    let placements: [(&str, Placer); 2] = [
        ("hotspot", hotspot_positions),
        ("uniform", uniform_positions),
    ];
    for (placement, make) in placements {
        let mut group = c.benchmark_group(format!("fanout_{placement}"));
        for &n in &[100usize, 500, 2000, 8000] {
            let mut rng = SimRng::seed_from_u64(0xBE7 + n as u64);
            let positions = make(n, &mut rng);
            let probes = origins(&positions);

            // The seed's actual path: `GameServerNode::fan_out` scanned
            // its `BTreeMap<ClientId, ClientRecord>` per event. This
            // baseline reproduces that memory layout faithfully.
            #[derive(Clone, Copy)]
            struct Record {
                pos: Point,
                _state_bytes: u64,
                _resolving: bool,
            }
            let clients: BTreeMap<u64, Record> = positions
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    (
                        k as u64,
                        Record {
                            pos: *p,
                            _state_bytes: 1024,
                            _resolving: false,
                        },
                    )
                })
                .collect();
            group.bench_with_input(BenchmarkId::new("linear_scan_btree", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let origin = probes[i % probes.len()];
                    i += 1;
                    let mut hits = 0u32;
                    for rec in clients.values() {
                        if rec.pos.distance_by(origin, Metric::Euclidean) <= RADIUS {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                });
            });

            // An idealized linear scan over a dense position vector — a
            // stronger baseline than the seed ever had (no tree walk),
            // kept for honesty about what the grid beats.
            group.bench_with_input(BenchmarkId::new("linear_scan_vec", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let origin = probes[i % probes.len()];
                    i += 1;
                    let mut hits = 0u32;
                    for p in &positions {
                        if p.distance_by(origin, Metric::Euclidean) <= RADIUS {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                });
            });

            // The interest-managed path.
            let mut grid: InterestGrid<u32> = InterestGrid::new(world(), CELLS_PER_AXIS);
            for (k, p) in positions.iter().enumerate() {
                grid.insert(k as u32, *p);
            }
            group.bench_with_input(BenchmarkId::new("interest_grid", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let origin = probes[i % probes.len()];
                    i += 1;
                    let mut hits = 0u32;
                    grid.query(origin, RADIUS, Metric::Euclidean, |_, _| hits += 1);
                    black_box(hits)
                });
            });

            // The same query on a grid whose resolution the density
            // auto-tuner would steady-state at for this population
            // (`AutoTunerConfig::cells_for`), instead of the static 32:
            // coarser for sparse crowds (fewer empty-cell walks), finer
            // for dense ones (fewer candidates per cell).
            let tuned_cells = AutoTunerConfig::enabled().cells_for(n);
            let mut tuned: InterestGrid<u32> = InterestGrid::new(world(), tuned_cells);
            for (k, p) in positions.iter().enumerate() {
                tuned.insert(k as u32, *p);
            }
            group.bench_with_input(
                BenchmarkId::new("interest_grid_autotuned", n),
                &n,
                |b, _| {
                    let mut i = 0;
                    b.iter(|| {
                        let origin = probes[i % probes.len()];
                        i += 1;
                        let mut hits = 0u32;
                        tuned.query(origin, RADIUS, Metric::Euclidean, |_, _| hits += 1);
                        black_box(hits)
                    });
                },
            );

            // Steady-state upkeep: the incremental reposition the grid
            // pays per client move (the scan pays nothing here — its
            // cost all sits on the query side).
            let mut moving = grid.clone();
            group.bench_with_input(BenchmarkId::new("grid_update", n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let k = (i % n) as u32;
                    let p = probes[i % probes.len()];
                    i += 1;
                    moving.update(k, Point::new(p.x, (p.y + 1.0) % WORLD));
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
