//! E13 — per-event fan-out: linear client scan vs interest grid.
//!
//! Inside one game server, every event must find the co-located clients
//! whose area of interest contains it. The seed implementation scanned
//! all clients per event (O(n)); the `matrix-interest` spatial-hash grid
//! answers the same query in O(cells + matches). This bench measures one
//! fan-out query at 100/500/2000/8000 clients per server, under the two
//! placements that bracket reality:
//!
//! * `hotspot` — the whole crowd gaussian-packed around one point, the
//!   paper's flash-crowd shape. Events land in the crowd, so the match
//!   count is large for both paths; the grid's win is skipping nobody
//!   relevant while never touching the irrelevant tail.
//! * `uniform` — clients spread over the world. Matches are few; the
//!   linear scan still pays O(n) per event while the grid touches only
//!   the handful of cells under the query ball.
//!
//! Two baselines are kept honest on purpose: `linear_scan_btree`
//! reproduces the seed's real memory layout (`BTreeMap<ClientId,
//! ClientRecord>`), and `linear_scan_vec` is an idealized dense-vector
//! scan the seed never had.
//!
//! Acceptance target (ISSUE 1): grid ≥5× faster than the old linear
//! scan at 2000 clients, hotspot placement. Recorded on the PR-1
//! machine (ns/iter, hotspot):
//!
//! | n    | btree scan | vec scan | grid  | vs btree | vs vec |
//! |------|-----------:|---------:|------:|---------:|-------:|
//! | 100  |        217 |      111 |   194 |     1.1× |   0.6× |
//! | 500  |      1_098 |      538 |   282 |     3.9× |   1.9× |
//! | 2000 |      4_647 |    2_159 |   636 |   *7.3×* |   3.4× |
//! | 8000 |     18_303 |    8_607 | 1_618 |    11.3× |   5.3× |
//!
//! Uniform placement reaches 11–18× vs the btree scan; `grid_update`
//! (the incremental reposition cost the scan does not pay) stays flat at
//! ~65 ns regardless of n.
//!
//! PR 4 adds `interest_grid_autotuned`: the same query on a grid sized
//! by the density tuner's steady state (`AutoTunerConfig::cells_for`)
//! instead of the static 32. Recorded on the PR-4 machine (ns/iter,
//! hotspot): 195 → 111 at n=100 and 289 → 171 at n=500 (the tuner
//! coarsens a sparse grid, cutting empty-cell walks ~1.7×), converging
//! with the static resolution once the crowd justifies 32+ cells
//! (735 → 674 at 2000, parity at 8000).
//!
//! PR 9 appends the **flush-workers scaling gate**: the sharded flush
//! engine's throughput at 1/2/4/8 workers on a dense hotspot crowd,
//! with a CI floor of ≥2.5× at 4 workers on hosts that have ≥ 4 cores
//! (bounded-overhead fallback below that), plus a free byte-identity
//! check that every worker count flushes the same item count.

use criterion::{criterion_group, BenchmarkId, Criterion};
use matrix_core::UpdateItem;
use matrix_geometry::{Metric, Point, Rect};
use matrix_interest::{
    AutoTunerConfig, DisseminationPipeline, FlushPolicy, InterestGrid, PipelineConfig,
    PredictorConfig, RingSet,
};
use matrix_sim::SimRng;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORLD: f64 = 800.0;
/// The per-client AOI (vision) radius queried on fan-out. Narrower than
/// the consistency radius, as `GameServerConfig::vision_radius` allows.
const RADIUS: f64 = 50.0;
/// Hotspot crowd spread (σ): the crowd covers several AOI diameters,
/// like the paper's flash crowd spreading around a point of interest.
const SPREAD: f64 = 150.0;
const CELLS_PER_AXIS: u32 = 32;

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, WORLD, WORLD)
}

/// Gaussian crowd around the Figure-2 hotspot.
fn hotspot_positions(n: usize, rng: &mut SimRng) -> Vec<Point> {
    let center = Point::new(WORLD * 0.6, WORLD * 0.5);
    (0..n)
        .map(|_| {
            Point::new(
                rng.normal(center.x, SPREAD).clamp(0.0, WORLD),
                rng.normal(center.y, SPREAD).clamp(0.0, WORLD),
            )
        })
        .collect()
}

/// Uniform spread over the world.
fn uniform_positions(n: usize, rng: &mut SimRng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.uniform(0.0, WORLD), rng.uniform(0.0, WORLD)))
        .collect()
}

/// Query origins: events come from the clients themselves.
fn origins(positions: &[Point]) -> Vec<Point> {
    positions.iter().copied().take(256).collect()
}

type Placer = fn(usize, &mut SimRng) -> Vec<Point>;

fn bench_fanout(c: &mut Criterion) {
    let placements: [(&str, Placer); 2] = [
        ("hotspot", hotspot_positions),
        ("uniform", uniform_positions),
    ];
    for (placement, make) in placements {
        let mut group = c.benchmark_group(format!("fanout_{placement}"));
        for &n in &[100usize, 500, 2000, 8000] {
            let mut rng = SimRng::seed_from_u64(0xBE7 + n as u64);
            let positions = make(n, &mut rng);
            let probes = origins(&positions);

            // The seed's actual path: `GameServerNode::fan_out` scanned
            // its `BTreeMap<ClientId, ClientRecord>` per event. This
            // baseline reproduces that memory layout faithfully.
            #[derive(Clone, Copy)]
            struct Record {
                pos: Point,
                _state_bytes: u64,
                _resolving: bool,
            }
            let clients: BTreeMap<u64, Record> = positions
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    (
                        k as u64,
                        Record {
                            pos: *p,
                            _state_bytes: 1024,
                            _resolving: false,
                        },
                    )
                })
                .collect();
            group.bench_with_input(BenchmarkId::new("linear_scan_btree", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let origin = probes[i % probes.len()];
                    i += 1;
                    let mut hits = 0u32;
                    for rec in clients.values() {
                        if rec.pos.distance_by(origin, Metric::Euclidean) <= RADIUS {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                });
            });

            // An idealized linear scan over a dense position vector — a
            // stronger baseline than the seed ever had (no tree walk),
            // kept for honesty about what the grid beats.
            group.bench_with_input(BenchmarkId::new("linear_scan_vec", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let origin = probes[i % probes.len()];
                    i += 1;
                    let mut hits = 0u32;
                    for p in &positions {
                        if p.distance_by(origin, Metric::Euclidean) <= RADIUS {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                });
            });

            // The interest-managed path.
            let mut grid: InterestGrid<u32> = InterestGrid::new(world(), CELLS_PER_AXIS);
            for (k, p) in positions.iter().enumerate() {
                grid.insert(k as u32, *p);
            }
            group.bench_with_input(BenchmarkId::new("interest_grid", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let origin = probes[i % probes.len()];
                    i += 1;
                    let mut hits = 0u32;
                    grid.query(origin, RADIUS, Metric::Euclidean, |_, _| hits += 1);
                    black_box(hits)
                });
            });

            // The same query on a grid whose resolution the density
            // auto-tuner would steady-state at for this population
            // (`AutoTunerConfig::cells_for`), instead of the static 32:
            // coarser for sparse crowds (fewer empty-cell walks), finer
            // for dense ones (fewer candidates per cell).
            let tuned_cells = AutoTunerConfig::enabled().cells_for(n);
            let mut tuned: InterestGrid<u32> = InterestGrid::new(world(), tuned_cells);
            for (k, p) in positions.iter().enumerate() {
                tuned.insert(k as u32, *p);
            }
            group.bench_with_input(
                BenchmarkId::new("interest_grid_autotuned", n),
                &n,
                |b, _| {
                    let mut i = 0;
                    b.iter(|| {
                        let origin = probes[i % probes.len()];
                        i += 1;
                        let mut hits = 0u32;
                        tuned.query(origin, RADIUS, Metric::Euclidean, |_, _| hits += 1);
                        black_box(hits)
                    });
                },
            );

            // Steady-state upkeep: the incremental reposition the grid
            // pays per client move (the scan pays nothing here — its
            // cost all sits on the query side).
            let mut moving = grid.clone();
            group.bench_with_input(BenchmarkId::new("grid_update", n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let k = (i % n) as u32;
                    let p = probes[i % probes.len()];
                    i += 1;
                    moving.update(k, Point::new(p.x, (p.y + 1.0) % WORLD));
                });
            });
        }
        group.finish();
    }
}

// --- flush-workers scaling gate (ISSUE 9) --------------------------------
//
// The sharded flush engine claims near-linear multi-core scaling of the
// per-receiver stages (policy ranking + delta encoding). This section
// measures flush throughput on a dense hotspot crowd at 1/2/4/8 workers
// and **exits non-zero** when 4 workers deliver less than 2.5× the
// single-worker throughput — but only on hosts that actually have ≥ 4
// cores. On smaller hosts the speedup is physically unobservable, so
// the gate degrades to a bounded-overhead check: sharding plus real
// threads must not cost more than `OVERHEAD_CEIL`× sequential time.
// Either way the byte-identity invariant is asserted for free: every
// worker count must flush the exact same item count.

/// Dense-crowd population for the scaling rows.
const FLUSH_CLIENTS: usize = 2000;
/// Events disseminated (untimed) between timed flushes.
const EVENTS_PER_CYCLE: usize = 256;
/// Timed flush cycles per round.
const CYCLES: usize = 24;
/// Min-of-N rounds per worker count (noise filter).
const SCALE_ROUNDS: usize = 4;
/// The CI floor: 4-worker flush throughput ≥ 2.5× single-worker.
const SCALE_FLOOR_AT_4: f64 = 2.5;
/// Fallback ceiling on hosts with < 4 cores: parallel flush at 4
/// workers may not take more than 3× the sequential wall time (thread
/// spawn/join overhead bounded, no pathological contention).
const OVERHEAD_CEIL: f64 = 3.0;

/// One round: disseminate a burst (untimed, stages 1–3 are sequential
/// by design), then time `flush` — the sharded stages 4–5. Returns the
/// accumulated flush wall time and the total items flushed.
fn run_flush_round(workers: u32, positions: &[Point]) -> (Duration, u64) {
    let rings = RingSet::from_tiers(&[40.0, 80.0, 150.0], &[1, 2, 4]);
    let cfg = PipelineConfig {
        metric: Metric::Euclidean,
        policy: FlushPolicy {
            max_items: 32,
            ..FlushPolicy::unlimited()
        },
        keyframe_every: 8,
        origin_quantum: 0.0,
        autotune: AutoTunerConfig::default(),
        predict: PredictorConfig::default(),
        position_only_ring: 2,
        telemetry: false,
    };
    let mut p: DisseminationPipeline<u64, UpdateItem> =
        DisseminationPipeline::new(world(), CELLS_PER_AXIS, rings, cfg).with_shards(workers);
    p.set_parallel_flush(workers > 1);
    for (k, pos) in positions.iter().enumerate() {
        p.subscribe(k as u64, *pos);
    }
    let mut flush_time = Duration::ZERO;
    let mut items = 0u64;
    let mut now = 0.0f64;
    for cycle in 0..CYCLES {
        for e in 0..EVENTS_PER_CYCLE {
            let k = (cycle * EVENTS_PER_CYCLE + e * 7) % FLUSH_CLIENTS;
            let origin = positions[k];
            p.disseminate(
                origin,
                origin,
                k as u64,
                now,
                true,
                Some(k as u64),
                true,
                |ring, (vx, vy)| UpdateItem {
                    origin,
                    payload_bytes: 24,
                    entity: k as u64,
                    ring,
                    vx,
                    vy,
                    trace: None,
                },
            );
            now += 0.001;
        }
        let t0 = Instant::now();
        let outcome = p.flush(|k: u64| Some(positions[k as usize]));
        flush_time += t0.elapsed();
        items += outcome
            .batches
            .iter()
            .map(|b| b.items.len() as u64)
            .sum::<u64>();
        black_box(&outcome);
    }
    (flush_time, items)
}

fn flush_scaling_gate() {
    let mut rng = SimRng::seed_from_u64(0xF1005);
    let positions = hotspot_positions(FLUSH_CLIENTS, &mut rng);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("flush-workers scaling: dense crowd, {FLUSH_CLIENTS} clients, {cores} core(s)");

    let mut best: BTreeMap<u32, Duration> = BTreeMap::new();
    let mut flushed: BTreeMap<u32, u64> = BTreeMap::new();
    for _ in 0..SCALE_ROUNDS {
        for &w in &[1u32, 2, 4, 8] {
            let (t, items) = run_flush_round(w, &positions);
            let slot = best.entry(w).or_insert(Duration::MAX);
            *slot = (*slot).min(t);
            if let Some(prev) = flushed.insert(w, items) {
                assert_eq!(prev, items, "flush output drifted between rounds");
            }
        }
    }
    // Byte-identity side check: any worker count flushes the same items.
    let base_items = flushed[&1];
    for (&w, &items) in &flushed {
        assert_eq!(
            items, base_items,
            "{w} workers flushed {items} items, sequential flushed {base_items}"
        );
    }

    let t1 = best[&1].as_secs_f64();
    for (&w, t) in &best {
        let secs = t.as_secs_f64();
        println!(
            "  workers {w}: flush {:>8.3} ms   {:>12.0} items/s   {:.2}x vs 1",
            secs * 1e3,
            base_items as f64 / secs,
            t1 / secs
        );
    }
    let speedup4 = t1 / best[&4].as_secs_f64();
    if cores >= 4 {
        if speedup4 < SCALE_FLOOR_AT_4 {
            matrix_core::emit_diag(
                "bench",
                "flush_scaling_floor_missed",
                &[
                    ("speedup_at_4", &format!("{speedup4:.3}")),
                    ("floor", &format!("{SCALE_FLOOR_AT_4:.1}")),
                ],
            );
            std::process::exit(1);
        }
        println!("flush scaling at 4 workers: {speedup4:.2}x >= {SCALE_FLOOR_AT_4:.1}x floor");
    } else {
        println!(
            "flush scaling floor skipped: {cores} core(s) < 4 — \
             checking bounded overhead instead"
        );
        let ratio = best[&4].as_secs_f64() / t1;
        if ratio > OVERHEAD_CEIL {
            matrix_core::emit_diag(
                "bench",
                "flush_parallel_overhead_exceeded",
                &[
                    ("ratio", &format!("{ratio:.3}")),
                    ("ceil", &format!("{OVERHEAD_CEIL:.1}")),
                ],
            );
            std::process::exit(1);
        }
        println!(
            "parallel flush overhead at 4 workers: {ratio:.2}x <= {OVERHEAD_CEIL:.1}x ceiling"
        );
    }
}

criterion_group!(benches, bench_fanout);

fn main() {
    benches();
    flush_scaling_gate();
}
