//! E3 — Matrix vs static partitioning, benchmarked per game.
//!
//! One iteration runs a shortened flash-crowd scenario under each system
//! and asserts the paper's qualitative outcome: the static deployment
//! saturates (drops work) while Matrix recruits servers and does not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix_experiments::{Cluster, ClusterConfig};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_sim::SimTime;
use std::hint::black_box;

fn flash(spec: &GameSpec) -> WorkloadSchedule {
    WorkloadSchedule::flash_crowd(spec, 100, 600, SimTime::from_secs(15))
}

fn bench_versus(c: &mut Criterion) {
    let mut group = c.benchmark_group("versus");
    group.sample_size(10);
    for spec in GameSpec::all() {
        group.bench_with_input(BenchmarkId::new("matrix", &spec.name), &spec, |b, spec| {
            b.iter(|| {
                let mut cfg = ClusterConfig::adaptive(spec.clone());
                cfg.seed = 42;
                let report = Cluster::new(cfg, flash(spec)).run();
                assert!(report.splits >= 1, "{}: Matrix must adapt", spec.name);
                assert_eq!(
                    report.dropped_work, 0.0,
                    "{}: Matrix must not drop",
                    spec.name
                );
                black_box(report)
            })
        });
        group.bench_with_input(BenchmarkId::new("static2", &spec.name), &spec, |b, spec| {
            b.iter(|| {
                let mut cfg = ClusterConfig::static_partition(spec.clone(), 2);
                cfg.seed = 42;
                let report = Cluster::new(cfg, flash(spec)).run();
                assert_eq!(report.splits, 0);
                assert!(
                    report.dropped_work > 0.0,
                    "{}: the static deployment must saturate",
                    spec.name
                );
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_versus);
criterion_main!(benches);
