//! Telemetry overhead gate (ISSUE 6, extended by ISSUE 10): the
//! instrumented hot path must cost at most 2% more flush CPU than the
//! telemetry-off build, and sampled causal tracing (1/64) at most 5%.
//!
//! With `GameServerConfig::telemetry` off, the spans/histograms are
//! no-op sinks — one branch, zero clock reads. This bench proves that
//! claim on the real dissemination hot path: a dense hotspot crowd
//! (2000 clients on one server) moving every tick, with batching and
//! the full pipeline (query → tier → predict → policy → delta) flushing
//! on the tick cadence. It runs the identical workload with telemetry
//! off, telemetry on, and telemetry on + trace sampling in rotating
//! rounds, takes the best round of each (the usual min-of-N noise
//! filter), and **exits non-zero** when `(arm - off) / off` exceeds the
//! arm's budget — so CI fails the build on an overhead regression, not
//! a human reading a report.
//!
//! Pass `--flush-workers N` to run the whole gate on the sharded flush
//! path (CI runs 1 and 4): the budgets must hold at any worker count.
//!
//! Not a criterion bench on purpose: the verdict needs a process exit
//! code, and the arms must interleave in one process to share
//! thermal/cache conditions.

use matrix_core::{ClientId, ClientToGame, GameServerConfig, GameServerNode};
use matrix_geometry::{Point, Rect, ServerId};
use matrix_sim::{SimRng, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORLD: f64 = 800.0;
const RADIUS: f64 = 100.0;
/// Hotspot crowd spread (σ), same shape as the fanout bench.
const SPREAD: f64 = 150.0;
const CLIENTS: usize = 2000;
const TICKS: usize = 20;
/// Rounds always run, even on a quiet machine.
const MIN_ROUNDS: usize = 4;
/// Extra rounds allowed before a breach is final: scheduler noise on a
/// busy host inflates single rounds by more than the budget, and
/// min-of-N only converges to the true floor with enough N. A real
/// regression stays over budget no matter how many rounds run.
const MAX_ROUNDS: usize = 12;
/// The hard budget: telemetry-on flush CPU within 2% of telemetry-off.
const BUDGET: f64 = 0.02;
/// The tracing budget: telemetry on + 1/64 trace sampling within 5%.
const TRACE_BUDGET: f64 = 0.05;
/// The sample rate the tracing arm runs (and E16 declares).
const TRACE_SAMPLE_RATE: u32 = 64;

fn config(telemetry: bool, trace_sample_rate: u32, flush_workers: u32) -> GameServerConfig {
    GameServerConfig {
        telemetry,
        trace_sample_rate,
        flush_workers,
        emit_updates: true,
        ..GameServerConfig::default()
    }
}

fn hotspot_positions(n: usize) -> Vec<Point> {
    let mut rng = SimRng::seed_from_u64(0x7E1E);
    let center = Point::new(WORLD * 0.6, WORLD * 0.5);
    (0..n)
        .map(|_| {
            Point::new(
                rng.normal(center.x, SPREAD).clamp(0.0, WORLD),
                rng.normal(center.y, SPREAD).clamp(0.0, WORLD),
            )
        })
        .collect()
}

/// One timed round: every client moves each tick, the server ticks (and
/// flushes) after. Join/build cost stays outside the timed section.
fn run_round(
    telemetry: bool,
    trace_sample_rate: u32,
    flush_workers: u32,
    positions: &[Point],
) -> Duration {
    let world = Rect::from_coords(0.0, 0.0, WORLD, WORLD);
    let cfg = config(telemetry, trace_sample_rate, flush_workers);
    let tick = cfg.tick;
    let mut game = GameServerNode::new(ServerId(1), cfg);
    game.register(world, RADIUS);
    for (k, p) in positions.iter().enumerate() {
        game.on_client(
            SimTime::ZERO,
            ClientId(k as u64),
            ClientToGame::Join {
                pos: *p,
                state_bytes: 256,
            },
        );
    }
    // One untimed warm-up tick settles grids and batch state.
    let mut now = SimTime::ZERO + tick;
    black_box(game.on_tick(now, 0.0));

    let t0 = Instant::now();
    let mut sink = 0usize;
    for step in 0..TICKS {
        for (k, p) in positions.iter().enumerate() {
            let jitter = ((step + k) % 7) as f64 - 3.0;
            let pos = Point::new(
                (p.x + jitter).clamp(0.0, WORLD),
                (p.y - jitter).clamp(0.0, WORLD),
            );
            sink += game
                .on_client(now, ClientId(k as u64), ClientToGame::Move { pos })
                .len();
        }
        now += tick;
        sink += game.on_tick(now, 0.0).len();
    }
    black_box(sink);
    t0.elapsed()
}

fn main() {
    let mut flush_workers = 1u32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        // Harness flags (e.g. --bench from `cargo bench`) pass through.
        if arg == "--flush-workers" {
            flush_workers = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--flush-workers needs an integer");
                std::process::exit(2)
            });
        }
    }
    let positions = hotspot_positions(CLIENTS);
    // Rotate the arms so drift (thermal, cache, scheduler) hits all of
    // them alike.
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut best_traced = Duration::MAX;
    let mut overhead = f64::INFINITY;
    let mut trace_overhead = f64::INFINITY;
    for round in 0..MAX_ROUNDS {
        let off = run_round(false, 0, flush_workers, &positions);
        let on = run_round(true, 0, flush_workers, &positions);
        let traced = run_round(true, TRACE_SAMPLE_RATE, flush_workers, &positions);
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        best_traced = best_traced.min(traced);
        println!(
            "round {round}: off {:>8.3} ms   on {:>8.3} ms   traced {:>8.3} ms",
            off.as_secs_f64() * 1e3,
            on.as_secs_f64() * 1e3,
            traced.as_secs_f64() * 1e3
        );
        overhead = (best_on.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64();
        trace_overhead =
            (best_traced.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64();
        if round + 1 >= MIN_ROUNDS && overhead <= BUDGET && trace_overhead <= TRACE_BUDGET {
            break;
        }
    }
    let off = best_off.as_secs_f64();
    println!(
        "telemetry overhead ({flush_workers} flush worker(s)): best-off {:.3} ms, \
         best-on {:.3} ms => {:+.2}% (budget {:.0}%), \
         best-traced {:.3} ms => {:+.2}% (budget {:.0}%)",
        off * 1e3,
        best_on.as_secs_f64() * 1e3,
        overhead * 100.0,
        BUDGET * 100.0,
        best_traced.as_secs_f64() * 1e3,
        trace_overhead * 100.0,
        TRACE_BUDGET * 100.0
    );
    if overhead > BUDGET || trace_overhead > TRACE_BUDGET {
        matrix_core::emit_diag(
            "bench",
            "telemetry_overhead_exceeded",
            &[
                ("overhead", &format!("{:.4}", overhead)),
                ("budget", &format!("{:.4}", BUDGET)),
                ("trace_overhead", &format!("{:.4}", trace_overhead)),
                ("trace_budget", &format!("{:.4}", TRACE_BUDGET)),
                ("flush_workers", &flush_workers.to_string()),
            ],
        );
        std::process::exit(1);
    }
    println!("telemetry overhead within budget");
}
