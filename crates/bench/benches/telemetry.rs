//! Telemetry overhead gate (ISSUE 6): the instrumented hot path must
//! cost at most 2% more flush CPU than the telemetry-off build.
//!
//! With `GameServerConfig::telemetry` off, the spans/histograms are
//! no-op sinks — one branch, zero clock reads. This bench proves that
//! claim on the real dissemination hot path: a dense hotspot crowd
//! (2000 clients on one server) moving every tick, with batching and
//! the full pipeline (query → tier → predict → policy → delta) flushing
//! on the tick cadence. It runs the identical workload with telemetry
//! off and on in alternating rounds, takes the best round of each (the
//! usual min-of-N noise filter), and **exits non-zero** when
//! `(on - off) / off` exceeds the budget — so CI fails the build on an
//! overhead regression, not a human reading a report.
//!
//! Not a criterion bench on purpose: the verdict needs a process exit
//! code, and the two arms must interleave in one process to share
//! thermal/cache conditions.

use matrix_core::{ClientId, ClientToGame, GameServerConfig, GameServerNode};
use matrix_geometry::{Point, Rect, ServerId};
use matrix_sim::{SimRng, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORLD: f64 = 800.0;
const RADIUS: f64 = 100.0;
/// Hotspot crowd spread (σ), same shape as the fanout bench.
const SPREAD: f64 = 150.0;
const CLIENTS: usize = 2000;
const TICKS: usize = 20;
/// Rounds always run, even on a quiet machine.
const MIN_ROUNDS: usize = 4;
/// Extra rounds allowed before a breach is final: scheduler noise on a
/// busy host inflates single rounds by more than the budget, and
/// min-of-N only converges to the true floor with enough N. A real
/// regression stays over budget no matter how many rounds run.
const MAX_ROUNDS: usize = 12;
/// The hard budget: telemetry-on flush CPU within 2% of telemetry-off.
const BUDGET: f64 = 0.02;

fn config(telemetry: bool) -> GameServerConfig {
    GameServerConfig {
        telemetry,
        emit_updates: true,
        ..GameServerConfig::default()
    }
}

fn hotspot_positions(n: usize) -> Vec<Point> {
    let mut rng = SimRng::seed_from_u64(0x7E1E);
    let center = Point::new(WORLD * 0.6, WORLD * 0.5);
    (0..n)
        .map(|_| {
            Point::new(
                rng.normal(center.x, SPREAD).clamp(0.0, WORLD),
                rng.normal(center.y, SPREAD).clamp(0.0, WORLD),
            )
        })
        .collect()
}

/// One timed round: every client moves each tick, the server ticks (and
/// flushes) after. Join/build cost stays outside the timed section.
fn run_round(telemetry: bool, positions: &[Point]) -> Duration {
    let world = Rect::from_coords(0.0, 0.0, WORLD, WORLD);
    let cfg = config(telemetry);
    let tick = cfg.tick;
    let mut game = GameServerNode::new(ServerId(1), cfg);
    game.register(world, RADIUS);
    for (k, p) in positions.iter().enumerate() {
        game.on_client(
            SimTime::ZERO,
            ClientId(k as u64),
            ClientToGame::Join {
                pos: *p,
                state_bytes: 256,
            },
        );
    }
    // One untimed warm-up tick settles grids and batch state.
    let mut now = SimTime::ZERO + tick;
    black_box(game.on_tick(now, 0.0));

    let t0 = Instant::now();
    let mut sink = 0usize;
    for step in 0..TICKS {
        for (k, p) in positions.iter().enumerate() {
            let jitter = ((step + k) % 7) as f64 - 3.0;
            let pos = Point::new(
                (p.x + jitter).clamp(0.0, WORLD),
                (p.y - jitter).clamp(0.0, WORLD),
            );
            sink += game
                .on_client(now, ClientId(k as u64), ClientToGame::Move { pos })
                .len();
        }
        now += tick;
        sink += game.on_tick(now, 0.0).len();
    }
    black_box(sink);
    t0.elapsed()
}

fn main() {
    let positions = hotspot_positions(CLIENTS);
    // Alternate the arms so drift (thermal, cache, scheduler) hits both.
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut overhead = f64::INFINITY;
    for round in 0..MAX_ROUNDS {
        let off = run_round(false, &positions);
        let on = run_round(true, &positions);
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        println!(
            "round {round}: off {:>8.3} ms   on {:>8.3} ms",
            off.as_secs_f64() * 1e3,
            on.as_secs_f64() * 1e3
        );
        overhead = (best_on.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64();
        if round + 1 >= MIN_ROUNDS && overhead <= BUDGET {
            break;
        }
    }
    let off = best_off.as_secs_f64();
    let on = best_on.as_secs_f64();
    println!(
        "telemetry overhead: best-off {:.3} ms, best-on {:.3} ms => {:+.2}% (budget {:.0}%)",
        off * 1e3,
        on * 1e3,
        overhead * 100.0,
        BUDGET * 100.0
    );
    if overhead > BUDGET {
        matrix_core::emit_diag(
            "bench",
            "telemetry_overhead_exceeded",
            &[
                ("overhead", &format!("{:.4}", overhead)),
                ("budget", &format!("{:.4}", BUDGET)),
            ],
        );
        std::process::exit(1);
    }
    println!("telemetry overhead within budget");
}
