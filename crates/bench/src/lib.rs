//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target regenerates one of the paper's evaluation artefacts;
//! see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded results.

use matrix_geometry::{PartitionMap, Point, Rect, ServerId};

/// A K-way static partition of the standard BzFlag-sized world.
pub fn grid(servers: u32) -> PartitionMap {
    let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
    let ids: Vec<ServerId> = (1..=servers).map(ServerId).collect();
    PartitionMap::static_grid(world, &ids).expect("static grid")
}

/// Deterministic probe points spread over a rectangle (low-discrepancy).
pub fn probes(world: Rect, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let fx = (i as f64 * 0.7548776662466927) % 1.0;
            let fy = (i as f64 * 0.5698402909980532) % 1.0;
            Point::new(
                world.min().x + world.width() * fx,
                world.min().y + world.height() * fy,
            )
        })
        .collect()
}
