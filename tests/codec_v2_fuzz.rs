//! Seeded fuzz tests of the v2 binary decoder (`docs/WIRE.md`): random
//! bytes, truncated frames and bit-flipped valid frames must never
//! panic or over-read — malformed input surfaces as `Err` (or
//! `Incomplete` for a plausible prefix), CRC-protected frames reject
//! every single-bit corruption, and a frame stream resynchronizes at
//! the next magic boundary after a corrupt region.
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible) instead of an external
//! fuzzing framework, keeping the build offline-friendly.

use matrix_middleware::core::codec_v2::{
    self, Frame, FrameAccumulator, FrameMeta, FrameStatus, MAGIC,
};
use matrix_middleware::core::{BatchItem, ClientToGame, DeltaItem, GameToClient, UpdateItem};
use matrix_middleware::geometry::{Point, ServerId};
use matrix_middleware::sim::SimRng;

/// A small valid frame with a deliberately low-entropy body (lattice
/// coordinates, small integers): realistic traffic that is very
/// unlikely to contain an accidental magic pair, which keeps resync
/// behaviour deterministic to assert on.
fn small_frame(rng: &mut SimRng) -> Frame {
    match rng.uniform_u64(0, 5) {
        0 => Frame::Server(GameToClient::Ack {
            seq: rng.uniform_u64(0, 10_000),
        }),
        1 => Frame::Server(GameToClient::Joined {
            server: ServerId(rng.uniform_u64(1, 100) as u32),
        }),
        2 => Frame::Client(ClientToGame::Move {
            pos: Point::new(
                rng.uniform_u64(0, 1000) as f64,
                rng.uniform_u64(0, 1000) as f64,
            ),
        }),
        3 => Frame::Client(ClientToGame::Leave),
        _ => Frame::Server(GameToClient::UpdateBatch {
            updates: vec![
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(100.0, 200.5),
                    payload_bytes: rng.uniform_u64(0, 200) as usize,
                    entity: rng.uniform_u64(0, 100),
                    ring: rng.uniform_u64(0, 4) as u8,
                    vx: 0.0,
                    vy: 0.0,
                    // Sometimes traced, so the mutation sweep also chews
                    // on frames carrying the trace section.
                    trace: (rng.uniform_u64(0, 3) == 0).then(|| {
                        matrix_middleware::telemetry::TraceTag::new(
                            rng.uniform_u64(1, 100) as u32,
                            rng.uniform_u64(0, 1 << 20) as u32,
                            rng.uniform_u64(0, 1 << 40),
                        )
                    }),
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 1.5,
                    dy: -0.25,
                    payload_bytes: rng.uniform_u64(0, 200) as usize,
                    entity: rng.uniform_u64(0, 100),
                    ring: 0,
                    vx: 2.0,
                    vy: -1.5,
                    trace: None,
                }),
            ],
        }),
    }
}

fn meta(rng: &mut SimRng) -> FrameMeta {
    FrameMeta {
        seq: rng.uniform_u64(0, 100_000),
        stamp_ms: rng.uniform_u64(0, 1 << 20) as u32,
    }
}

/// Purely random buffers: the decoder must return, not panic — any of
/// Ok(Incomplete) / Ok(Complete) / Err is acceptable, but a Complete
/// must not claim more bytes than it was given.
#[test]
fn random_bytes_never_panic_the_decoder() {
    let mut rng = SimRng::seed_from_u64(0xF022_0001);
    for _ in 0..2000 {
        let len = rng.uniform_u64(0, 300) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.uniform_u64(0, 256) as u8).collect();
        // Half the time, plant a real magic/version prefix so the fuzz
        // reaches past the first guard checks.
        if rng.chance(0.5) && buf.len() >= 3 {
            buf[0] = MAGIC[0];
            buf[1] = MAGIC[1];
            buf[2] = codec_v2::WIRE_VERSION;
        }
        match codec_v2::decode_frame(&buf) {
            Ok(FrameStatus::Complete { consumed, .. }) => {
                assert!(
                    consumed <= buf.len(),
                    "decoder over-read: {consumed} > {len}"
                )
            }
            Ok(FrameStatus::Incomplete) | Err(_) => {}
        }
    }
}

/// The same random garbage through the streaming accumulator, in random
/// chunk sizes: it must keep yielding errors / frames and never panic,
/// loop forever, or grow without bound.
#[test]
fn random_bytes_never_panic_the_accumulator() {
    let mut rng = SimRng::seed_from_u64(0xF022_0002);
    for _ in 0..300 {
        let mut acc = FrameAccumulator::new();
        let len = rng.uniform_u64(1, 600) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.uniform_u64(0, 256) as u8).collect();
        let mut offset = 0;
        while offset < bytes.len() {
            let chunk = rng.uniform_u64(1, 64) as usize;
            let end = (offset + chunk).min(bytes.len());
            acc.push(&bytes[offset..end]);
            offset = end;
            // Drain; each next() either consumes bytes or returns None,
            // so this loop is bounded by the buffer size.
            while acc.next().is_some() {}
        }
        assert!(
            acc.pending_bytes() <= bytes.len(),
            "the accumulator must not grow beyond its input"
        );
    }
}

/// Every proper prefix of a valid frame is just "not enough bytes yet":
/// Ok(Incomplete), never an error, never a bogus Complete.
#[test]
fn truncated_frames_are_incomplete_not_errors() {
    let mut rng = SimRng::seed_from_u64(0xF022_0003);
    for _ in 0..100 {
        let frame = small_frame(&mut rng);
        let crc = rng.chance(0.5);
        let bytes = codec_v2::encode_frame(&frame, meta(&mut rng), crc);
        for cut in 0..bytes.len() {
            match codec_v2::decode_frame(&bytes[..cut]) {
                Ok(FrameStatus::Incomplete) => {}
                other => panic!("prefix of {cut}/{} bytes gave {other:?}", bytes.len()),
            }
        }
    }
}

/// Single-bit corruption of a CRC-protected frame must never decode to
/// different content. The only flip that may still decode is the CRC
/// presence bit itself (the trailer then reads as spare bytes) — and
/// even then the content is bit-identical; every other position fails
/// the checksum, a header guard, or the body parser.
#[test]
fn crc_frames_reject_single_bit_corruption() {
    let mut rng = SimRng::seed_from_u64(0xF022_0004);
    for _ in 0..100 {
        let frame = small_frame(&mut rng);
        let m = meta(&mut rng);
        let bytes = codec_v2::encode_frame(&frame, m, true);
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            match codec_v2::decode_frame(&corrupt) {
                Err(_) | Ok(FrameStatus::Incomplete) => {}
                Ok(FrameStatus::Complete {
                    frame: decoded,
                    meta: dm,
                    ..
                }) => {
                    assert_eq!(
                        (decoded, dm),
                        (frame.clone(), m),
                        "bit {bit} flipped and the decoder accepted different content"
                    );
                }
            }
        }
    }
}

/// Without the CRC trailer the decoder still must not panic on any
/// single-bit flip (structural guards catch what they can; silent
/// misdecodes are the documented price of `frame_crc = false`).
#[test]
fn flipped_uncrc_frames_never_panic() {
    let mut rng = SimRng::seed_from_u64(0xF022_0005);
    for _ in 0..100 {
        let frame = small_frame(&mut rng);
        let bytes = codec_v2::encode_frame(&frame, meta(&mut rng), false);
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let _ = codec_v2::decode_frame(&corrupt); // any result; no panic
        }
    }
}

/// A corrupt frame in the middle of a stream costs exactly that frame:
/// the accumulator reports the error, resynchronizes at the next magic
/// boundary, and every later frame decodes intact.
#[test]
fn streams_resync_at_the_next_magic_boundary() {
    let mut rng = SimRng::seed_from_u64(0xF022_0006);
    for case in 0..200 {
        let n = rng.uniform_u64(3, 8) as usize;
        let frames: Vec<Frame> = (0..n).map(|_| small_frame(&mut rng)).collect();
        let victim = rng.uniform_u64(1, n as u64 - 1) as usize;

        let mut stream = Vec::new();
        let mut victim_span = (0, 0);
        for (i, frame) in frames.iter().enumerate() {
            let bytes = codec_v2::encode_frame(frame, meta(&mut rng), true);
            if i == victim {
                victim_span = (stream.len(), stream.len() + bytes.len());
            }
            stream.extend_from_slice(&bytes);
        }
        // Corrupt one byte of the victim's seq/stamp fields or body —
        // past the framing prefix (magic/version/flags/length, so the
        // frame boundary stays intact) and before the trailer. The CRC
        // covers this whole span.
        let (start, end) = victim_span;
        let body = start + 8..end - codec_v2::CRC_BYTES;
        let target = rng.uniform_u64(body.start as u64, body.end as u64) as usize;
        stream[target] ^= 0x40;

        let mut acc = FrameAccumulator::new();
        let mut offset = 0;
        let mut decoded = Vec::new();
        let mut errors = 0;
        while offset < stream.len() {
            let chunk = rng.uniform_u64(1, 80) as usize;
            let end = (offset + chunk).min(stream.len());
            acc.push(&stream[offset..end]);
            offset = end;
            while let Some(item) = acc.next() {
                match item {
                    Ok((frame, _)) => decoded.push(frame),
                    Err(_) => errors += 1,
                }
            }
        }
        let mut expect = frames;
        expect.remove(victim);
        assert_eq!(decoded, expect, "case {case}: exactly the victim is lost");
        assert!(errors >= 1, "case {case}: the corruption must be reported");
        assert_eq!(acc.pending_bytes(), 0, "case {case}: stream fully consumed");
    }
}
