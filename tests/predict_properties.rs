//! Dead-reckoning property suites.
//!
//! **Extrapolation determinism**: the sender's suppression decisions
//! simulate the receiver with the same arithmetic the receiver runs, so
//! for any random stream of bases, velocities and timestamps, the
//! sender-simulated prediction error equals the receiver's real
//! extrapolation error **bit-for-bit** — the property that turns the
//! per-ring error budget from a heuristic into a hard bound.
//!
//! **Budget bound, end-to-end**: random movement scripts through a
//! predicting `GameServerNode` with per-event flushes, every receiver
//! mirrored by a real `Extrapolator` fed from the emitted batches. At
//! every movement event, every in-AOI receiver's extrapolation error is
//! within its ring's configured budget (delivered events rebase to the
//! exact wire position; suppressed events were only suppressed because
//! the — identical — simulation stayed within budget).
//!
//! **Velocity codec round-trips**: velocity-tagged batch items survive
//! encode/decode exactly, velocity-free items encode byte-identically
//! to the pre-prediction grammar, and legacy (pre-velocity) frames
//! still decode.
//!
//! **Byte-identical when off**: with `predict` off, a ringed node's
//! wire frames stay inside the PR 4 grammar — no velocity elements, no
//! suppression — so switching the feature off really does restore the
//! previous deployment's bytes. (The untiered half of this pin lives in
//! `tests/interest_properties.rs`:
//! `pipeline_is_byte_identical_to_the_hand_wired_flush_path`.)
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible).

use matrix_middleware::core::{
    codec, quantize, reconstruct_updates, ClientId, ClientToGame, Extrapolator, GameAction,
    GameServerConfig, GameServerNode, GameToClient, RingSet, ServerId,
};
use matrix_middleware::geometry::{Point, Rect};
use matrix_middleware::predict::{extrapolate, Admission, PredictedStream};
use matrix_middleware::sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Splits an encoded `{"t":"batch",...}` line into its per-item array
/// bodies, so grammar checks can count elements per item. An absolute
/// item has 3–5 elements (2–4 commas), a delta 4–6 (3–5 commas); only a
/// velocity pair pushes an item to 6+ commas.
fn item_chunks(line: &str) -> Vec<&str> {
    let inner = line
        .strip_prefix("{\"t\":\"batch\",\"updates\":[")
        .and_then(|s| s.strip_suffix("]}"))
        .expect("batch frame shape");
    if inner.is_empty() {
        return Vec::new();
    }
    inner
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split("],[")
        .collect()
}

// ---------------------------------------------------------------------------
// Extrapolation determinism
// ---------------------------------------------------------------------------

/// For random event streams, the sender's simulated receiver error and
/// the real receiver's extrapolation error are the same f64, bit for
/// bit, and suppression alone never lets the receiver drift past the
/// budget at event instants.
#[test]
fn sender_simulated_error_equals_receiver_error_bitwise() {
    let mut rng = SimRng::seed_from_u64(0xDEAD_0EC0);
    for case in 0..40 {
        let budget = rng.uniform(0.1, 20.0);
        let mut sender: PredictedStream<u32> = PredictedStream::new();
        let mut receiver = Extrapolator::new();
        let mut time = 0.0f64;
        let mut pos = Point::new(rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0));
        let mut vel = (rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0));
        for step in 0..200 {
            time += rng.uniform(0.01, 0.5);
            // Mostly inertial motion with occasional swerves and
            // teleports, so both branches (suppress and rebase) fire.
            match rng.uniform_u64(0, 10) {
                0..=6 => {
                    pos = extrapolate(pos, vel, 0.1);
                }
                7..=8 => {
                    vel = (rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0));
                    pos = extrapolate(pos, vel, 0.1);
                }
                _ => {
                    pos = Point::new(rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0));
                }
            }
            let receiver_err = receiver.predict(7, time).map(|p| p.distance(pos));
            match sender.admit(1, 7, pos, vel, time, budget) {
                Admission::Suppress { error } => {
                    let real = receiver_err.unwrap_or_else(|| {
                        panic!("case {case}: suppression requires a receiver-side basis")
                    });
                    assert_eq!(
                        error.to_bits(),
                        real.to_bits(),
                        "case {case} step {step}: simulated and real error must be \
                         the same f64"
                    );
                    assert!(
                        real <= budget,
                        "case {case} step {step}: suppressed at error {real} > {budget}"
                    );
                }
                Admission::Send => {
                    // The receiver hears about it and rebases — from
                    // here both sides hold the identical basis again.
                    receiver.update(7, pos, vel, time);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Budget bound, end-to-end through the game server
// ---------------------------------------------------------------------------

/// Random crowds and movement scripts through a predicting node: at
/// every movement event, every in-AOI receiver's mirrored extrapolation
/// is within its ring's error budget (up to the wire lattice quantum
/// for freshly delivered items).
#[test]
fn suppression_never_exceeds_the_ring_budget_end_to_end() {
    let mut rng = SimRng::seed_from_u64(0xB0D9E7);
    for case in 0..8 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radii = [rng.uniform(20.0, 60.0), rng.uniform(120.0, 300.0)];
        let budgets = [0.0, rng.uniform(0.5, 8.0)];
        let mut cfg = GameServerConfig {
            predict: true,
            emit_updates: true,
            batch_interval: SimDuration::from_millis(0),
            motion_window: rng.uniform_u64(2, 7) as u32,
            ..GameServerConfig::default()
        };
        cfg.set_rings(&radii, &[1, 1]);
        cfg.set_error_budgets(&budgets);
        let rings = RingSet::from_tiers(&radii, &[1, 1]);
        let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
        node.register(world, radii[1]);

        let clients = rng.uniform_u64(4, 10);
        let mut positions: BTreeMap<ClientId, Point> = BTreeMap::new();
        let mut mirrors: BTreeMap<ClientId, (Extrapolator, Option<Point>)> = BTreeMap::new();
        let mut velocities: BTreeMap<ClientId, (f64, f64)> = BTreeMap::new();
        for id in 0..clients {
            let pos = Point::new(rng.uniform(100.0, 700.0), rng.uniform(100.0, 700.0));
            positions.insert(ClientId(id), pos);
            mirrors.insert(ClientId(id), (Extrapolator::new(), None));
            velocities.insert(
                ClientId(id),
                (rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)),
            );
            node.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Join {
                    pos,
                    state_bytes: 0,
                },
            );
        }

        let mut now = SimTime::ZERO;
        for step in 0..120u64 {
            now += SimDuration::from_millis(100);
            let id = ClientId(rng.uniform_u64(0, clients));
            // Mostly straight motion, occasional swerves — and full
            // stops, which exercise the zero-velocity rebase path: a
            // stopped entity's rebase omits the velocity pair on the
            // wire, and the receiver must pin it rather than keep
            // drifting at the old velocity.
            if rng.chance(0.15) {
                velocities.insert(id, (rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)));
            } else if rng.chance(0.1) {
                velocities.insert(id, (0.0, 0.0));
            }
            let v = velocities[&id];
            let pos = world.clamp(extrapolate(positions[&id], v, 0.1));
            positions.insert(id, pos);
            let wire = quantize(pos, GameServerConfig::default().origin_quantum);
            let actions = node.on_client(now, id, ClientToGame::Move { pos });
            for a in actions {
                let GameAction::ToClient(cid, GameToClient::UpdateBatch { updates }) = a else {
                    continue;
                };
                let (extrap, base) = mirrors.get_mut(&cid).expect("known receiver");
                let items = reconstruct_updates(base, &updates)
                    .expect("delta streams stay decodable in order");
                for u in items {
                    extrap.update(u.entity, u.origin, (u.vx, u.vy), now.as_secs_f64());
                }
            }
            for (&rid, (extrap, _)) in &mirrors {
                if rid == id {
                    continue;
                }
                let Some(predicted) = extrap.predict(id.0, now.as_secs_f64()) else {
                    continue;
                };
                let d = positions[&rid].distance(pos);
                let Some(ring) = rings.ring_of(d) else {
                    continue; // left the AOI: no delivery promise there
                };
                let err = predicted.distance(wire);
                let bound = if budgets[ring as usize] > 0.0 {
                    budgets[ring as usize]
                } else {
                    // Budget-0 rings deliver every event: the mirror just
                    // rebased onto the exact wire position.
                    1e-9
                };
                assert!(
                    err <= bound + 1e-9,
                    "case {case} step {step}: receiver {rid:?} sees entity {id:?} at \
                     error {err} > ring {ring} bound {bound}"
                );
            }
        }
        assert!(
            node.stats().updates_suppressed > 0,
            "case {case}: the scripts must actually exercise suppression"
        );
    }
}

// ---------------------------------------------------------------------------
// Velocity codec
// ---------------------------------------------------------------------------

/// Random velocity-tagged batches round-trip exactly; velocity-free
/// items stay inside the pre-prediction grammar; legacy frames decode.
#[test]
fn velocity_fields_round_trip_and_legacy_frames_decode() {
    use matrix_middleware::core::{BatchItem, DeltaItem, UpdateItem};
    let mut rng = SimRng::seed_from_u64(0x7E10C17);
    for case in 0..200 {
        let mut updates = Vec::new();
        for _ in 0..rng.uniform_u64(1, 8) {
            let vel = if rng.chance(0.5) {
                (rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0))
            } else {
                (0.0, 0.0)
            };
            let item = if rng.chance(0.5) {
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(rng.uniform(-1e4, 1e4), rng.uniform(-1e4, 1e4)),
                    payload_bytes: rng.uniform_u64(0, 512) as usize,
                    entity: rng.uniform_u64(0, 50),
                    ring: rng.uniform_u64(0, 4) as u8,
                    vx: vel.0,
                    vy: vel.1,
                    trace: None,
                })
            } else {
                BatchItem::Delta(DeltaItem {
                    dx: rng.uniform(-100.0, 100.0),
                    dy: rng.uniform(-100.0, 100.0),
                    payload_bytes: rng.uniform_u64(0, 512) as usize,
                    entity: rng.uniform_u64(0, 50),
                    ring: rng.uniform_u64(0, 4) as u8,
                    vx: vel.0,
                    vy: vel.1,
                    trace: None,
                })
            };
            updates.push(item);
        }
        let msg = GameToClient::UpdateBatch {
            updates: updates.clone(),
        };
        let line = codec::encode_game_to_client(&msg);
        let decoded = codec::decode_game_to_client(&line)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{line}"));
        assert_eq!(decoded, msg, "case {case}: {line}");
        // Velocity-free items never grow the item arrays beyond the
        // PR 4 grammar (≤ 5 elements absolute, ≤ 6 delta); a velocity
        // pair always shows up as a 7/8-element item.
        let max_commas = item_chunks(&line)
            .iter()
            .map(|c| c.matches(',').count())
            .max()
            .unwrap_or(0);
        if updates.iter().all(|u| !u.has_velocity()) {
            assert!(
                max_commas <= 5,
                "case {case}: velocity-free frame outside the legacy grammar: {line}"
            );
        } else {
            assert!(
                max_commas >= 6,
                "case {case}: a velocity pair must be visible on the wire: {line}"
            );
        }
    }
    // Pre-velocity (and pre-entity/ring) frames still decode as
    // velocity-free items.
    let legacy = codec::decode_game_to_client(
        "{\"t\":\"batch\",\"updates\":[[1.0,2.0,8],[\"d\",0.5,0.5,4,9,2]]}",
    )
    .unwrap();
    let GameToClient::UpdateBatch { updates } = legacy else {
        panic!("expected a batch");
    };
    assert!(updates.iter().all(|u| !u.has_velocity()));
}

// ---------------------------------------------------------------------------
// Byte-identical when off
// ---------------------------------------------------------------------------

/// With `predict` off, a ringed node emits frames from the PR 4
/// grammar: nothing is suppressed and no item carries a velocity — the
/// feature leaves no trace on the wire when disabled.
#[test]
fn predict_off_leaves_the_wire_in_the_pr4_grammar() {
    let mut rng = SimRng::seed_from_u64(0x0FF0FF);
    for case in 0..10 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let mut cfg = GameServerConfig {
            emit_updates: true,
            batch_interval: if rng.chance(0.3) {
                SimDuration::from_millis(0)
            } else {
                SimDuration::from_millis(50)
            },
            // Deliberately poisoned predictor knobs: they must be inert
            // while `predict` stays false.
            motion_window: rng.uniform_u64(2, 9) as u32,
            ..GameServerConfig::default()
        };
        cfg.set_rings(
            &[rng.uniform(20.0, 60.0), rng.uniform(100.0, 200.0)],
            &[1, rng.uniform_u64(1, 4) as u32],
        );
        cfg.set_error_budgets(&[0.0, rng.uniform(1.0, 50.0)]);
        assert!(!cfg.predict);
        let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
        node.register(world, 200.0);
        for id in 0..8u64 {
            node.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Join {
                    pos: Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0)),
                    state_bytes: 0,
                },
            );
        }
        for step in 0..60u64 {
            let actions = node.on_client(
                SimTime::from_millis(step * 40),
                ClientId(step % 8),
                ClientToGame::Move {
                    pos: Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0)),
                },
            );
            for a in actions {
                let GameAction::ToClient(_, msg @ GameToClient::UpdateBatch { .. }) = a else {
                    continue;
                };
                let GameToClient::UpdateBatch { ref updates } = msg else {
                    unreachable!()
                };
                assert!(
                    updates.iter().all(|u| !u.has_velocity()),
                    "case {case}: velocity leaked onto a predict-off wire"
                );
                let line = codec::encode_game_to_client(&msg);
                for item in item_chunks(&line) {
                    assert!(
                        item.matches(',').count() <= 5,
                        "case {case}: frame outside the PR 4 grammar: {line}"
                    );
                }
            }
        }
        assert_eq!(node.stats().updates_suppressed, 0, "case {case}");
        assert_eq!(node.prediction_receivers(), 0, "case {case}");
    }
}
