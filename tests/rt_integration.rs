//! Facade-level tests of the tokio runtime: the public API a downstream
//! game developer would program against.

use matrix_middleware::core::{GameToClient, MatrixConfig};
use matrix_middleware::geometry::Point;
use matrix_middleware::rt::{RtCluster, RtConfig};
use matrix_middleware::sim::SimDuration;
use std::time::Duration;

#[tokio::test]
async fn facade_quickstart_flow() {
    let cluster = RtCluster::start(RtConfig::default()).await;
    let mut alice = cluster.client(Point::new(200.0, 200.0));
    let mut bob = cluster.client(Point::new(220.0, 200.0));

    let joined = tokio::time::timeout(Duration::from_secs(2), alice.recv())
        .await
        .unwrap();
    assert!(matches!(joined, Some(GameToClient::Joined { .. })));
    let _ = tokio::time::timeout(Duration::from_secs(2), bob.recv())
        .await
        .unwrap();

    alice.move_to(Point::new(205.0, 200.0));
    alice.action(32);
    // Bob sees the movement and the action as coalesced update batches.
    let mut updates = 0;
    for _ in 0..2 {
        match tokio::time::timeout(Duration::from_secs(2), bob.recv()).await {
            Ok(Some(GameToClient::UpdateBatch { updates: batch })) => updates += batch.len(),
            Ok(Some(GameToClient::Update { .. })) => updates += 1,
            _ => {}
        }
    }
    assert!(updates >= 1, "bob must observe alice");
    assert!(bob.counters().batches >= 1, "updates arrive batched");
    cluster.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn cluster_grows_and_shrinks_with_population() {
    let mut cfg = RtConfig {
        matrix: MatrixConfig {
            overload_clients: 8,
            underload_clients: 3,
            overload_streak: 2,
            underload_streak: 2,
            cooldown: SimDuration::from_millis(200),
            reclaim_headroom: 0.9,
            ..MatrixConfig::default()
        },
        ..RtConfig::default()
    };
    cfg.game.tick = SimDuration::from_millis(20);
    cfg.game.report_every_ticks = 2;
    let cluster = RtCluster::start(cfg).await;

    // Grow: 24 clients over an 8-client threshold.
    let mut clients = Vec::new();
    for i in 0..24 {
        let x = 100.0 + (i as f64 * 31.0) % 600.0;
        clients.push(cluster.client(Point::new(x, 400.0)));
    }
    let mut grew = 1;
    for _ in 0..50 {
        tokio::time::sleep(Duration::from_millis(100)).await;
        grew = cluster.active_servers().await;
        if grew >= 2 {
            break;
        }
    }
    assert!(grew >= 2, "cluster must grow under load");

    // Shrink: everyone leaves.
    for client in clients.drain(..) {
        client.leave();
    }
    let mut shrank = grew;
    for _ in 0..100 {
        tokio::time::sleep(Duration::from_millis(100)).await;
        shrank = cluster.active_servers().await;
        if shrank < grew {
            break;
        }
    }
    assert!(
        shrank < grew || shrank == 1,
        "cluster must consolidate: {shrank} vs {grew}"
    );
    cluster.shutdown().await;
}

#[tokio::test]
async fn predicted_entities_extrapolate_between_updates() {
    use matrix_middleware::sim::SimTime;

    // Dead reckoning end-to-end over the runtime: the server ships
    // velocity-tagged items for a linearly moving entity, the observing
    // client rebases its extrapolator from them, and suppressed events
    // are rendered from extrapolation instead of the wire.
    let mut cfg = RtConfig::default();
    cfg.game.batch_interval = SimDuration::from_millis(0);
    cfg.game.predict = true;
    cfg.game.set_rings(&[30.0, 150.0], &[1, 1]);
    cfg.game.set_error_budgets(&[0.0, 5.0]);
    let cluster = RtCluster::start(cfg).await;
    let mut mover = cluster.client(Point::new(200.0, 200.0));
    let mut observer = cluster.client(Point::new(200.0, 300.0)); // outer ring
    let _ = tokio::time::timeout(Duration::from_secs(2), mover.recv()).await;
    let _ = tokio::time::timeout(Duration::from_secs(2), observer.recv()).await;

    // A straight run past the observer; per-event flushes keep the
    // timeline simple.
    for i in 1..=15 {
        mover.move_to(Point::new(200.0 + i as f64 * 4.0, 200.0));
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    tokio::time::sleep(Duration::from_millis(200)).await;
    let _ = observer.drain();

    let counters = observer.counters();
    assert!(
        counters.updates >= 1,
        "the run must be observed: {counters:?}"
    );
    assert!(
        counters.velocity_items >= 1,
        "rebasing items must carry the velocity: {counters:?}"
    );
    assert_eq!(observer.extrapolated_entities(), 1);
    let entity = mover.id().0;
    let predicted = observer
        .extrapolated(entity, SimTime::from_secs(3600))
        .expect("a basis for the mover");
    assert!(
        predicted.x > 200.0,
        "extrapolation must continue the run, not freeze: {predicted}"
    );
    cluster.shutdown().await;
}
