//! Property-based tests of the telemetry plane: histogram quantile and
//! merge laws, the stats wire codec, the flight-recorder ring, and the
//! end-to-end on/off contract of the instrumented game server.
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible) instead of an external
//! property-testing framework, keeping the build offline-friendly.

use matrix_middleware::core::codec::{
    decode_client_to_game, decode_stats_reply, encode_client_to_game, encode_stats_query,
    encode_stats_reply, StatsFormat,
};
use matrix_middleware::core::{
    ClientId, ClientToGame, EventKind, FlightRecorder, GameServerConfig, GameServerNode,
    HistSnapshot, Histogram, Stage, TelemetrySnapshot,
};
use matrix_middleware::geometry::{Point, Rect, ServerId};
use matrix_middleware::sim::{SimRng, SimTime};

const CASES: usize = 48;

fn samples(rng: &mut SimRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(0.5, 2_000_000.0)).collect()
}

/// Merging histograms is exactly equivalent to recording every sample
/// into one histogram: identical buckets, counts, extrema and (hence)
/// quantiles — the law that makes per-node histograms aggregate into
/// cluster-wide distributions without bias.
#[test]
fn histogram_merge_equals_recording_everything_once() {
    let mut rng = SimRng::seed_from_u64(0x4157);
    for case in 0..CASES {
        let na = rng.uniform_u64(0, 400) as usize;
        let nb = rng.uniform_u64(1, 400) as usize;
        let a = samples(&mut rng, na);
        let b = samples(&mut rng, nb);
        let (mut ha, mut hb, mut hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in &a {
            ha.record(*v);
            hall.record(*v);
        }
        for v in &b {
            hb.record(*v);
            hall.record(*v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hall.count(), "case {case}");
        assert_eq!(ha.min(), hall.min(), "case {case}");
        assert_eq!(ha.max(), hall.max(), "case {case}");
        assert_eq!(
            ha.nonzero_buckets(),
            hall.nonzero_buckets(),
            "case {case}: merged buckets must match direct recording"
        );
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(ha.quantile(q), hall.quantile(q), "case {case} q={q}");
        }
    }
}

/// Quantiles of a merged histogram stay within the log-bucket error
/// bound of the exact sample quantile, are monotone in `q`, and are
/// bracketed by the true min and max.
#[test]
fn histogram_quantiles_bound_the_exact_order_statistics() {
    let mut rng = SimRng::seed_from_u64(0xB0C4E7);
    for case in 0..CASES {
        let n = 40 + rng.uniform_u64(0, 400) as usize;
        let mut all = samples(&mut rng, n);
        let mut h1 = Histogram::new();
        let mut h2 = Histogram::new();
        for (i, v) in all.iter().enumerate() {
            if i % 2 == 0 {
                h1.record(*v);
            } else {
                h2.record(*v);
            }
        }
        h1.merge(&h2);
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let n = all.len();
        let mut prev = 0.0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let v = h1.quantile(q).expect("non-empty");
            assert!(v >= prev, "case {case}: quantiles must be monotone in q");
            prev = v;
            // Rank-bracket with one rank of slack for convention, plus
            // the 16-sub-bucket log resolution (≤ ~7% relative error).
            let k = ((q * (n - 1) as f64).round() as usize).min(n - 1);
            let lo = all[k.saturating_sub(1)] * (1.0 - 0.08);
            let hi = all[(k + 1).min(n - 1)] * (1.0 + 0.08);
            assert!(
                v >= lo && v <= hi,
                "case {case}: q{q} = {v} outside [{lo}, {hi}] (n={n})"
            );
        }
        // quantile() reports bucket lower bounds, so q=1.0 may sit one
        // sub-bucket (≈6%) below the exact max — but never above it.
        let top = h1.quantile(1.0).unwrap();
        assert!(
            top >= all[n - 1] * (1.0 - 0.08) && top <= all[n - 1],
            "case {case}"
        );
        assert!(h1.quantile(0.0).unwrap() <= all[0] * 1.08, "case {case}");
    }
}

/// `HistSnapshot::merge` obeys the same law as `Histogram::merge`: the
/// snapshot round-trip (`of` → merge → `to_histogram`) reproduces the
/// directly merged histogram exactly.
#[test]
fn snapshot_merge_matches_histogram_merge() {
    let mut rng = SimRng::seed_from_u64(0x5A4);
    for case in 0..CASES {
        let na = 1 + rng.uniform_u64(0, 200) as usize;
        let nb = 1 + rng.uniform_u64(0, 200) as usize;
        let a = samples(&mut rng, na);
        let b = samples(&mut rng, nb);
        let (mut ha, mut hb) = (Histogram::new(), Histogram::new());
        for v in &a {
            ha.record(*v);
        }
        for v in &b {
            hb.record(*v);
        }
        let mut sa = HistSnapshot::of("x", &ha);
        let sb = HistSnapshot::of("x", &hb);
        sa.merge(&sb);
        ha.merge(&hb);
        let back = sa.to_histogram();
        assert_eq!(back.count(), ha.count(), "case {case}");
        assert_eq!(back.nonzero_buckets(), ha.nonzero_buckets(), "case {case}");
        assert_eq!(back.min(), ha.min(), "case {case}");
        assert_eq!(back.max(), ha.max(), "case {case}");
    }
}

fn random_snapshot(rng: &mut SimRng) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::new();
    for c in 0..rng.uniform_u64(0, 6) {
        snap.counter(format!("c{c}"), rng.uniform_u64(0, u64::MAX >> 12));
    }
    for hn in 0..rng.uniform_u64(0, 4) {
        let mut h = Histogram::new();
        for _ in 0..rng.uniform_u64(1, 64) {
            h.record(rng.uniform(0.1, 1e7));
        }
        snap.hist(format!("h{hn}"), &h);
    }
    snap.events_seen = rng.uniform_u64(0, 10_000);
    snap.events_dropped = rng.uniform_u64(0, snap.events_seen + 1);
    snap
}

/// The stats wire codec round-trips arbitrary snapshot sets exactly:
/// counters, sparse histogram buckets, extrema and drop counters all
/// survive, for any number of nodes including zero.
#[test]
fn stats_reply_round_trips_random_snapshots() {
    let mut rng = SimRng::seed_from_u64(0xC0DEC);
    for case in 0..CASES {
        let nodes: Vec<(ServerId, TelemetrySnapshot)> = (0..rng.uniform_u64(0, 5))
            .map(|i| (ServerId(i as u32 + 1), random_snapshot(&mut rng)))
            .collect();
        let line = encode_stats_reply(&nodes);
        let back = decode_stats_reply(&line).expect("round trip");
        assert_eq!(back.len(), nodes.len(), "case {case}");
        for ((sid, snap), (bid, bsnap)) in nodes.iter().zip(&back) {
            assert_eq!(sid, bid, "case {case}");
            assert_eq!(snap.counters, bsnap.counters, "case {case}");
            assert_eq!(snap.events_seen, bsnap.events_seen, "case {case}");
            assert_eq!(snap.events_dropped, bsnap.events_dropped, "case {case}");
            assert_eq!(snap.hists.len(), bsnap.hists.len(), "case {case}");
            for (h, bh) in snap.hists.iter().zip(&bsnap.hists) {
                assert_eq!(h.name, bh.name, "case {case}");
                assert_eq!(h.count, bh.count, "case {case}");
                assert_eq!(h.buckets, bh.buckets, "case {case}");
                let (orig, dec) = (h.to_histogram(), bh.to_histogram());
                assert_eq!(orig.min(), dec.min(), "case {case}");
                assert_eq!(orig.max(), dec.max(), "case {case}");
                assert_eq!(orig.quantile(0.99), dec.quantile(0.99), "case {case}");
            }
        }
    }
}

/// The stats frames are additive: the legacy client codec still
/// round-trips every message bit-for-bit, and neither codec accepts the
/// other's frames.
#[test]
fn legacy_frames_are_unaffected_by_stats_frames() {
    let mut rng = SimRng::seed_from_u64(0x1E64C7);
    for case in 0..CASES {
        let msg = match rng.uniform_u64(0, 4) {
            0 => ClientToGame::Join {
                pos: Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
                state_bytes: rng.uniform_u64(0, 1 << 20),
            },
            1 => ClientToGame::Move {
                pos: Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            },
            2 => ClientToGame::Action {
                pos: Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
                payload_bytes: rng.uniform_u64(0, 4096) as usize,
            },
            _ => ClientToGame::Leave,
        };
        let line = encode_client_to_game(&msg);
        assert_eq!(
            decode_client_to_game(&line).expect("legacy round trip"),
            msg,
            "case {case}"
        );
        // Cross-type isolation: a stats query is not a client frame.
        assert!(
            decode_client_to_game(&encode_stats_query(StatsFormat::Json)).is_err(),
            "case {case}"
        );
        assert!(decode_stats_reply(&line).is_err(), "case {case}");
    }
}

/// The flight recorder is an exact bounded ring: it retains the *last*
/// `cap` events with contiguous sequence numbers, counts every overflow
/// drop, and capacity zero is the true no-op.
#[test]
fn flight_recorder_retains_the_tail_exactly() {
    let mut rng = SimRng::seed_from_u64(0xF11647);
    for case in 0..CASES {
        let cap = rng.uniform_u64(0, 40) as usize;
        let n = rng.uniform_u64(0, 120);
        let mut rec = FlightRecorder::new(cap);
        for i in 0..n {
            rec.record(
                SimTime::from_micros(i * 7),
                EventKind::Promotion {
                    server: ServerId(i as u32),
                },
            );
        }
        assert_eq!(rec.next_seq(), if cap == 0 { 0 } else { n }, "case {case}");
        assert_eq!(rec.len() as u64, n.min(cap as u64), "case {case}");
        assert_eq!(
            rec.dropped(),
            if cap == 0 {
                0
            } else {
                n.saturating_sub(cap as u64)
            },
            "case {case}"
        );
        let events: Vec<_> = rec.events().collect();
        for (i, ev) in events.iter().enumerate() {
            let expect_seq = n - events.len() as u64 + i as u64;
            assert_eq!(ev.seq, expect_seq, "case {case}: tail must be contiguous");
            assert_eq!(ev.at, SimTime::from_micros(expect_seq * 7), "case {case}");
        }
    }
}

/// End to end through the instrumented game server: telemetry off means
/// *no* snapshot and an empty recorder; telemetry on yields per-stage
/// and flush histograms whose flush-sample counts agree across stages.
#[test]
fn game_server_telemetry_is_all_or_nothing() {
    for telemetry in [false, true] {
        let cfg = GameServerConfig {
            telemetry,
            emit_updates: true,
            ..GameServerConfig::default()
        };
        let mut g = GameServerNode::new(ServerId(1), cfg);
        g.register(Rect::from_coords(0.0, 0.0, 400.0, 400.0), 50.0);
        let mut now = SimTime::ZERO;
        for step in 0..10u64 {
            for c in 0..8u64 {
                let pos = Point::new(100.0 + c as f64 * 5.0, 100.0 + step as f64);
                if step == 0 {
                    g.on_client(
                        now,
                        ClientId(c),
                        ClientToGame::Join {
                            pos,
                            state_bytes: 64,
                        },
                    );
                } else {
                    g.on_client(now, ClientId(c), ClientToGame::Move { pos });
                }
            }
            now += cfg.batch_interval;
            g.on_tick(now, 0.0);
        }
        match g.telemetry_snapshot() {
            None => {
                assert!(!telemetry, "telemetry on must produce a snapshot");
                assert!(g.recorder().is_empty(), "off means an empty ring");
                assert_eq!(g.recorder().next_seq(), 0);
            }
            Some(snap) => {
                assert!(telemetry, "telemetry off must stay dark");
                assert_eq!(snap.get_counter("joins"), Some(8));
                let flushes = snap.get_hist("flush_us").expect("flush histogram").count;
                assert!(flushes >= 1, "batched work must have flushed");
                for stage in Stage::ALL {
                    let h = snap
                        .get_hist(&format!("stage_{}_us", stage.name()))
                        .unwrap_or_else(|| panic!("stage {} histogram", stage.name()));
                    assert_eq!(
                        h.count,
                        flushes,
                        "stage {} records one sample per flush",
                        stage.name()
                    );
                }
                assert_eq!(snap.events_seen, g.recorder().next_seq());
                assert!(
                    g.recorder()
                        .events()
                        .any(|e| matches!(e.kind, EventKind::Join { .. })),
                    "joins must land in the flight recorder"
                );
            }
        }
    }
}
