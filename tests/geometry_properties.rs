//! Property-based tests of the spatial substrate: the invariants that
//! make localized consistency sound, probed over randomized partition
//! topologies.
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible) instead of an external
//! property-testing framework, keeping the build offline-friendly.

use matrix_middleware::geometry::{
    build_overlap, consistency_set, Metric, PartitionMap, Point, Rect, ServerId, SplitStrategy,
};
use matrix_middleware::sim::SimRng;

const CASES: usize = 64;

fn strategy_of(sel: u8) -> SplitStrategy {
    match sel % 3 {
        0 => SplitStrategy::SplitToLeft,
        1 => SplitStrategy::LongestAxis,
        _ => SplitStrategy::LoadAwareMedian,
    }
}

/// A random split script: (victim selector, strategy selector) pairs.
fn split_script(rng: &mut SimRng) -> Vec<(u8, u8)> {
    let n = rng.uniform_u64(0, 12) as usize;
    (0..n)
        .map(|_| (rng.uniform_u64(0, 16) as u8, rng.uniform_u64(0, 3) as u8))
        .collect()
}

/// Builds a partition map by replaying a random split script.
fn build_map(script: &[(u8, u8)]) -> PartitionMap {
    let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let mut map = PartitionMap::new(world, ServerId(1));
    let mut next = 2u32;
    for (victim, sel) in script {
        let servers = map.servers();
        let target = servers[*victim as usize % servers.len()];
        if map
            .split(target, ServerId(next), &strategy_of(*sel), &[])
            .is_ok()
        {
            next += 1;
        }
    }
    map
}

fn metric_of(sel: u8) -> Metric {
    match sel % 3 {
        0 => Metric::Euclidean,
        1 => Metric::Manhattan,
        _ => Metric::Chebyshev,
    }
}

/// Splits never violate the partition invariants: disjoint interiors,
/// exact world coverage.
#[test]
fn splits_preserve_partition_invariants() {
    let mut rng = SimRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let map = build_map(&split_script(&mut rng));
        assert!(map.validate().is_ok(), "case {case}: {:?}", map.validate());
    }
}

/// Every interior point has exactly one owner.
#[test]
fn ownership_is_unique() {
    let mut rng = SimRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let map = build_map(&split_script(&mut rng));
        for _ in 0..8 {
            let p = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
            let holders = map.iter().filter(|(_, r)| r.contains(p)).count();
            assert_eq!(holders, 1, "case {case}: {p} has {holders} owners");
        }
    }
}

/// The overlap table is conservative: it never misses a server whose
/// partition is strictly within the radius of the point (under any
/// metric). Missing one would lose consistency updates; extras only
/// cost bandwidth.
#[test]
fn overlap_lookup_is_conservative() {
    let mut rng = SimRng::seed_from_u64(0xC0DE);
    for case in 0..CASES {
        let map = build_map(&split_script(&mut rng));
        let radius = rng.uniform(10.0, 300.0);
        let metric = metric_of(rng.uniform_u64(0, 3) as u8);
        let overlap = build_overlap(&map, radius, metric);
        for _ in 0..4 {
            let p = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
            let owner = map.owner_of(p).expect("interior point");
            let looked = overlap.table_for(owner).expect("table").lookup(p);
            for (server, rect) in map.iter() {
                if server != owner && rect.distance_to(p, metric) < radius {
                    assert!(
                        looked.contains(&server),
                        "case {case}: {server} at distance {} < {radius} missing from {looked:?}",
                        rect.distance_to(p, metric)
                    );
                }
            }
        }
    }
}

/// Under the Chebyshev metric the AABB construction is exact: the
/// table never includes a server whose partition is farther than the
/// radius (allowing the half-open cell boundary slack).
#[test]
fn chebyshev_lookup_is_tight() {
    let mut rng = SimRng::seed_from_u64(0xD1CE);
    for case in 0..CASES {
        let map = build_map(&split_script(&mut rng));
        let radius = rng.uniform(10.0, 300.0);
        let overlap = build_overlap(&map, radius, Metric::Chebyshev);
        for _ in 0..4 {
            let p = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
            let owner = map.owner_of(p).expect("interior point");
            let looked = overlap.table_for(owner).expect("table").lookup(p);
            for server in looked {
                let rect = map.range_of(*server).expect("live server");
                assert!(
                    rect.distance_to(p, Metric::Chebyshev) <= radius,
                    "case {case}: {server} included at distance {} > {radius}",
                    rect.distance_to(p, Metric::Chebyshev)
                );
            }
        }
    }
}

/// The table agrees with brute-force Equation 1 under Chebyshev for
/// cell-interior points (boundaries excluded by nudging the probe).
#[test]
fn chebyshev_matches_equation_1() {
    let mut rng = SimRng::seed_from_u64(0xE66);
    for case in 0..CASES {
        let map = build_map(&split_script(&mut rng));
        let radius = rng.uniform(10.0, 300.0);
        let overlap = build_overlap(&map, radius, Metric::Chebyshev);
        for _ in 0..4 {
            // Nudge off likely cell boundaries (which sit on rational grid
            // coordinates) by an irrational offset.
            let p = Point::new(
                rng.uniform(0.0, 999.0) + 0.382_217,
                rng.uniform(0.0, 999.0) + 0.618_033,
            );
            let owner = map.owner_of(p).expect("interior point");
            let looked = overlap.table_for(owner).expect("table").lookup(p).to_vec();
            let exact = consistency_set(&map, p, owner, radius, Metric::Chebyshev);
            assert_eq!(looked, exact, "case {case} at {p} radius {radius}");
        }
    }
}

/// Reclaiming children in reverse creation order always collapses the
/// tree back to a single world-owning server.
#[test]
fn lifo_reclaim_collapses_to_world() {
    for n_splits in 0..10u32 {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        // Chain splits: each new server splits from the previous one.
        for i in 0..n_splits {
            map.split(
                ServerId(i + 1),
                ServerId(i + 2),
                &SplitStrategy::SplitToLeft,
                &[],
            )
            .unwrap();
        }
        for i in (0..n_splits).rev() {
            map.reclaim(ServerId(i + 1), ServerId(i + 2)).unwrap();
        }
        assert_eq!(map.len(), 1);
        assert_eq!(map.range_of(ServerId(1)), Some(world));
    }
}

/// Overlap areas shrink monotonically with the radius.
#[test]
fn overlap_area_is_monotone_in_radius() {
    let mut rng = SimRng::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let map = build_map(&split_script(&mut rng));
        let small = build_overlap(&map, 20.0, Metric::Euclidean).total_overlap_area();
        let large = build_overlap(&map, 120.0, Metric::Euclidean).total_overlap_area();
        assert!(small <= large + 1e-9, "case {case}: {small} > {large}");
    }
}
