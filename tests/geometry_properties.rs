//! Property-based tests of the spatial substrate: the invariants that
//! make localized consistency sound, probed over randomized partition
//! topologies.

use matrix_middleware::geometry::{
    build_overlap, consistency_set, Metric, PartitionMap, Point, Rect, ServerId, SplitStrategy,
};
use proptest::prelude::*;

/// A random split script: (victim index, strategy selector).
fn split_script() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..16, 0u8..3), 0..12)
}

fn strategy_of(sel: u8) -> SplitStrategy {
    match sel % 3 {
        0 => SplitStrategy::SplitToLeft,
        1 => SplitStrategy::LongestAxis,
        _ => SplitStrategy::LoadAwareMedian,
    }
}

/// Builds a partition map by replaying a random split script.
fn build_map(script: &[(u8, u8)]) -> PartitionMap {
    let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let mut map = PartitionMap::new(world, ServerId(1));
    let mut next = 2u32;
    for (victim, sel) in script {
        let servers = map.servers();
        let target = servers[*victim as usize % servers.len()];
        if map.split(target, ServerId(next), &strategy_of(*sel), &[]).is_ok() {
            next += 1;
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splits never violate the partition invariants: disjoint interiors,
    /// exact world coverage.
    #[test]
    fn splits_preserve_partition_invariants(script in split_script()) {
        let map = build_map(&script);
        prop_assert!(map.validate().is_ok(), "{:?}", map.validate());
    }

    /// Every interior point has exactly one owner.
    #[test]
    fn ownership_is_unique(script in split_script(), x in 0.0..1000.0, y in 0.0..1000.0) {
        let map = build_map(&script);
        let p = Point::new(x, y);
        let holders = map.iter().filter(|(_, r)| r.contains(p)).count();
        prop_assert_eq!(holders, 1);
    }

    /// The overlap table is conservative: it never misses a server whose
    /// partition is strictly within the radius of the point (under any
    /// metric). Missing one would lose consistency updates; extras only
    /// cost bandwidth.
    #[test]
    fn overlap_lookup_is_conservative(
        script in split_script(),
        x in 0.0..1000.0,
        y in 0.0..1000.0,
        radius in 10.0..300.0,
        metric_sel in 0u8..3,
    ) {
        let metric = match metric_sel {
            0 => Metric::Euclidean,
            1 => Metric::Manhattan,
            _ => Metric::Chebyshev,
        };
        let map = build_map(&script);
        let overlap = build_overlap(&map, radius, metric);
        let p = Point::new(x, y);
        let owner = map.owner_of(p).expect("interior point");
        let looked = overlap.table_for(owner).expect("table").lookup(p);
        for (server, rect) in map.iter() {
            if server != owner && rect.distance_to(p, metric) < radius {
                prop_assert!(
                    looked.contains(&server),
                    "{server} at distance {} < {radius} missing from {looked:?}",
                    rect.distance_to(p, metric)
                );
            }
        }
    }

    /// Under the Chebyshev metric the AABB construction is exact: the
    /// table never includes a server whose partition is farther than the
    /// radius (allowing the half-open cell boundary slack).
    #[test]
    fn chebyshev_lookup_is_tight(
        script in split_script(),
        x in 0.0..1000.0,
        y in 0.0..1000.0,
        radius in 10.0..300.0,
    ) {
        let map = build_map(&script);
        let overlap = build_overlap(&map, radius, Metric::Chebyshev);
        let p = Point::new(x, y);
        let owner = map.owner_of(p).expect("interior point");
        let looked = overlap.table_for(owner).expect("table").lookup(p);
        for server in looked {
            let rect = map.range_of(*server).expect("live server");
            prop_assert!(
                rect.distance_to(p, Metric::Chebyshev) <= radius,
                "{server} included at distance {} > {radius}",
                rect.distance_to(p, Metric::Chebyshev)
            );
        }
    }

    /// The table agrees with brute-force Equation 1 under Chebyshev for
    /// cell-interior points (boundaries excluded by nudging the probe).
    #[test]
    fn chebyshev_matches_equation_1(
        script in split_script(),
        x in 0.0..999.0,
        y in 0.0..999.0,
        radius in 10.0..300.0,
    ) {
        // Nudge off likely cell boundaries (which sit on rational grid
        // coordinates) by an irrational offset.
        let p = Point::new(x + 0.382_217, y + 0.618_033);
        let map = build_map(&script);
        let overlap = build_overlap(&map, radius, Metric::Chebyshev);
        let owner = map.owner_of(p).expect("interior point");
        let looked = overlap.table_for(owner).expect("table").lookup(p).to_vec();
        let exact = consistency_set(&map, p, owner, radius, Metric::Chebyshev);
        prop_assert_eq!(looked, exact);
    }

    /// Reclaiming children in reverse creation order always collapses the
    /// tree back to a single world-owning server.
    #[test]
    fn lifo_reclaim_collapses_to_world(n_splits in 0u32..10) {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        // Chain splits: each new server splits from the previous one.
        for i in 0..n_splits {
            map.split(ServerId(i + 1), ServerId(i + 2), &SplitStrategy::SplitToLeft, &[]).unwrap();
        }
        for i in (0..n_splits).rev() {
            map.reclaim(ServerId(i + 1), ServerId(i + 2)).unwrap();
        }
        prop_assert_eq!(map.len(), 1);
        prop_assert_eq!(map.range_of(ServerId(1)), Some(world));
    }

    /// Overlap areas shrink monotonically with the radius.
    #[test]
    fn overlap_area_is_monotone_in_radius(script in split_script()) {
        let map = build_map(&script);
        let small = build_overlap(&map, 20.0, Metric::Euclidean).total_overlap_area();
        let large = build_overlap(&map, 120.0, Metric::Euclidean).total_overlap_area();
        prop_assert!(small <= large + 1e-9, "{small} > {large}");
    }
}
