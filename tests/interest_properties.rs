//! Receiver-set equivalence: the spatial-hash interest grid must return
//! exactly the same receivers as a brute-force linear scan, for every
//! metric, radius, grid resolution and hysteresis setting — including
//! query origins and subscriber positions sitting exactly on cell
//! boundaries. Fan-out correctness *is* consistency for a game server;
//! any divergence between the fast path and the obvious path is a lost
//! or spurious update.
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible).

use matrix_middleware::core::InterestGrid;
use matrix_middleware::geometry::{Metric, Point, Rect};
use matrix_middleware::sim::SimRng;
use std::collections::HashMap;

const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

fn metric_of(sel: u64) -> Metric {
    METRICS[(sel % 3) as usize]
}

/// Brute-force receiver set over the mirror position map.
fn linear_scan(
    positions: &HashMap<u32, Point>,
    origin: Point,
    radius: f64,
    metric: Metric,
) -> Vec<u32> {
    let mut out: Vec<u32> = positions
        .iter()
        .filter(|(_, p)| p.distance_by(origin, metric) <= radius)
        .map(|(k, _)| *k)
        .collect();
    out.sort_unstable();
    out
}

fn assert_equivalent(
    grid: &InterestGrid<u32>,
    positions: &HashMap<u32, Point>,
    origin: Point,
    radius: f64,
    metric: Metric,
    context: &str,
) {
    let mut from_grid = grid.query_collect(origin, radius, metric);
    from_grid.sort_unstable();
    let from_scan = linear_scan(positions, origin, radius, metric);
    assert_eq!(
        from_grid, from_scan,
        "{context}: grid and linear scan disagree at {origin} r={radius} {metric:?}"
    );
}

/// Random crowds, random worlds, random resolutions: the grid and the
/// linear scan agree on every query.
#[test]
fn grid_matches_linear_scan_on_random_crowds() {
    let mut rng = SimRng::seed_from_u64(0x0121_7E57);
    for case in 0..60 {
        // Random world rectangle (varied origin and aspect ratio).
        let x0 = rng.uniform(-500.0, 500.0);
        let y0 = rng.uniform(-500.0, 500.0);
        let w = rng.uniform(10.0, 2000.0);
        let h = rng.uniform(10.0, 2000.0);
        let world = Rect::from_coords(x0, y0, x0 + w, y0 + h);
        let cells = rng.uniform_u64(1, 64) as u32;
        let hysteresis = if rng.chance(0.5) {
            0.0
        } else {
            rng.uniform(0.0, (w.min(h) / cells as f64) * 0.5)
        };
        let mut grid: InterestGrid<u32> =
            InterestGrid::new(world, cells).with_hysteresis(hysteresis);
        let mut positions: HashMap<u32, Point> = HashMap::new();

        let n = rng.uniform_u64(0, 400) as u32;
        for key in 0..n {
            // Some positions stray outside the world (roaming clients).
            let p = Point::new(
                rng.uniform(x0 - 50.0, x0 + w + 50.0),
                rng.uniform(y0 - 50.0, y0 + h + 50.0),
            );
            grid.insert(key, p);
            positions.insert(key, p);
        }
        for _ in 0..6 {
            // Origins stray outside the world too (events from roaming
            // clients clamped into edge cells).
            let origin = Point::new(
                rng.uniform(x0 - 80.0, x0 + w + 80.0),
                rng.uniform(y0 - 80.0, y0 + h + 80.0),
            );
            let radius = rng.uniform(0.0, w.max(h) * 0.6);
            let metric = metric_of(rng.uniform_u64(0, 3));
            assert_equivalent(
                &grid,
                &positions,
                origin,
                radius,
                metric,
                &format!("case {case}"),
            );
        }
    }
}

/// Incremental updates (moves, removals, re-insertions) keep the grid in
/// lockstep with the mirror — including hysteresis-heavy jitter across
/// cell boundaries.
#[test]
fn grid_stays_equivalent_under_incremental_moves() {
    let mut rng = SimRng::seed_from_u64(0x00DD_50CC);
    for case in 0..40 {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let cells = rng.uniform_u64(2, 40) as u32;
        let cell = 1000.0 / cells as f64;
        let mut grid: InterestGrid<u32> =
            InterestGrid::new(world, cells).with_hysteresis(cell * 0.2);
        let mut positions: HashMap<u32, Point> = HashMap::new();

        for step in 0..300u32 {
            let key = rng.uniform_u64(0, 60) as u32;
            match rng.uniform_u64(0, 10) {
                // Mostly small jittery moves (boundary crossers).
                0..=6 => {
                    let base = positions.get(&key).copied().unwrap_or_else(|| {
                        Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
                    });
                    let p = Point::new(
                        base.x + rng.uniform(-cell, cell),
                        base.y + rng.uniform(-cell, cell),
                    );
                    grid.update(key, p);
                    positions.insert(key, p);
                }
                // Teleports.
                7..=8 => {
                    let p = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
                    grid.update(key, p);
                    positions.insert(key, p);
                }
                // Departures.
                _ => {
                    let was_tracked = positions.remove(&key).is_some();
                    assert_eq!(grid.remove(key), was_tracked, "case {case} step {step}");
                }
            }
            assert_eq!(grid.len(), positions.len(), "case {case} step {step}");
            if step % 10 == 0 {
                let origin = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
                let radius = rng.uniform(0.0, 400.0);
                let metric = metric_of(rng.uniform_u64(0, 3));
                assert_equivalent(
                    &grid,
                    &positions,
                    origin,
                    radius,
                    metric,
                    &format!("case {case} step {step}"),
                );
            }
        }
    }
}

/// Points exactly on cell boundaries — subscribers *and* query origins —
/// are where floor/clamp arithmetic goes wrong; pin them down explicitly
/// at several grid resolutions and radii whose balls end exactly on
/// boundaries.
#[test]
fn exact_cell_boundaries_are_handled() {
    let world = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
    for cells in [1u32, 2, 4, 5, 10, 50] {
        let cell = 100.0 / cells as f64;
        for hysteresis in [0.0, cell * 0.25] {
            let mut grid: InterestGrid<u32> =
                InterestGrid::new(world, cells).with_hysteresis(hysteresis);
            let mut positions: HashMap<u32, Point> = HashMap::new();
            let mut key = 0u32;
            // Subscribers on every cell corner, including the world's own
            // boundary corners.
            for i in 0..=cells {
                for j in 0..=cells {
                    let p = Point::new(i as f64 * cell, j as f64 * cell);
                    grid.insert(key, p);
                    positions.insert(key, p);
                    key += 1;
                }
            }
            // Query from corners and edge midpoints with radii that are
            // exact multiples of the cell size (boundary-touching balls).
            for metric in METRICS {
                for &origin in &[
                    Point::new(0.0, 0.0),
                    Point::new(100.0, 100.0),
                    Point::new(50.0, 0.0),
                    Point::new(cell, cell),
                    Point::new(cell * 1.5, cell),
                ] {
                    for radius in [0.0, cell, cell * 2.0, 50.0, 100.0] {
                        assert_equivalent(
                            &grid,
                            &positions,
                            origin,
                            radius,
                            metric,
                            &format!("cells={cells} hysteresis={hysteresis}"),
                        );
                    }
                }
            }
        }
    }
}

/// The grid path must agree with the scan when driven through the real
/// game-server fan-out (counting mode), across random crowds: this pins
/// the integration, not just the data structure.
#[test]
fn gameserver_fanout_counts_match_linear_scan() {
    use matrix_middleware::core::{
        ClientId, ClientToGame, GameServerConfig, GameServerNode, ServerId,
    };
    use matrix_middleware::sim::SimTime;

    let mut rng = SimRng::seed_from_u64(0xFA_0FF);
    for case in 0..20 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(20.0, 200.0);
        let metric = metric_of(rng.uniform_u64(0, 3));
        let cfg = GameServerConfig {
            metric,
            cells_per_axis: rng.uniform_u64(1, 48) as u32,
            ..GameServerConfig::default()
        };
        let mut node = GameServerNode::new(ServerId(1), cfg);
        node.register(world, radius);

        let n = rng.uniform_u64(2, 200);
        for id in 0..n {
            let pos = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
            node.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Join {
                    pos,
                    state_bytes: 0,
                },
            );
        }
        // A few movement rounds so the incremental index is exercised.
        for _ in 0..50 {
            let id = rng.uniform_u64(0, n);
            let pos = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
            node.on_client(SimTime::ZERO, ClientId(id), ClientToGame::Move { pos });
        }

        let actor = ClientId(0);
        let origin = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
        let before = node.stats().updates_fanned;
        node.on_client(SimTime::ZERO, actor, ClientToGame::Move { pos: origin });
        let counted = node.stats().updates_fanned - before;

        let expected = node
            .client_positions()
            .iter()
            .filter(|p| p.distance_by(origin, metric) <= radius)
            .count() as u64
            - 1; // the actor (at `origin`, distance 0) never sees itself
        assert_eq!(
            counted, expected,
            "case {case}: fan-out diverged from linear scan"
        );
    }
}
