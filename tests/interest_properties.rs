//! Interest-layer property suites.
//!
//! **Receiver-set equivalence**: the spatial-hash interest grid must
//! return exactly the same receivers as a brute-force linear scan, for
//! every metric, radius, grid resolution and hysteresis setting —
//! including query origins and subscriber positions sitting exactly on
//! cell boundaries. Fan-out correctness *is* consistency for a game
//! server; any divergence between the fast path and the obvious path is
//! a lost or spurious update.
//!
//! **Delta-stream equivalence**: decode(encode(stream)) must
//! reconstruct the *exact* absolute positions an absolute-only encoder
//! would send — across keyframe boundaries, client resyncs, teleports
//! and extreme magnitudes — and a rate-limited delta stream must stay
//! exactly decodable while delivering the most relevant subset of each
//! flush (converging to the absolute stream as budgets allow).
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible).

use matrix_middleware::core::InterestGrid;
use matrix_middleware::geometry::{Metric, Point, Rect};
use matrix_middleware::sim::SimRng;
use std::collections::HashMap;

const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

fn metric_of(sel: u64) -> Metric {
    METRICS[(sel % 3) as usize]
}

/// Brute-force receiver set over the mirror position map.
fn linear_scan(
    positions: &HashMap<u32, Point>,
    origin: Point,
    radius: f64,
    metric: Metric,
) -> Vec<u32> {
    let mut out: Vec<u32> = positions
        .iter()
        .filter(|(_, p)| p.distance_by(origin, metric) <= radius)
        .map(|(k, _)| *k)
        .collect();
    out.sort_unstable();
    out
}

fn assert_equivalent(
    grid: &InterestGrid<u32>,
    positions: &HashMap<u32, Point>,
    origin: Point,
    radius: f64,
    metric: Metric,
    context: &str,
) {
    let mut from_grid = grid.query_collect(origin, radius, metric);
    from_grid.sort_unstable();
    let from_scan = linear_scan(positions, origin, radius, metric);
    assert_eq!(
        from_grid, from_scan,
        "{context}: grid and linear scan disagree at {origin} r={radius} {metric:?}"
    );
}

/// Random crowds, random worlds, random resolutions: the grid and the
/// linear scan agree on every query.
#[test]
fn grid_matches_linear_scan_on_random_crowds() {
    let mut rng = SimRng::seed_from_u64(0x0121_7E57);
    for case in 0..60 {
        // Random world rectangle (varied origin and aspect ratio).
        let x0 = rng.uniform(-500.0, 500.0);
        let y0 = rng.uniform(-500.0, 500.0);
        let w = rng.uniform(10.0, 2000.0);
        let h = rng.uniform(10.0, 2000.0);
        let world = Rect::from_coords(x0, y0, x0 + w, y0 + h);
        let cells = rng.uniform_u64(1, 64) as u32;
        let hysteresis = if rng.chance(0.5) {
            0.0
        } else {
            rng.uniform(0.0, (w.min(h) / cells as f64) * 0.5)
        };
        let mut grid: InterestGrid<u32> =
            InterestGrid::new(world, cells).with_hysteresis(hysteresis);
        let mut positions: HashMap<u32, Point> = HashMap::new();

        let n = rng.uniform_u64(0, 400) as u32;
        for key in 0..n {
            // Some positions stray outside the world (roaming clients).
            let p = Point::new(
                rng.uniform(x0 - 50.0, x0 + w + 50.0),
                rng.uniform(y0 - 50.0, y0 + h + 50.0),
            );
            grid.insert(key, p);
            positions.insert(key, p);
        }
        for _ in 0..6 {
            // Origins stray outside the world too (events from roaming
            // clients clamped into edge cells).
            let origin = Point::new(
                rng.uniform(x0 - 80.0, x0 + w + 80.0),
                rng.uniform(y0 - 80.0, y0 + h + 80.0),
            );
            let radius = rng.uniform(0.0, w.max(h) * 0.6);
            let metric = metric_of(rng.uniform_u64(0, 3));
            assert_equivalent(
                &grid,
                &positions,
                origin,
                radius,
                metric,
                &format!("case {case}"),
            );
        }
    }
}

/// Incremental updates (moves, removals, re-insertions) keep the grid in
/// lockstep with the mirror — including hysteresis-heavy jitter across
/// cell boundaries.
#[test]
fn grid_stays_equivalent_under_incremental_moves() {
    let mut rng = SimRng::seed_from_u64(0x00DD_50CC);
    for case in 0..40 {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let cells = rng.uniform_u64(2, 40) as u32;
        let cell = 1000.0 / cells as f64;
        let mut grid: InterestGrid<u32> =
            InterestGrid::new(world, cells).with_hysteresis(cell * 0.2);
        let mut positions: HashMap<u32, Point> = HashMap::new();

        for step in 0..300u32 {
            let key = rng.uniform_u64(0, 60) as u32;
            match rng.uniform_u64(0, 10) {
                // Mostly small jittery moves (boundary crossers).
                0..=6 => {
                    let base = positions.get(&key).copied().unwrap_or_else(|| {
                        Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
                    });
                    let p = Point::new(
                        base.x + rng.uniform(-cell, cell),
                        base.y + rng.uniform(-cell, cell),
                    );
                    grid.update(key, p);
                    positions.insert(key, p);
                }
                // Teleports.
                7..=8 => {
                    let p = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
                    grid.update(key, p);
                    positions.insert(key, p);
                }
                // Departures.
                _ => {
                    let was_tracked = positions.remove(&key).is_some();
                    assert_eq!(grid.remove(key), was_tracked, "case {case} step {step}");
                }
            }
            assert_eq!(grid.len(), positions.len(), "case {case} step {step}");
            if step % 10 == 0 {
                let origin = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
                let radius = rng.uniform(0.0, 400.0);
                let metric = metric_of(rng.uniform_u64(0, 3));
                assert_equivalent(
                    &grid,
                    &positions,
                    origin,
                    radius,
                    metric,
                    &format!("case {case} step {step}"),
                );
            }
        }
    }
}

/// Points exactly on cell boundaries — subscribers *and* query origins —
/// are where floor/clamp arithmetic goes wrong; pin them down explicitly
/// at several grid resolutions and radii whose balls end exactly on
/// boundaries.
#[test]
fn exact_cell_boundaries_are_handled() {
    let world = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
    for cells in [1u32, 2, 4, 5, 10, 50] {
        let cell = 100.0 / cells as f64;
        for hysteresis in [0.0, cell * 0.25] {
            let mut grid: InterestGrid<u32> =
                InterestGrid::new(world, cells).with_hysteresis(hysteresis);
            let mut positions: HashMap<u32, Point> = HashMap::new();
            let mut key = 0u32;
            // Subscribers on every cell corner, including the world's own
            // boundary corners.
            for i in 0..=cells {
                for j in 0..=cells {
                    let p = Point::new(i as f64 * cell, j as f64 * cell);
                    grid.insert(key, p);
                    positions.insert(key, p);
                    key += 1;
                }
            }
            // Query from corners and edge midpoints with radii that are
            // exact multiples of the cell size (boundary-touching balls).
            for metric in METRICS {
                for &origin in &[
                    Point::new(0.0, 0.0),
                    Point::new(100.0, 100.0),
                    Point::new(50.0, 0.0),
                    Point::new(cell, cell),
                    Point::new(cell * 1.5, cell),
                ] {
                    for radius in [0.0, cell, cell * 2.0, 50.0, 100.0] {
                        assert_equivalent(
                            &grid,
                            &positions,
                            origin,
                            radius,
                            metric,
                            &format!("cells={cells} hysteresis={hysteresis}"),
                        );
                    }
                }
            }
        }
    }
}

/// The grid path must agree with the scan when driven through the real
/// game-server fan-out (counting mode), across random crowds: this pins
/// the integration, not just the data structure.
#[test]
fn gameserver_fanout_counts_match_linear_scan() {
    use matrix_middleware::core::{
        ClientId, ClientToGame, GameServerConfig, GameServerNode, ServerId,
    };
    use matrix_middleware::sim::SimTime;

    let mut rng = SimRng::seed_from_u64(0xFA_0FF);
    for case in 0..20 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(20.0, 200.0);
        let metric = metric_of(rng.uniform_u64(0, 3));
        let cfg = GameServerConfig {
            metric,
            cells_per_axis: rng.uniform_u64(1, 48) as u32,
            ..GameServerConfig::default()
        };
        let mut node = GameServerNode::new(ServerId(1), cfg);
        node.register(world, radius);

        let n = rng.uniform_u64(2, 200);
        for id in 0..n {
            let pos = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
            node.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Join {
                    pos,
                    state_bytes: 0,
                },
            );
        }
        // A few movement rounds so the incremental index is exercised.
        for _ in 0..50 {
            let id = rng.uniform_u64(0, n);
            let pos = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
            node.on_client(SimTime::ZERO, ClientId(id), ClientToGame::Move { pos });
        }

        let actor = ClientId(0);
        let origin = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
        let before = node.stats().updates_fanned;
        node.on_client(SimTime::ZERO, actor, ClientToGame::Move { pos: origin });
        let counted = node.stats().updates_fanned - before;

        let expected = node
            .client_positions()
            .iter()
            .filter(|p| p.distance_by(origin, metric) <= radius)
            .count() as u64
            - 1; // the actor (at `origin`, distance 0) never sees itself
        assert_eq!(
            counted, expected,
            "case {case}: fan-out diverged from linear scan"
        );
    }
}

// ---------------------------------------------------------------------------
// Delta-stream equivalence
// ---------------------------------------------------------------------------

/// The delta codec in isolation: for every keyframe interval, resync
/// pattern and origin distribution (lattice-quantised crowd steps as
/// the game server produces, off-lattice stragglers, teleports, extreme
/// magnitudes), decoding reproduces the absolute origins bit-for-bit.
#[test]
fn delta_codec_reconstructs_absolute_streams_exactly() {
    use matrix_middleware::core::{quantize, DeltaEncoder, DeltaStream};

    let quantum = DeltaEncoder::<u32>::DEFAULT_QUANTUM;
    let mut rng = SimRng::seed_from_u64(0x0DE1_7A57);
    for case in 0..80 {
        let keyframe_every = rng.uniform_u64(0, 7) as u32;
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(keyframe_every);
        let clients = rng.uniform_u64(1, 5) as u32;
        let mut streams: Vec<DeltaStream> = (0..clients).map(|_| DeltaStream::new()).collect();
        let mut cursors: Vec<Point> = (0..clients)
            .map(|_| Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0)))
            .collect();
        let mut deltas_seen = 0usize;

        for flush in 0..40 {
            let cid = rng.uniform_u64(0, clients as u64) as u32;
            // A resync (join / handover) drops state on both sides.
            if rng.chance(0.1) {
                enc.reset(cid);
                streams[cid as usize].reset();
            }
            let n = rng.uniform_u64(1, 9) as usize;
            let origins: Vec<Point> = (0..n)
                .map(|_| {
                    let p = cursors[cid as usize];
                    let next = match rng.uniform_u64(0, 10) {
                        // Mostly small correlated steps snapped onto the
                        // wire lattice, as `GameServerNode::fan_out`
                        // produces (the crowd case: these must delta).
                        0..=5 => quantize(
                            Point::new(p.x + rng.uniform(-5.0, 5.0), p.y + rng.uniform(-5.0, 5.0)),
                            quantum,
                        ),
                        // Off-lattice stragglers: exact, but not
                        // representable in the compact frame.
                        6 => Point::new(p.x + rng.uniform(-5.0, 5.0), p.y + rng.uniform(-5.0, 5.0)),
                        // Teleports past the delta threshold.
                        7..=8 => Point::new(rng.uniform(-1.0e5, 1.0e5), rng.uniform(-1.0e5, 1.0e5)),
                        // Extreme magnitudes where f64 deltas cannot
                        // round-trip: the encoder must keyframe.
                        _ => Point::new(rng.uniform(-1.0, 1.0) * 1.0e15, rng.uniform(-1.0, 1.0)),
                    };
                    cursors[cid as usize] = next;
                    next
                })
                .collect();
            let encoded = enc.encode_flush(cid, &origins);
            assert_eq!(encoded.len(), origins.len());
            deltas_seen += encoded.iter().filter(|e| !e.is_keyframe()).count();
            let decoded: Vec<Point> = encoded
                .iter()
                .map(|&e| {
                    streams[cid as usize]
                        .apply(e)
                        .expect("sender keyframes after every resync")
                })
                .collect();
            assert_eq!(
                decoded, origins,
                "case {case} flush {flush} (keyframe_every={keyframe_every}): \
                 decode(encode(..)) must be exact"
            );
            if keyframe_every == 0 {
                assert!(
                    encoded.iter().all(|e| e.is_keyframe()),
                    "keyframe_every=0 disables deltas"
                );
            }
        }
        if keyframe_every > 0 {
            assert!(
                deltas_seen > 0,
                "case {case}: lattice steps must actually exercise the delta path"
            );
        }
    }
}

/// The full game-server pipeline: a delta-encoding node's client streams
/// reconstruct to exactly the item sequences an absolute-origin node
/// emits for identical inputs, across flush boundaries and client
/// resyncs — and with rate limiting on, every flush stays exactly
/// decodable and delivers the nearest subset of the absolute flush.
#[test]
fn delta_node_streams_reconstruct_absolute_node_streams() {
    use matrix_middleware::core::{
        reconstruct_updates, BatchItem, ClientId, ClientToGame, GameAction, GameServerConfig,
        GameServerNode, GameToClient, ServerId, UpdateItem,
    };
    use matrix_middleware::sim::{SimDuration, SimTime};
    use std::collections::BTreeMap;

    type Batches = BTreeMap<ClientId, Vec<Vec<BatchItem>>>;

    // One scripted input stream, replayed into differently configured
    // nodes.
    #[derive(Clone)]
    enum Step {
        Client(u64, ClientId, ClientToGame),
        Tick(u64),
    }

    fn replay(cfg: GameServerConfig, world: Rect, radius: f64, script: &[Step]) -> Batches {
        let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
        node.register(world, radius);
        let mut batches: Batches = BTreeMap::new();
        let mut collect = |actions: Vec<GameAction>| {
            for a in actions {
                if let GameAction::ToClient(cid, GameToClient::UpdateBatch { updates }) = a {
                    batches.entry(cid).or_default().push(updates);
                }
            }
        };
        for step in script {
            match step {
                Step::Client(t, cid, msg) => {
                    collect(node.on_client(SimTime::from_millis(*t), *cid, msg.clone()))
                }
                Step::Tick(t) => collect(node.on_tick(SimTime::from_millis(*t), 0.0)),
            }
        }
        batches
    }

    fn absolutes(items: &[BatchItem]) -> Vec<UpdateItem> {
        items
            .iter()
            .map(|i| match i {
                BatchItem::Absolute(u) => *u,
                BatchItem::Delta(_) => panic!("absolute node must never emit deltas"),
            })
            .collect()
    }

    let mut rng = SimRng::seed_from_u64(0x5E0_0E11);
    for case in 0..12 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(40.0, 150.0);
        let clients = rng.uniform_u64(4, 14);
        // Script: joins, correlated moves, actions, occasional rejoins,
        // periodic ticks.
        let mut script = Vec::new();
        let mut pos: Vec<Point> = Vec::new();
        for id in 0..clients {
            let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
            pos.push(p);
            script.push(Step::Client(
                0,
                ClientId(id),
                ClientToGame::Join {
                    pos: p,
                    state_bytes: 0,
                },
            ));
        }
        let mut t = 0u64;
        for _ in 0..60 {
            t += rng.uniform_u64(5, 30);
            let id = rng.uniform_u64(0, clients);
            match rng.uniform_u64(0, 10) {
                0..=5 => {
                    let p = Point::new(
                        (pos[id as usize].x + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                        (pos[id as usize].y + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                    );
                    pos[id as usize] = p;
                    script.push(Step::Client(t, ClientId(id), ClientToGame::Move { pos: p }));
                }
                6..=7 => script.push(Step::Client(
                    t,
                    ClientId(id),
                    ClientToGame::Action {
                        pos: pos[id as usize],
                        payload_bytes: rng.uniform_u64(0, 200) as usize,
                    },
                )),
                8 => script.push(Step::Tick(t)),
                // Resync: leave and immediately rejoin elsewhere.
                _ => {
                    script.push(Step::Client(t, ClientId(id), ClientToGame::Leave));
                    let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
                    pos[id as usize] = p;
                    script.push(Step::Client(
                        t,
                        ClientId(id),
                        ClientToGame::Join {
                            pos: p,
                            state_bytes: 0,
                        },
                    ));
                }
            }
        }
        script.push(Step::Tick(t + 100));

        let base_cfg = GameServerConfig {
            emit_updates: true,
            batch_interval: SimDuration::from_millis(50),
            ..GameServerConfig::default()
        };
        let absolute_cfg = GameServerConfig {
            keyframe_every: 0,
            max_updates_per_flush: 0,
            client_budget_bytes: 0,
            ..base_cfg
        };
        let delta_cfg = GameServerConfig {
            keyframe_every: rng.uniform_u64(1, 7) as u32,
            max_updates_per_flush: 0,
            client_budget_bytes: 0,
            ..base_cfg
        };
        let capped_cfg = GameServerConfig {
            keyframe_every: rng.uniform_u64(1, 7) as u32,
            max_updates_per_flush: rng.uniform_u64(1, 4) as u32,
            client_budget_bytes: 0,
            ..base_cfg
        };

        let reference = replay(absolute_cfg, world, radius, &script);
        let delta = replay(delta_cfg, world, radius, &script);
        let capped = replay(capped_cfg, world, radius, &script);

        // Uncapped delta node ≡ absolute node after reconstruction.
        assert_eq!(
            reference.keys().collect::<Vec<_>>(),
            delta.keys().collect::<Vec<_>>(),
            "case {case}: same receivers"
        );
        for (cid, ref_batches) in &reference {
            let delta_batches = &delta[cid];
            assert_eq!(
                ref_batches.len(),
                delta_batches.len(),
                "case {case} {cid:?}"
            );
            let mut base = None;
            for (i, (r, d)) in ref_batches.iter().zip(delta_batches).enumerate() {
                let rebuilt = reconstruct_updates(&mut base, d)
                    .expect("delta stream must always be decodable in order");
                assert_eq!(
                    rebuilt,
                    absolutes(r),
                    "case {case} {cid:?} flush {i}: reconstruction must equal \
                     the absolute-origin stream exactly"
                );
            }
        }

        // Rate-limited node: every flush decodes exactly, is the nearest
        // subset of the corresponding absolute flush, and respects the cap.
        let cap = capped_cfg.max_updates_per_flush as usize;
        for (cid, cap_batches) in &capped {
            let ref_batches = &reference[cid];
            assert_eq!(ref_batches.len(), cap_batches.len(), "case {case} {cid:?}");
            let mut base = None;
            for (i, (r, c)) in ref_batches.iter().zip(cap_batches).enumerate() {
                let rebuilt = reconstruct_updates(&mut base, c)
                    .expect("rate limiting must never corrupt the delta stream");
                assert!(
                    rebuilt.len() <= cap && !rebuilt.is_empty(),
                    "case {case} {cid:?} flush {i}: cap violated"
                );
                let full = absolutes(r);
                // Every delivered item is one of the absolute node's
                // items for the same flush, reconstructed exactly
                // (degradation defers events, it never invents or warps
                // them).
                for item in &rebuilt {
                    assert!(
                        full.contains(item),
                        "case {case} {cid:?} flush {i}: {item:?} not in the absolute flush"
                    );
                }
                // Without pressure the two flushes are identical. Under
                // pressure, degradation is entity-aware: repeated
                // same-sized updates from one entity supersede each
                // other, so a degraded flush never ships two states of
                // the same entity (the nearest *surviving* items ship,
                // which may displace a stale nearer one).
                if rebuilt.len() == full.len() {
                    assert_eq!(rebuilt, full, "case {case} {cid:?} flush {i}");
                } else {
                    let mut seen = std::collections::BTreeSet::new();
                    for item in &rebuilt {
                        if item.entity != 0 {
                            assert!(
                                seen.insert((item.entity, item.payload_bytes)),
                                "case {case} {cid:?} flush {i}: superseded state shipped \
                                 in a degraded flush: {item:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
