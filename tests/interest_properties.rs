//! Interest-layer property suites.
//!
//! **Receiver-set equivalence**: the spatial-hash interest grid must
//! return exactly the same receivers as a brute-force linear scan, for
//! every metric, radius, grid resolution and hysteresis setting —
//! including query origins and subscriber positions sitting exactly on
//! cell boundaries. Fan-out correctness *is* consistency for a game
//! server; any divergence between the fast path and the obvious path is
//! a lost or spurious update.
//!
//! **Delta-stream equivalence**: decode(encode(stream)) must
//! reconstruct the *exact* absolute positions an absolute-only encoder
//! would send — across keyframe boundaries, client resyncs, teleports
//! and extreme magnitudes — and a rate-limited delta stream must stay
//! exactly decodable while delivering the most relevant subset of each
//! flush (converging to the absolute stream as budgets allow).
//!
//! **Pipeline equivalence**: with rings untiered and the auto-tuner
//! off, the composed `DisseminationPipeline` inside `GameServerNode`
//! must produce **byte-identical** wire output to the pre-refactor
//! hand-wired flush path (grid → batcher → policy → encoder glued
//! directly), for every random script of joins, moves, actions, leaves
//! and ticks — the refactor is a pure re-seaming, not a behaviour
//! change.
//!
//! **Shard-count invariance**: a node flushing through any
//! `flush_workers` in 1..=8 — shards walked sequentially or on real
//! threads — must emit byte-identical wire frames in the same order;
//! the sharded flush engine is a throughput knob, never a behaviour
//! knob.
//!
//! **Ring membership / sampling**: every delivered item carries the
//! ring its receiver's enqueue-time distance falls in, nothing outside
//! the outermost ring is delivered, the near ring is never sampled,
//! and each outer ring delivers exactly ⌈candidates / rate⌉ items per
//! receiver (deterministic, evenly spaced sampling).
//!
//! **Tuner hysteresis**: the density-driven grid tuner never leaves its
//! bounds, never reacts to jitter inside the hysteresis band, always
//! reacts to a sustained decisive change within its streak, and
//! reproduces its decisions after a state export/restore (the failover
//! inheritance path).
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible).

use matrix_middleware::core::InterestGrid;
use matrix_middleware::geometry::{Metric, Point, Rect};
use matrix_middleware::sim::SimRng;
use std::collections::HashMap;

const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

fn metric_of(sel: u64) -> Metric {
    METRICS[(sel % 3) as usize]
}

/// Brute-force receiver set over the mirror position map.
fn linear_scan(
    positions: &HashMap<u32, Point>,
    origin: Point,
    radius: f64,
    metric: Metric,
) -> Vec<u32> {
    let mut out: Vec<u32> = positions
        .iter()
        .filter(|(_, p)| p.distance_by(origin, metric) <= radius)
        .map(|(k, _)| *k)
        .collect();
    out.sort_unstable();
    out
}

fn assert_equivalent(
    grid: &InterestGrid<u32>,
    positions: &HashMap<u32, Point>,
    origin: Point,
    radius: f64,
    metric: Metric,
    context: &str,
) {
    let mut from_grid = grid.query_collect(origin, radius, metric);
    from_grid.sort_unstable();
    let from_scan = linear_scan(positions, origin, radius, metric);
    assert_eq!(
        from_grid, from_scan,
        "{context}: grid and linear scan disagree at {origin} r={radius} {metric:?}"
    );
}

/// Random crowds, random worlds, random resolutions: the grid and the
/// linear scan agree on every query.
#[test]
fn grid_matches_linear_scan_on_random_crowds() {
    let mut rng = SimRng::seed_from_u64(0x0121_7E57);
    for case in 0..60 {
        // Random world rectangle (varied origin and aspect ratio).
        let x0 = rng.uniform(-500.0, 500.0);
        let y0 = rng.uniform(-500.0, 500.0);
        let w = rng.uniform(10.0, 2000.0);
        let h = rng.uniform(10.0, 2000.0);
        let world = Rect::from_coords(x0, y0, x0 + w, y0 + h);
        let cells = rng.uniform_u64(1, 64) as u32;
        let hysteresis = if rng.chance(0.5) {
            0.0
        } else {
            rng.uniform(0.0, (w.min(h) / cells as f64) * 0.5)
        };
        let mut grid: InterestGrid<u32> =
            InterestGrid::new(world, cells).with_hysteresis(hysteresis);
        let mut positions: HashMap<u32, Point> = HashMap::new();

        let n = rng.uniform_u64(0, 400) as u32;
        for key in 0..n {
            // Some positions stray outside the world (roaming clients).
            let p = Point::new(
                rng.uniform(x0 - 50.0, x0 + w + 50.0),
                rng.uniform(y0 - 50.0, y0 + h + 50.0),
            );
            grid.insert(key, p);
            positions.insert(key, p);
        }
        for _ in 0..6 {
            // Origins stray outside the world too (events from roaming
            // clients clamped into edge cells).
            let origin = Point::new(
                rng.uniform(x0 - 80.0, x0 + w + 80.0),
                rng.uniform(y0 - 80.0, y0 + h + 80.0),
            );
            let radius = rng.uniform(0.0, w.max(h) * 0.6);
            let metric = metric_of(rng.uniform_u64(0, 3));
            assert_equivalent(
                &grid,
                &positions,
                origin,
                radius,
                metric,
                &format!("case {case}"),
            );
        }
    }
}

/// Incremental updates (moves, removals, re-insertions) keep the grid in
/// lockstep with the mirror — including hysteresis-heavy jitter across
/// cell boundaries.
#[test]
fn grid_stays_equivalent_under_incremental_moves() {
    let mut rng = SimRng::seed_from_u64(0x00DD_50CC);
    for case in 0..40 {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let cells = rng.uniform_u64(2, 40) as u32;
        let cell = 1000.0 / cells as f64;
        let mut grid: InterestGrid<u32> =
            InterestGrid::new(world, cells).with_hysteresis(cell * 0.2);
        let mut positions: HashMap<u32, Point> = HashMap::new();

        for step in 0..300u32 {
            let key = rng.uniform_u64(0, 60) as u32;
            match rng.uniform_u64(0, 10) {
                // Mostly small jittery moves (boundary crossers).
                0..=6 => {
                    let base = positions.get(&key).copied().unwrap_or_else(|| {
                        Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
                    });
                    let p = Point::new(
                        base.x + rng.uniform(-cell, cell),
                        base.y + rng.uniform(-cell, cell),
                    );
                    grid.update(key, p);
                    positions.insert(key, p);
                }
                // Teleports.
                7..=8 => {
                    let p = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
                    grid.update(key, p);
                    positions.insert(key, p);
                }
                // Departures.
                _ => {
                    let was_tracked = positions.remove(&key).is_some();
                    assert_eq!(grid.remove(key), was_tracked, "case {case} step {step}");
                }
            }
            assert_eq!(grid.len(), positions.len(), "case {case} step {step}");
            if step % 10 == 0 {
                let origin = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
                let radius = rng.uniform(0.0, 400.0);
                let metric = metric_of(rng.uniform_u64(0, 3));
                assert_equivalent(
                    &grid,
                    &positions,
                    origin,
                    radius,
                    metric,
                    &format!("case {case} step {step}"),
                );
            }
        }
    }
}

/// Points exactly on cell boundaries — subscribers *and* query origins —
/// are where floor/clamp arithmetic goes wrong; pin them down explicitly
/// at several grid resolutions and radii whose balls end exactly on
/// boundaries.
#[test]
fn exact_cell_boundaries_are_handled() {
    let world = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
    for cells in [1u32, 2, 4, 5, 10, 50] {
        let cell = 100.0 / cells as f64;
        for hysteresis in [0.0, cell * 0.25] {
            let mut grid: InterestGrid<u32> =
                InterestGrid::new(world, cells).with_hysteresis(hysteresis);
            let mut positions: HashMap<u32, Point> = HashMap::new();
            let mut key = 0u32;
            // Subscribers on every cell corner, including the world's own
            // boundary corners.
            for i in 0..=cells {
                for j in 0..=cells {
                    let p = Point::new(i as f64 * cell, j as f64 * cell);
                    grid.insert(key, p);
                    positions.insert(key, p);
                    key += 1;
                }
            }
            // Query from corners and edge midpoints with radii that are
            // exact multiples of the cell size (boundary-touching balls).
            for metric in METRICS {
                for &origin in &[
                    Point::new(0.0, 0.0),
                    Point::new(100.0, 100.0),
                    Point::new(50.0, 0.0),
                    Point::new(cell, cell),
                    Point::new(cell * 1.5, cell),
                ] {
                    for radius in [0.0, cell, cell * 2.0, 50.0, 100.0] {
                        assert_equivalent(
                            &grid,
                            &positions,
                            origin,
                            radius,
                            metric,
                            &format!("cells={cells} hysteresis={hysteresis}"),
                        );
                    }
                }
            }
        }
    }
}

/// The grid path must agree with the scan when driven through the real
/// game-server fan-out (counting mode), across random crowds: this pins
/// the integration, not just the data structure.
#[test]
fn gameserver_fanout_counts_match_linear_scan() {
    use matrix_middleware::core::{
        ClientId, ClientToGame, GameServerConfig, GameServerNode, ServerId,
    };
    use matrix_middleware::sim::SimTime;

    let mut rng = SimRng::seed_from_u64(0xFA_0FF);
    for case in 0..20 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(20.0, 200.0);
        let metric = metric_of(rng.uniform_u64(0, 3));
        let cfg = GameServerConfig {
            metric,
            cells_per_axis: rng.uniform_u64(1, 48) as u32,
            ..GameServerConfig::default()
        };
        let mut node = GameServerNode::new(ServerId(1), cfg);
        node.register(world, radius);

        let n = rng.uniform_u64(2, 200);
        for id in 0..n {
            let pos = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
            node.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Join {
                    pos,
                    state_bytes: 0,
                },
            );
        }
        // A few movement rounds so the incremental index is exercised.
        for _ in 0..50 {
            let id = rng.uniform_u64(0, n);
            let pos = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
            node.on_client(SimTime::ZERO, ClientId(id), ClientToGame::Move { pos });
        }

        let actor = ClientId(0);
        let origin = Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0));
        let before = node.stats().updates_fanned;
        node.on_client(SimTime::ZERO, actor, ClientToGame::Move { pos: origin });
        let counted = node.stats().updates_fanned - before;

        let expected = node
            .client_positions()
            .iter()
            .filter(|p| p.distance_by(origin, metric) <= radius)
            .count() as u64
            - 1; // the actor (at `origin`, distance 0) never sees itself
        assert_eq!(
            counted, expected,
            "case {case}: fan-out diverged from linear scan"
        );
    }
}

// ---------------------------------------------------------------------------
// Delta-stream equivalence
// ---------------------------------------------------------------------------

/// The delta codec in isolation: for every keyframe interval, resync
/// pattern and origin distribution (lattice-quantised crowd steps as
/// the game server produces, off-lattice stragglers, teleports, extreme
/// magnitudes), decoding reproduces the absolute origins bit-for-bit.
#[test]
fn delta_codec_reconstructs_absolute_streams_exactly() {
    use matrix_middleware::core::{quantize, DeltaEncoder, DeltaStream};

    let quantum = DeltaEncoder::<u32>::DEFAULT_QUANTUM;
    let mut rng = SimRng::seed_from_u64(0x0DE1_7A57);
    for case in 0..80 {
        let keyframe_every = rng.uniform_u64(0, 7) as u32;
        let mut enc: DeltaEncoder<u32> = DeltaEncoder::new(keyframe_every);
        let clients = rng.uniform_u64(1, 5) as u32;
        let mut streams: Vec<DeltaStream> = (0..clients).map(|_| DeltaStream::new()).collect();
        let mut cursors: Vec<Point> = (0..clients)
            .map(|_| Point::new(rng.uniform(0.0, 800.0), rng.uniform(0.0, 800.0)))
            .collect();
        let mut deltas_seen = 0usize;

        for flush in 0..40 {
            let cid = rng.uniform_u64(0, clients as u64) as u32;
            // A resync (join / handover) drops state on both sides.
            if rng.chance(0.1) {
                enc.reset(cid);
                streams[cid as usize].reset();
            }
            let n = rng.uniform_u64(1, 9) as usize;
            let origins: Vec<Point> = (0..n)
                .map(|_| {
                    let p = cursors[cid as usize];
                    let next = match rng.uniform_u64(0, 10) {
                        // Mostly small correlated steps snapped onto the
                        // wire lattice, as `GameServerNode::fan_out`
                        // produces (the crowd case: these must delta).
                        0..=5 => quantize(
                            Point::new(p.x + rng.uniform(-5.0, 5.0), p.y + rng.uniform(-5.0, 5.0)),
                            quantum,
                        ),
                        // Off-lattice stragglers: exact, but not
                        // representable in the compact frame.
                        6 => Point::new(p.x + rng.uniform(-5.0, 5.0), p.y + rng.uniform(-5.0, 5.0)),
                        // Teleports past the delta threshold.
                        7..=8 => Point::new(rng.uniform(-1.0e5, 1.0e5), rng.uniform(-1.0e5, 1.0e5)),
                        // Extreme magnitudes where f64 deltas cannot
                        // round-trip: the encoder must keyframe.
                        _ => Point::new(rng.uniform(-1.0, 1.0) * 1.0e15, rng.uniform(-1.0, 1.0)),
                    };
                    cursors[cid as usize] = next;
                    next
                })
                .collect();
            let encoded = enc.encode_flush(cid, &origins);
            assert_eq!(encoded.len(), origins.len());
            deltas_seen += encoded.iter().filter(|e| !e.is_keyframe()).count();
            let decoded: Vec<Point> = encoded
                .iter()
                .map(|&e| {
                    streams[cid as usize]
                        .apply(e)
                        .expect("sender keyframes after every resync")
                })
                .collect();
            assert_eq!(
                decoded, origins,
                "case {case} flush {flush} (keyframe_every={keyframe_every}): \
                 decode(encode(..)) must be exact"
            );
            if keyframe_every == 0 {
                assert!(
                    encoded.iter().all(|e| e.is_keyframe()),
                    "keyframe_every=0 disables deltas"
                );
            }
        }
        if keyframe_every > 0 {
            assert!(
                deltas_seen > 0,
                "case {case}: lattice steps must actually exercise the delta path"
            );
        }
    }
}

/// The full game-server pipeline: a delta-encoding node's client streams
/// reconstruct to exactly the item sequences an absolute-origin node
/// emits for identical inputs, across flush boundaries and client
/// resyncs — and with rate limiting on, every flush stays exactly
/// decodable and delivers the nearest subset of the absolute flush.
#[test]
fn delta_node_streams_reconstruct_absolute_node_streams() {
    use matrix_middleware::core::{
        reconstruct_updates, BatchItem, ClientId, ClientToGame, GameAction, GameServerConfig,
        GameServerNode, GameToClient, ServerId, UpdateItem,
    };
    use matrix_middleware::sim::{SimDuration, SimTime};
    use std::collections::BTreeMap;

    type Batches = BTreeMap<ClientId, Vec<Vec<BatchItem>>>;

    // One scripted input stream, replayed into differently configured
    // nodes.
    #[derive(Clone)]
    enum Step {
        Client(u64, ClientId, ClientToGame),
        Tick(u64),
    }

    fn replay(cfg: GameServerConfig, world: Rect, radius: f64, script: &[Step]) -> Batches {
        let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
        node.register(world, radius);
        let mut batches: Batches = BTreeMap::new();
        let mut collect = |actions: Vec<GameAction>| {
            for a in actions {
                if let GameAction::ToClient(cid, GameToClient::UpdateBatch { updates }) = a {
                    batches.entry(cid).or_default().push(updates);
                }
            }
        };
        for step in script {
            match step {
                Step::Client(t, cid, msg) => {
                    collect(node.on_client(SimTime::from_millis(*t), *cid, msg.clone()))
                }
                Step::Tick(t) => collect(node.on_tick(SimTime::from_millis(*t), 0.0)),
            }
        }
        batches
    }

    fn absolutes(items: &[BatchItem]) -> Vec<UpdateItem> {
        items
            .iter()
            .map(|i| match i {
                BatchItem::Absolute(u) => *u,
                BatchItem::Delta(_) => panic!("absolute node must never emit deltas"),
            })
            .collect()
    }

    let mut rng = SimRng::seed_from_u64(0x5E0_0E11);
    for case in 0..12 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(40.0, 150.0);
        let clients = rng.uniform_u64(4, 14);
        // Script: joins, correlated moves, actions, occasional rejoins,
        // periodic ticks.
        let mut script = Vec::new();
        let mut pos: Vec<Point> = Vec::new();
        for id in 0..clients {
            let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
            pos.push(p);
            script.push(Step::Client(
                0,
                ClientId(id),
                ClientToGame::Join {
                    pos: p,
                    state_bytes: 0,
                },
            ));
        }
        let mut t = 0u64;
        for _ in 0..60 {
            t += rng.uniform_u64(5, 30);
            let id = rng.uniform_u64(0, clients);
            match rng.uniform_u64(0, 10) {
                0..=5 => {
                    let p = Point::new(
                        (pos[id as usize].x + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                        (pos[id as usize].y + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                    );
                    pos[id as usize] = p;
                    script.push(Step::Client(t, ClientId(id), ClientToGame::Move { pos: p }));
                }
                6..=7 => script.push(Step::Client(
                    t,
                    ClientId(id),
                    ClientToGame::Action {
                        pos: pos[id as usize],
                        payload_bytes: rng.uniform_u64(0, 200) as usize,
                    },
                )),
                8 => script.push(Step::Tick(t)),
                // Resync: leave and immediately rejoin elsewhere.
                _ => {
                    script.push(Step::Client(t, ClientId(id), ClientToGame::Leave));
                    let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
                    pos[id as usize] = p;
                    script.push(Step::Client(
                        t,
                        ClientId(id),
                        ClientToGame::Join {
                            pos: p,
                            state_bytes: 0,
                        },
                    ));
                }
            }
        }
        script.push(Step::Tick(t + 100));

        let base_cfg = GameServerConfig {
            emit_updates: true,
            batch_interval: SimDuration::from_millis(50),
            ..GameServerConfig::default()
        };
        let absolute_cfg = GameServerConfig {
            keyframe_every: 0,
            max_updates_per_flush: 0,
            client_budget_bytes: 0,
            ..base_cfg
        };
        let delta_cfg = GameServerConfig {
            keyframe_every: rng.uniform_u64(1, 7) as u32,
            max_updates_per_flush: 0,
            client_budget_bytes: 0,
            ..base_cfg
        };
        let capped_cfg = GameServerConfig {
            keyframe_every: rng.uniform_u64(1, 7) as u32,
            max_updates_per_flush: rng.uniform_u64(1, 4) as u32,
            client_budget_bytes: 0,
            ..base_cfg
        };

        let reference = replay(absolute_cfg, world, radius, &script);
        let delta = replay(delta_cfg, world, radius, &script);
        let capped = replay(capped_cfg, world, radius, &script);

        // Uncapped delta node ≡ absolute node after reconstruction.
        assert_eq!(
            reference.keys().collect::<Vec<_>>(),
            delta.keys().collect::<Vec<_>>(),
            "case {case}: same receivers"
        );
        for (cid, ref_batches) in &reference {
            let delta_batches = &delta[cid];
            assert_eq!(
                ref_batches.len(),
                delta_batches.len(),
                "case {case} {cid:?}"
            );
            let mut base = None;
            for (i, (r, d)) in ref_batches.iter().zip(delta_batches).enumerate() {
                let rebuilt = reconstruct_updates(&mut base, d)
                    .expect("delta stream must always be decodable in order");
                assert_eq!(
                    rebuilt,
                    absolutes(r),
                    "case {case} {cid:?} flush {i}: reconstruction must equal \
                     the absolute-origin stream exactly"
                );
            }
        }

        // Rate-limited node: every flush decodes exactly, is the nearest
        // subset of the corresponding absolute flush, and respects the cap.
        let cap = capped_cfg.max_updates_per_flush as usize;
        for (cid, cap_batches) in &capped {
            let ref_batches = &reference[cid];
            assert_eq!(ref_batches.len(), cap_batches.len(), "case {case} {cid:?}");
            let mut base = None;
            for (i, (r, c)) in ref_batches.iter().zip(cap_batches).enumerate() {
                let rebuilt = reconstruct_updates(&mut base, c)
                    .expect("rate limiting must never corrupt the delta stream");
                assert!(
                    rebuilt.len() <= cap && !rebuilt.is_empty(),
                    "case {case} {cid:?} flush {i}: cap violated"
                );
                let full = absolutes(r);
                // Every delivered item is one of the absolute node's
                // items for the same flush, reconstructed exactly
                // (degradation defers events, it never invents or warps
                // them).
                for item in &rebuilt {
                    assert!(
                        full.contains(item),
                        "case {case} {cid:?} flush {i}: {item:?} not in the absolute flush"
                    );
                }
                // Without pressure the two flushes are identical. Under
                // pressure, degradation is entity-aware: repeated
                // same-sized updates from one entity supersede each
                // other, so a degraded flush never ships two states of
                // the same entity (the nearest *surviving* items ship,
                // which may displace a stale nearer one).
                if rebuilt.len() == full.len() {
                    assert_eq!(rebuilt, full, "case {case} {cid:?} flush {i}");
                } else {
                    let mut seen = std::collections::BTreeSet::new();
                    for item in &rebuilt {
                        if item.entity != 0 {
                            assert!(
                                seen.insert((item.entity, item.payload_bytes)),
                                "case {case} {cid:?} flush {i}: superseded state shipped \
                                 in a degraded flush: {item:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline equivalence (the refactor-safety pin)
// ---------------------------------------------------------------------------

/// With rings untiered and the tuner off, the pipeline-backed
/// `GameServerNode` must emit byte-for-byte the wire frames the
/// pre-refactor hand-wired flush path produced: same receivers, same
/// batch boundaries, same item order, same keyframe/delta decisions,
/// same encoded JSON. The reference below *is* that pre-refactor path —
/// `InterestGrid` + `UpdateBatcher` + `FlushPolicy` + `DeltaEncoder`
/// glued together exactly as `GameServerNode::flush_updates` wired them
/// before the `DisseminationPipeline` existed.
#[test]
fn pipeline_is_byte_identical_to_the_hand_wired_flush_path() {
    use matrix_middleware::core::{
        codec, quantize, BatchItem, ClientId, ClientToGame, DeltaEncoder, DeltaItem, FlushPolicy,
        GameAction, GameServerConfig, GameServerNode, GameToClient, ServerId, UpdateBatcher,
        UpdateItem,
    };
    use matrix_middleware::sim::{SimDuration, SimTime};
    use std::collections::BTreeMap;

    /// The pre-refactor send path, reproduced verbatim.
    struct Reference {
        cfg: GameServerConfig,
        radius: f64,
        clients: BTreeMap<ClientId, Point>,
        grid: InterestGrid<ClientId>,
        batcher: UpdateBatcher<ClientId, UpdateItem>,
        encoder: DeltaEncoder<ClientId>,
        last_flush: SimTime,
    }

    impl Reference {
        fn new(cfg: GameServerConfig, world: Rect, radius: f64) -> Reference {
            let cells = cfg.cells_per_axis.max(1);
            let margin = 0.1 * (world.width() / cells as f64).min(world.height() / cells as f64);
            Reference {
                radius,
                clients: BTreeMap::new(),
                grid: InterestGrid::new(world, cells).with_hysteresis(margin.max(0.0)),
                batcher: UpdateBatcher::new(),
                encoder: DeltaEncoder::new(cfg.keyframe_every).with_quantum(cfg.origin_quantum),
                last_flush: SimTime::ZERO,
                cfg,
            }
        }

        fn vision(&self) -> f64 {
            if self.cfg.vision_radius > 0.0 {
                self.cfg.vision_radius
            } else {
                self.radius
            }
        }

        fn join(&mut self, cid: ClientId, pos: Point) {
            self.clients.insert(cid, pos);
            self.grid.insert(cid, pos);
            self.encoder.reset(cid);
        }

        fn leave(&mut self, cid: ClientId) {
            if self.clients.remove(&cid).is_some() {
                self.grid.remove(cid);
                self.batcher.forget(cid);
                self.encoder.forget(cid);
            }
        }

        fn event(
            &mut self,
            now: SimTime,
            cid: ClientId,
            pos: Point,
            payload: usize,
        ) -> Vec<(ClientId, Vec<BatchItem>)> {
            if !self.clients.contains_key(&cid) {
                return Vec::new();
            }
            self.clients.insert(cid, pos);
            self.grid.update(cid, pos);
            let wire_origin = quantize(pos, self.cfg.origin_quantum);
            let vision = self.vision();
            let batcher = &mut self.batcher;
            self.grid.query(pos, vision, self.cfg.metric, |other, _| {
                if other == cid {
                    return;
                }
                batcher.push(
                    other,
                    UpdateItem {
                        origin: wire_origin,
                        payload_bytes: payload,
                        entity: cid.0,
                        ring: 0,
                        vx: 0.0,
                        vy: 0.0,
                        trace: None,
                    },
                );
            });
            self.flush_if_due(now)
        }

        fn flush_if_due(&mut self, now: SimTime) -> Vec<(ClientId, Vec<BatchItem>)> {
            if self.batcher.is_empty() || now.since(self.last_flush) < self.cfg.batch_interval {
                return Vec::new();
            }
            self.flush(now)
        }

        fn flush(&mut self, now: SimTime) -> Vec<(ClientId, Vec<BatchItem>)> {
            self.last_flush = now;
            let policy = FlushPolicy {
                max_items: self.cfg.max_updates_per_flush as usize,
                budget_bytes: self.cfg.client_budget_bytes as usize,
            };
            let mut out = Vec::new();
            for (cid, updates) in self.batcher.drain() {
                let Some(viewer) = self.clients.get(&cid).copied() else {
                    self.encoder.forget(cid);
                    continue;
                };
                let selection = policy.select(
                    viewer,
                    self.cfg.metric,
                    |u: &UpdateItem| u.origin,
                    |u: &UpdateItem| u.entity,
                    |u: &UpdateItem| UpdateItem::WIRE_BYTES + u.payload_bytes,
                    updates,
                );
                let origins: Vec<Point> = selection.kept.iter().map(|u| u.origin).collect();
                let encoded = self.encoder.encode_flush(cid, &origins);
                let items: Vec<BatchItem> = selection
                    .kept
                    .into_iter()
                    .zip(encoded)
                    .map(|(u, e)| match e {
                        matrix_middleware::core::EncodedOrigin::Absolute(origin) => {
                            BatchItem::Absolute(UpdateItem {
                                origin,
                                payload_bytes: u.payload_bytes,
                                entity: u.entity,
                                ring: 0,
                                vx: 0.0,
                                vy: 0.0,
                                trace: None,
                            })
                        }
                        matrix_middleware::core::EncodedOrigin::Offset { dx, dy } => {
                            BatchItem::Delta(DeltaItem {
                                dx,
                                dy,
                                payload_bytes: u.payload_bytes,
                                entity: u.entity,
                                ring: 0,
                                vx: 0.0,
                                vy: 0.0,
                                trace: None,
                            })
                        }
                    })
                    .collect();
                out.push((cid, items));
            }
            out
        }
    }

    fn batches_of(actions: &[GameAction]) -> Vec<(ClientId, Vec<BatchItem>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                GameAction::ToClient(cid, GameToClient::UpdateBatch { updates }) => {
                    Some((*cid, updates.clone()))
                }
                _ => None,
            })
            .collect()
    }

    let mut rng = SimRng::seed_from_u64(0xB17E_1DE7);
    for case in 0..15 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(40.0, 150.0);
        let cfg = GameServerConfig {
            emit_updates: true,
            cells_per_axis: rng.uniform_u64(1, 48) as u32,
            vision_radius: if rng.chance(0.5) {
                0.0
            } else {
                rng.uniform(20.0, 120.0)
            },
            batch_interval: if rng.chance(0.2) {
                SimDuration::from_millis(0)
            } else {
                SimDuration::from_millis(50)
            },
            keyframe_every: rng.uniform_u64(0, 7) as u32,
            max_updates_per_flush: rng.uniform_u64(0, 5) as u32,
            client_budget_bytes: if rng.chance(0.3) { 200 } else { 0 },
            // Rings and the tuner stay OFF: this is the equivalence pin.
            ..GameServerConfig::default()
        };
        let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
        node.register(world, radius);
        let mut reference = Reference::new(cfg, world, radius);

        let clients = rng.uniform_u64(3, 12);
        let mut pos: Vec<Point> = Vec::new();
        for id in 0..clients {
            let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
            pos.push(p);
            node.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Join {
                    pos: p,
                    state_bytes: 0,
                },
            );
            reference.join(ClientId(id), p);
        }

        let mut t = 0u64;
        for step in 0..120 {
            t += rng.uniform_u64(5, 30);
            let now = SimTime::from_millis(t);
            let id = rng.uniform_u64(0, clients);
            let (node_actions, ref_batches) = match rng.uniform_u64(0, 10) {
                0..=5 => {
                    let p = Point::new(
                        (pos[id as usize].x + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                        (pos[id as usize].y + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                    );
                    pos[id as usize] = p;
                    (
                        node.on_client(now, ClientId(id), ClientToGame::Move { pos: p }),
                        reference.event(now, ClientId(id), p, 32),
                    )
                }
                6..=7 => {
                    let payload = rng.uniform_u64(0, 200) as usize;
                    (
                        node.on_client(
                            now,
                            ClientId(id),
                            ClientToGame::Action {
                                pos: pos[id as usize],
                                payload_bytes: payload,
                            },
                        ),
                        reference.event(now, ClientId(id), pos[id as usize], payload),
                    )
                }
                8 => (node.on_tick(now, 0.0), reference.flush_if_due(now)),
                _ => {
                    // Leave and immediately rejoin elsewhere (resync).
                    node.on_client(now, ClientId(id), ClientToGame::Leave);
                    reference.leave(ClientId(id));
                    let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
                    pos[id as usize] = p;
                    reference.join(ClientId(id), p);
                    (
                        node.on_client(
                            now,
                            ClientId(id),
                            ClientToGame::Join {
                                pos: p,
                                state_bytes: 0,
                            },
                        ),
                        Vec::new(),
                    )
                }
            };
            let node_batches = batches_of(&node_actions);
            assert_eq!(
                node_batches.len(),
                ref_batches.len(),
                "case {case} step {step}: flush boundaries diverged"
            );
            for ((nc, nb), (rc, rb)) in node_batches.iter().zip(&ref_batches) {
                assert_eq!(nc, rc, "case {case} step {step}: receiver order");
                // Byte-identical on the actual wire: compare the encoded
                // JSON frames, not just the structs.
                let node_line = codec::encode_game_to_client(&GameToClient::UpdateBatch {
                    updates: nb.clone(),
                });
                let ref_line = codec::encode_game_to_client(&GameToClient::UpdateBatch {
                    updates: rb.clone(),
                });
                assert_eq!(
                    node_line, ref_line,
                    "case {case} step {step} {nc:?}: wire bytes diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shard-count invariance (the parallel-flush pin)
// ---------------------------------------------------------------------------

/// The sharded flush engine must be invisible on the wire: for every
/// random script of joins, moves, actions, leaves and ticks — with
/// tiered rings, prediction, payload degradation and budgets all in
/// play — a node flushing through any `flush_workers` in 2..=8 (odd
/// counts on the sequential shard walk, even counts on real threads)
/// emits **byte-identical** frames, in the same order, to the
/// single-worker node. Sharding is a throughput knob, never a
/// behaviour knob.
#[test]
fn flush_worker_count_is_wire_invariant() {
    use matrix_middleware::core::{
        codec, ClientId, ClientToGame, GameAction, GameServerConfig, GameServerNode, GameToClient,
        ServerId,
    };
    use matrix_middleware::sim::{SimDuration, SimTime};

    #[derive(Clone)]
    enum Step {
        Client(u64, ClientId, ClientToGame),
        Tick(u64),
    }

    /// Replays the script and returns every wire frame sent to any
    /// client, in emission order.
    fn replay(
        cfg: GameServerConfig,
        parallel: bool,
        world: Rect,
        radius: f64,
        script: &[Step],
    ) -> Vec<(ClientId, String)> {
        let mut node = GameServerNode::new(ServerId(1), cfg).with_fanout();
        if parallel {
            node = node.with_parallel_flush();
        }
        node.register(world, radius);
        let mut frames = Vec::new();
        let mut collect = |actions: Vec<GameAction>| {
            for a in actions {
                if let GameAction::ToClient(cid, msg @ GameToClient::UpdateBatch { .. }) = a {
                    frames.push((cid, codec::encode_game_to_client(&msg)));
                }
            }
        };
        for step in script {
            match step {
                Step::Client(t, cid, msg) => {
                    collect(node.on_client(SimTime::from_millis(*t), *cid, msg.clone()))
                }
                Step::Tick(t) => collect(node.on_tick(SimTime::from_millis(*t), 0.0)),
            }
        }
        frames
    }

    let mut rng = SimRng::seed_from_u64(0x5AAD_C0DE);
    for case in 0..8 {
        let world = Rect::from_coords(0.0, 0.0, 800.0, 800.0);
        let radius = rng.uniform(60.0, 200.0);
        let mut cfg = GameServerConfig {
            emit_updates: true,
            batch_interval: SimDuration::from_millis(50),
            keyframe_every: rng.uniform_u64(0, 7) as u32,
            max_updates_per_flush: rng.uniform_u64(0, 5) as u32,
            client_budget_bytes: if rng.chance(0.4) { 256 } else { 0 },
            predict: rng.chance(0.5),
            position_only_ring: rng.uniform_u64(0, 3) as u8,
            metric: metric_of(rng.uniform_u64(0, 3)),
            ..GameServerConfig::default()
        };
        if rng.chance(0.7) {
            cfg.set_rings(&[radius * 0.3, radius * 0.6, radius], &[1, 2, 4]);
        }
        if cfg.predict {
            cfg.set_error_budgets(&[0.0, 1.5, 3.0, 6.0]);
        }

        let clients = rng.uniform_u64(6, 20);
        let mut pos: Vec<Point> = Vec::new();
        let mut script = Vec::new();
        for id in 0..clients {
            let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
            pos.push(p);
            script.push(Step::Client(
                0,
                ClientId(id),
                ClientToGame::Join {
                    pos: p,
                    state_bytes: 0,
                },
            ));
        }
        let mut t = 0u64;
        for _ in 0..150 {
            t += rng.uniform_u64(5, 30);
            let id = rng.uniform_u64(0, clients);
            match rng.uniform_u64(0, 10) {
                0..=5 => {
                    let p = Point::new(
                        (pos[id as usize].x + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                        (pos[id as usize].y + rng.uniform(-10.0, 10.0)).clamp(0.0, 800.0),
                    );
                    pos[id as usize] = p;
                    script.push(Step::Client(t, ClientId(id), ClientToGame::Move { pos: p }));
                }
                6..=7 => script.push(Step::Client(
                    t,
                    ClientId(id),
                    ClientToGame::Action {
                        pos: pos[id as usize],
                        payload_bytes: rng.uniform_u64(0, 120) as usize,
                    },
                )),
                8 => script.push(Step::Tick(t)),
                _ => {
                    script.push(Step::Client(t, ClientId(id), ClientToGame::Leave));
                    let p = Point::new(rng.uniform(200.0, 600.0), rng.uniform(200.0, 600.0));
                    pos[id as usize] = p;
                    script.push(Step::Client(
                        t,
                        ClientId(id),
                        ClientToGame::Join {
                            pos: p,
                            state_bytes: 0,
                        },
                    ));
                }
            }
        }
        script.push(Step::Tick(t + 100));

        let reference = replay(cfg, false, world, radius, &script);
        assert!(
            !reference.is_empty(),
            "case {case}: the script must actually emit frames"
        );
        for workers in 2..=8u32 {
            let sharded = replay(
                GameServerConfig {
                    flush_workers: workers,
                    ..cfg
                },
                workers % 2 == 0, // even counts exercise the real threads
                world,
                radius,
                &script,
            );
            assert_eq!(
                sharded, reference,
                "case {case}: {workers} flush workers diverged from 1 on the wire"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ring membership and sampling
// ---------------------------------------------------------------------------

/// Every delivered item lands in the ring its receiver's enqueue-time
/// distance falls in; nothing outside the outermost ring is delivered;
/// the near ring is never sampled; and each (receiver, ring) delivers
/// exactly ⌈candidates / rate⌉ items — the deterministic, evenly spaced
/// sample the wire promises.
#[test]
fn ring_membership_and_sampling_are_exact() {
    use matrix_middleware::core::{
        AutoTunerConfig, DisseminationPipeline, FlushPolicy, PipelineConfig, RingSet, UpdateItem,
    };

    let mut rng = SimRng::seed_from_u64(0x0812_6512);
    for case in 0..40 {
        let world = Rect::from_coords(0.0, 0.0, 400.0, 400.0);
        let metric = metric_of(rng.uniform_u64(0, 3));
        // 1–4 ascending tiers with random rates.
        let tiers = rng.uniform_u64(1, 5) as usize;
        let mut radii: Vec<f64> = (0..tiers).map(|_| rng.uniform(10.0, 150.0)).collect();
        radii.sort_by(|a, b| a.total_cmp(b));
        let rates: Vec<u32> = (0..tiers).map(|_| rng.uniform_u64(1, 6) as u32).collect();
        let rings = RingSet::from_tiers(&radii, &rates);
        let mut pipe: DisseminationPipeline<u32, UpdateItem> = DisseminationPipeline::new(
            world,
            rng.uniform_u64(1, 32) as u32,
            rings,
            PipelineConfig {
                metric,
                policy: FlushPolicy::unlimited(),
                keyframe_every: rng.uniform_u64(0, 5) as u32,
                origin_quantum: 0.0,
                autotune: AutoTunerConfig::default(),
                predict: matrix_middleware::core::PredictorConfig::default(),
                position_only_ring: 0,
                telemetry: false,
            },
        );

        // Static receivers: ring membership is then purely a function of
        // the (event, receiver) distance.
        let n = rng.uniform_u64(5, 40) as u32;
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)))
            .collect();
        for (k, p) in positions.iter().enumerate() {
            pipe.subscribe(k as u32, *p);
        }

        // A burst of events from fixed origins; count per-(receiver,
        // ring) candidates by brute force.
        let mut candidates: HashMap<(u32, u8), u64> = HashMap::new();
        let events = rng.uniform_u64(10, 60);
        let origins: Vec<Point> = (0..3)
            .map(|_| Point::new(rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)))
            .collect();
        for e in 0..events {
            let origin = origins[(e % 3) as usize];
            pipe.disseminate(origin, origin, 1, 0.0, true, None, true, |ring, _| {
                UpdateItem {
                    origin,
                    payload_bytes: 8,
                    entity: 1,
                    ring,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }
            });
            for (k, p) in positions.iter().enumerate() {
                if let Some(ring) = rings.ring_of(p.distance_by(origin, metric)) {
                    *candidates.entry((k as u32, ring)).or_default() += 1;
                }
            }
        }

        let outcome = pipe.flush(|k| positions.get(k as usize).copied());
        assert_eq!(outcome.orphaned, 0);
        let mut delivered: HashMap<(u32, u8), u64> = HashMap::new();
        for batch in &outcome.batches {
            for item in &batch.items {
                // Membership: the tag matches the enqueue-time distance
                // tier (receivers are static, so it is checkable here).
                let d = positions[batch.receiver as usize].distance_by(item.origin, metric);
                assert_eq!(
                    rings.ring_of(d),
                    Some(item.ring),
                    "case {case}: item tagged with the wrong ring"
                );
                *delivered.entry((batch.receiver, item.ring)).or_default() += 1;
            }
        }
        for ((k, ring), &cand) in &candidates {
            let got = delivered.get(&(*k, *ring)).copied().unwrap_or(0);
            let rate = rings.rate(*ring) as u64;
            assert_eq!(
                got,
                cand.div_ceil(rate),
                "case {case}: receiver {k} ring {ring}: {cand} candidates at rate {rate}"
            );
            if *ring == 0 {
                assert_eq!(got, cand, "case {case}: near ring must never sample");
            }
        }
        // Completeness: nothing delivered without a candidate.
        for (key, got) in &delivered {
            assert!(
                candidates.contains_key(key),
                "case {case}: {got} items delivered outside every ring: {key:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tuner hysteresis
// ---------------------------------------------------------------------------

/// The density tuner stays within bounds, ignores jitter inside the
/// hysteresis band, reacts to sustained decisive shifts within its
/// streak, and reproduces decisions across a state export/restore.
#[test]
fn tuner_hysteresis_properties_hold() {
    use matrix_middleware::core::{AutoTuner, AutoTunerConfig};

    let mut rng = SimRng::seed_from_u64(0x7_0E12);
    for case in 0..60 {
        let cfg = AutoTunerConfig::enabled();
        let initial = rng.uniform_u64(1, 300) as u32;
        let mut tuner = AutoTuner::new(cfg, initial);

        // Sustained decisive density: within `streak` observations the
        // tuner lands on the steady-state resolution and then stays.
        let n = rng.uniform_u64(0, 200_000) as usize;
        let want = cfg.cells_for(n);
        for _ in 0..cfg.streak * 2 {
            tuner.observe(n);
        }
        let settled = tuner.current();
        // Every resolution the tuner *picks* respects the bounds (an
        // out-of-bounds configured start may legitimately persist when
        // the ideal stays inside its hysteresis band).
        assert!(
            settled == initial || (cfg.min_cells..=cfg.max_cells).contains(&settled),
            "case {case}: tuner picked out-of-bounds {settled}"
        );
        // Either it retuned to the steady-state value, or the starting
        // resolution was already inside the hysteresis band of the
        // ideal (in which case staying put is the correct outcome).
        if settled != want {
            let ideal = (n as f64 / cfg.target_per_cell).sqrt().max(1.0);
            let lo = settled as f64 / cfg.hysteresis;
            let hi = settled as f64 * cfg.hysteresis;
            assert!(
                ideal > lo && ideal < hi,
                "case {case}: settled {settled} is outside the hysteresis band \
                 of ideal {ideal} yet did not move to {want}"
            );
        }

        // Jitter inside the guaranteed band: a *settled* tuner (current
        // == steady state, so the ideal axis is within √2 of current by
        // pow2 rounding) must ignore subscriber jitter small enough to
        // keep the ideal inside the 1.5× band — ±5% subscribers moves
        // the ideal by ±2.5%, and √2 × 1.025 < 1.5.
        if settled == want {
            for i in 0..40 {
                let jittered = (n as f64 * rng.uniform(0.95, 1.05)) as usize;
                assert_eq!(
                    tuner.observe(jittered),
                    None,
                    "case {case} obs {i}: retuned on jitter"
                );
            }
            assert_eq!(tuner.current(), settled);
        }

        // Export/restore equivalence under a shared observation stream.
        let (cells, streak, pending) = tuner.state();
        let mut restored = AutoTuner::new(cfg, 1);
        restored.restore(cells, streak, pending);
        for _ in 0..10 {
            let m = rng.uniform_u64(0, 200_000) as usize;
            assert_eq!(tuner.observe(m), restored.observe(m), "case {case}");
            assert_eq!(tuner.state(), restored.state(), "case {case}");
        }
    }
}
