//! Cross-crate integration tests: full middleware deployments under the
//! deterministic simulator.

use matrix_middleware::experiments::{Cluster, ClusterConfig};
use matrix_middleware::games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_middleware::geometry::ServerId;
use matrix_middleware::sim::SimTime;

/// A scaled-down BzFlag so debug-mode tests finish quickly.
fn mini_spec() -> GameSpec {
    let mut spec = GameSpec::bzflag();
    spec.update_rate_hz = 2.0;
    spec.server_capacity = 400.0;
    spec
}

fn mini_hotspot_schedule(spec: &GameSpec) -> WorkloadSchedule {
    WorkloadSchedule::new(SimTime::from_secs(120))
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: 30,
                placement: Placement::Uniform,
            },
        )
        .at(
            SimTime::from_secs(10),
            PopulationEvent::Join {
                n: 200,
                placement: Placement::Hotspot {
                    center: spec.hotspot_a(),
                    spread: 2.0 * spec.radius,
                },
            },
        )
        .at(
            SimTime::from_secs(60),
            PopulationEvent::Leave {
                n: 100,
                from_hotspot: true,
            },
        )
        .at(
            SimTime::from_secs(75),
            PopulationEvent::Leave {
                n: 100,
                from_hotspot: true,
            },
        )
}

fn mini_adaptive(spec: GameSpec) -> ClusterConfig {
    let mut cfg = ClusterConfig::adaptive(spec);
    cfg.matrix.overload_clients = 80;
    cfg.matrix.underload_clients = 40;
    cfg
}

#[test]
fn hotspot_lifecycle_splits_then_reclaims() {
    let spec = mini_spec();
    let schedule = mini_hotspot_schedule(&spec);
    let report = Cluster::new(mini_adaptive(spec), schedule).run();

    assert!(
        report.splits >= 1,
        "hotspot must trigger splits ({} splits)",
        report.splits
    );
    assert!(report.peak_servers >= 2);
    assert!(
        report.reclaims >= 1,
        "drained hotspot must trigger reclaims ({} reclaims)",
        report.reclaims
    );
    // After the crowd leaves, the fleet consolidates.
    let final_servers = report.servers_in_use.last_value().unwrap_or(99.0);
    assert!(
        final_servers <= 2.0,
        "fleet must consolidate, got {final_servers}"
    );
    // No work is ever dropped under the adaptive scheme.
    assert_eq!(report.dropped_work, 0.0);
}

#[test]
fn static_partitioning_fails_where_matrix_does_not() {
    let spec = mini_spec();

    let adaptive_report =
        Cluster::new(mini_adaptive(spec.clone()), mini_hotspot_schedule(&spec)).run();
    let static_report = Cluster::new(
        {
            let mut cfg = ClusterConfig::static_partition(spec.clone(), 2);
            cfg.queue_capacity = Some(spec.server_capacity * 3.0);
            cfg
        },
        mini_hotspot_schedule(&spec),
    )
    .run();

    assert_eq!(static_report.splits, 0);
    assert!(
        static_report.dropped_work > 0.0,
        "static deployment must saturate"
    );
    assert_eq!(adaptive_report.dropped_work, 0.0, "Matrix must not drop");
    assert!(
        adaptive_report.peak_servers > static_report.peak_servers,
        "Matrix recruits extra servers"
    );
    // The paper's headline: Matrix keeps latency playable where static
    // partitioning fails.
    assert!(
        adaptive_report.late_fraction < static_report.late_fraction,
        "adaptive {} vs static {}",
        adaptive_report.late_fraction,
        static_report.late_fraction
    );
}

#[test]
fn clients_always_land_on_the_owner_of_their_position() {
    let spec = mini_spec();
    let schedule = mini_hotspot_schedule(&spec);
    let report = Cluster::new(mini_adaptive(spec), schedule).run();
    // Conservation: the per-server client series must sum to the live
    // population at the end (30 background + 0 hotspot).
    let total: f64 = report
        .clients_per_server
        .iter()
        .filter_map(|s| s.last_value())
        .sum();
    assert!(
        (total - 30.0).abs() <= 3.0,
        "expected ~30 clients hosted, got {total}"
    );
}

#[test]
fn handoffs_have_bounded_latency() {
    let spec = mini_spec();
    let schedule = mini_hotspot_schedule(&spec);
    let report = Cluster::new(mini_adaptive(spec), schedule).run();
    assert!(report.switches > 0, "splits must redirect clients");
    let p95 = report.switch_latency_us.p95().unwrap_or(f64::INFINITY);
    // Switch = notify + reconnect over a 25 ms access link; the paper
    // calls the state minimal. Anything near a second would be a protocol
    // bug (e.g. clients bouncing between servers).
    assert!(p95 < 500_000.0, "p95 switch latency {:.1} ms", p95 / 1000.0);
}

#[test]
fn crash_of_a_child_is_absorbed() {
    let spec = mini_spec();
    let schedule = mini_hotspot_schedule(&spec);
    let mut cfg = mini_adaptive(spec);
    cfg.matrix.underload_clients = 1; // keep children alive (no reclaim)
    cfg.crashes = vec![(SimTime::from_secs(40), ServerId(2))];
    let report = Cluster::new(cfg, schedule).run();
    assert!(report.splits >= 1);
    assert!(
        report.coordinator.failures_declared >= 1,
        "missed heartbeats must declare the crashed server dead"
    );
    // The world is still fully owned at the end: remaining clients are
    // hosted somewhere.
    let total: f64 = report
        .clients_per_server
        .iter()
        .filter_map(|s| s.last_value())
        .sum();
    assert!(total > 0.0);
}

#[test]
fn lossy_client_links_do_not_wedge_the_run() {
    let spec = mini_spec();
    let schedule = WorkloadSchedule::steady(60, SimTime::from_secs(60));
    let mut cfg = mini_adaptive(spec);
    cfg.net.client_link = matrix_middleware::sim::LinkModel {
        latency: matrix_middleware::sim::LatencyModel::constant_millis(25),
        loss_probability: 0.02,
        bandwidth_bytes_per_sec: None,
    };
    let report = Cluster::new(cfg, schedule).run();
    assert!(
        report.updates_processed > 1_000,
        "{}",
        report.updates_processed
    );
}

#[test]
fn per_game_specs_all_run_end_to_end() {
    for spec in GameSpec::all() {
        let name = spec.name.clone();
        let schedule = WorkloadSchedule::steady(50, SimTime::from_secs(20));
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.spec.update_rate_hz = cfg.spec.update_rate_hz.min(2.0);
        let report = Cluster::new(cfg, schedule).run();
        assert!(
            report.updates_processed > 100,
            "{name}: {}",
            report.updates_processed
        );
        assert_eq!(report.peak_servers, 1, "{name}: 50 clients fit one server");
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let spec = mini_spec();
    let run = || {
        let report = Cluster::new(mini_adaptive(spec.clone()), mini_hotspot_schedule(&spec)).run();
        (
            report.splits,
            report.reclaims,
            report.switches,
            report.updates_processed,
            report.inter_server_bytes,
            report.events,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let spec = mini_spec();
    let run = |seed| {
        let mut cfg = mini_adaptive(spec.clone());
        cfg.seed = seed;
        let report = Cluster::new(cfg, mini_hotspot_schedule(&spec)).run();
        report.updates_processed
    };
    assert_ne!(run(1), run(2));
}
