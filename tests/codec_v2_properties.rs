//! Differential property tests of wire protocol v2 (`docs/WIRE.md`):
//! for every frame type, the binary round-trip is the identity, and it
//! agrees with the v1 JSON codec's round-trip on the same message — so
//! the two codecs can never drift apart semantically. Also pins the
//! interest layer's `WIRE_BYTES` constants to the *measured* encoded
//! lengths of the corresponding binary items.
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible) instead of an external
//! property-testing framework, keeping the build offline-friendly.

use matrix_middleware::core::codec;
use matrix_middleware::core::codec_v2::{self, Frame, FrameMeta, FrameStatus};
use matrix_middleware::core::{
    BatchItem, ClientId, ClientToGame, DeltaItem, GameToClient, LoadReport, RegionSnapshot,
    ReplicaBatch, ReplicaOp, UpdateItem, MAX_RINGS,
};
use matrix_middleware::geometry::{Point, Rect, ServerId};
use matrix_middleware::replication::{
    PendingUpdate, PredictBasis, ReplicaPayload, SessionState, StreamBase, TunerState,
};
use matrix_middleware::sim::{SimRng, SimTime};
use matrix_middleware::telemetry::{HistSnapshot, TelemetrySnapshot};

const CASES: usize = 64;

/// The v1 JSON codec routes all numbers through `f64`, so integers are
/// exact only up to 2^53 (a documented v1 limitation — see
/// `docs/WIRE.md`). Differential cases stay inside that range; the
/// binary-only test below covers full-width `u64`.
const JSON_SAFE_INT: u64 = 1 << 53;

/// A coordinate on the v2 codec's 1/256 lattice (canonical narrow
/// encoding); the wide-escape path is exercised by `raw_point`.
fn lattice_coord(rng: &mut SimRng) -> f64 {
    (rng.uniform(-30_000.0, 30_000.0) * 256.0).round() / 256.0
}

fn lattice_point(rng: &mut SimRng) -> Point {
    Point::new(lattice_coord(rng), lattice_coord(rng))
}

/// An arbitrary finite point: almost never lattice-representable, so
/// items carrying it take the wide (full f64) escape hatch.
fn raw_point(rng: &mut SimRng) -> Point {
    Point::new(rng.uniform(-1.0e7, 1.0e7), rng.uniform(-1.0e7, 1.0e7))
}

fn any_point(rng: &mut SimRng) -> Point {
    if rng.chance(0.25) {
        raw_point(rng)
    } else {
        lattice_point(rng)
    }
}

/// Entity ids: mostly small (narrow u24), sometimes huge (wide u64),
/// sometimes zero (anonymous — the presence bit stays clear).
fn entity(rng: &mut SimRng) -> u64 {
    match rng.uniform_u64(0, 4) {
        0 => 0,
        1 => rng.uniform_u64(1, 1 << 24),
        2 => rng.uniform_u64(1 << 24, JSON_SAFE_INT),
        _ => rng.uniform_u64(1, 500),
    }
}

/// Payload sizes: mostly narrow (u16), sometimes wide.
fn payload(rng: &mut SimRng) -> usize {
    if rng.chance(0.15) {
        rng.uniform_u64(1 << 16, 1 << 40) as usize
    } else {
        rng.uniform_u64(0, 1 << 16) as usize
    }
}

/// A velocity pair — `(0, 0)` means "absent" in both codecs, so the
/// generator covers present and absent explicitly.
fn velocity(rng: &mut SimRng) -> (f64, f64) {
    if rng.chance(0.4) {
        (0.0, 0.0)
    } else if rng.chance(0.2) {
        (rng.uniform(-900.0, 900.0), rng.uniform(-900.0, 900.0))
    } else {
        (lattice_coord(rng) / 100.0, lattice_coord(rng) / 100.0)
    }
}

fn ring(rng: &mut SimRng) -> u8 {
    rng.uniform_u64(0, MAX_RINGS as u64) as u8
}

/// A causal trace tag — absent most of the time (sampling is sparse by
/// design), charged (`stale_us > 0`) sometimes, so both the plain and
/// the suppression-charged shapes round-trip through both codecs.
fn trace(rng: &mut SimRng) -> Option<matrix_middleware::telemetry::TraceTag> {
    if rng.chance(0.7) {
        return None;
    }
    Some(matrix_middleware::telemetry::TraceTag {
        origin: rng.uniform_u64(0, 1 << 20) as u32,
        seq: rng.uniform_u64(0, u32::MAX as u64) as u32,
        ingest_us: rng.uniform_u64(0, 1 << 50),
        stale_us: if rng.chance(0.5) {
            rng.uniform_u64(0, 1 << 30)
        } else {
            0
        },
    })
}

/// One batch item hitting a random cell of the optional-field matrix:
/// absolute/delta × entity present/absent × ring × velocity × narrow/
/// wide encodings.
fn batch_item(rng: &mut SimRng) -> BatchItem {
    let (vx, vy) = velocity(rng);
    if rng.chance(0.5) {
        BatchItem::Absolute(UpdateItem {
            origin: any_point(rng),
            payload_bytes: payload(rng),
            entity: entity(rng),
            ring: ring(rng),
            vx,
            vy,
            trace: trace(rng),
        })
    } else {
        BatchItem::Delta(DeltaItem {
            dx: lattice_coord(rng) / 100.0,
            dy: lattice_coord(rng) / 100.0,
            payload_bytes: payload(rng),
            entity: entity(rng),
            ring: ring(rng),
            vx,
            vy,
            trace: trace(rng),
        })
    }
}

fn client_msg(rng: &mut SimRng) -> ClientToGame {
    match rng.uniform_u64(0, 5) {
        0 => ClientToGame::Join {
            pos: any_point(rng),
            state_bytes: rng.uniform_u64(0, 1 << 32),
        },
        1 => ClientToGame::Move {
            pos: any_point(rng),
        },
        2 => ClientToGame::Action {
            pos: any_point(rng),
            payload_bytes: payload(rng),
        },
        3 => ClientToGame::TraceAck {
            ring: ring(rng),
            latency_us: rng.uniform_u64(0, 1 << 40),
            staleness_us: rng.uniform_u64(0, 1 << 40),
        },
        _ => ClientToGame::Leave,
    }
}

fn server_msg(rng: &mut SimRng) -> GameToClient {
    match rng.uniform_u64(0, 5) {
        0 => GameToClient::Joined {
            server: ServerId(rng.uniform_u64(1, 1 << 20) as u32),
        },
        1 => GameToClient::Ack {
            seq: rng.uniform_u64(0, JSON_SAFE_INT),
        },
        2 => GameToClient::Update {
            origin: any_point(rng),
            payload_bytes: payload(rng),
        },
        3 => GameToClient::SwitchServer {
            to: ServerId(rng.uniform_u64(1, 1 << 20) as u32),
        },
        _ => GameToClient::UpdateBatch {
            updates: (0..rng.uniform_u64(0, 12))
                .map(|_| batch_item(rng))
                .collect(),
        },
    }
}

fn telemetry(rng: &mut SimRng) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::new();
    for i in 0..rng.uniform_u64(0, 5) {
        snap.counter(format!("c{i}"), rng.uniform_u64(0, 1 << 40));
    }
    for i in 0..rng.uniform_u64(0, 3) {
        snap.hists.push(HistSnapshot {
            name: format!("h{i}"),
            count: rng.uniform_u64(0, 1 << 20),
            sum: rng.uniform(0.0, 1.0e9),
            min: rng.uniform(0.0, 10.0),
            max: rng.uniform(10.0, 1.0e6),
            buckets: (0..rng.uniform_u64(0, 6))
                .map(|b| (b as u32 * 3, rng.uniform_u64(1, 1 << 30)))
                .collect(),
        });
    }
    snap.events_dropped = rng.uniform_u64(0, 1 << 30);
    snap.events_seen = rng.uniform_u64(0, 1 << 40);
    snap
}

fn snapshot(rng: &mut SimRng) -> RegionSnapshot {
    let mut snap = RegionSnapshot {
        range: if rng.chance(0.8) {
            let a = raw_point(rng);
            Some(Rect::from_coords(
                a.x,
                a.y,
                a.x + rng.uniform(1.0, 1000.0),
                a.y + rng.uniform(1.0, 1000.0),
            ))
        } else {
            None
        },
        radius: rng.uniform(0.0, 500.0),
        ready: rng.chance(0.5),
        seq: rng.uniform_u64(0, JSON_SAFE_INT),
        last_flush: SimTime::from_micros(rng.uniform_u64(0, 1 << 50)),
        tuner: if rng.chance(0.5) {
            Some(TunerState {
                cells: rng.uniform_u64(1, 512) as u32,
                streak: rng.uniform_u64(0, 10) as u32,
                pending: rng.uniform_u64(0, 512) as u32,
            })
        } else {
            None
        },
        ..RegionSnapshot::default()
    };
    for _ in 0..rng.uniform_u64(0, 6) {
        let id = ClientId(rng.uniform_u64(1, 1 << 30));
        snap.clients.insert(
            id,
            SessionState {
                pos: any_point(rng),
                state_bytes: rng.uniform_u64(0, 1 << 32),
            },
        );
        if rng.chance(0.6) {
            snap.streams.insert(
                id,
                StreamBase {
                    base: any_point(rng),
                    countdown: rng.uniform_u64(0, 64) as u32,
                },
            );
        }
        if rng.chance(0.4) {
            let (vx, vy) = velocity(rng);
            snap.pending.insert(
                id,
                (0..rng.uniform_u64(1, 4))
                    .map(|_| PendingUpdate {
                        origin: any_point(rng),
                        payload_bytes: payload(rng),
                        entity: entity(rng),
                        ring: ring(rng),
                        vx,
                        vy,
                        trace: trace(rng),
                    })
                    .collect(),
            );
        }
        if rng.chance(0.3) {
            snap.bases.insert(
                id,
                (0..rng.uniform_u64(1, 3))
                    .map(|_| PredictBasis {
                        entity: entity(rng),
                        pos: any_point(rng),
                        vx: rng.uniform(-50.0, 50.0),
                        vy: rng.uniform(-50.0, 50.0),
                        time_secs: rng.uniform(0.0, 1.0e6),
                    })
                    .collect(),
            );
        }
    }
    snap
}

fn replica_batch(rng: &mut SimRng) -> ReplicaBatch {
    let payload = if rng.chance(0.5) {
        ReplicaPayload::Full(snapshot(rng))
    } else {
        ReplicaPayload::Ops(
            (0..rng.uniform_u64(0, 8))
                .map(|_| match rng.uniform_u64(0, 4) {
                    0 => ReplicaOp::Join {
                        client: ClientId(rng.uniform_u64(1, 1 << 30)),
                        pos: any_point(rng),
                        state_bytes: rng.uniform_u64(0, 1 << 32),
                    },
                    1 => ReplicaOp::Move {
                        client: ClientId(rng.uniform_u64(1, 1 << 30)),
                        pos: any_point(rng),
                    },
                    2 => ReplicaOp::Leave {
                        client: ClientId(rng.uniform_u64(1, 1 << 30)),
                    },
                    _ => {
                        let a = raw_point(rng);
                        ReplicaOp::Range {
                            range: Rect::from_coords(a.x, a.y, a.x + 100.0, a.y + 50.0),
                            radius: rng.uniform(0.0, 500.0),
                        }
                    }
                })
                .collect(),
        )
    };
    ReplicaBatch {
        seq: rng.uniform_u64(0, JSON_SAFE_INT),
        payload,
    }
}

fn load_report(rng: &mut SimRng) -> LoadReport {
    LoadReport {
        clients: rng.uniform_u64(0, 1 << 20) as u32,
        queue_backlog: rng.uniform(0.0, 1.0e4),
        positions: (0..rng.uniform_u64(0, 10))
            .map(|_| any_point(rng))
            .collect(),
        telemetry: if rng.chance(0.5) {
            Some(Box::new(telemetry(rng)))
        } else {
            None
        },
    }
}

fn meta(rng: &mut SimRng) -> FrameMeta {
    FrameMeta {
        seq: rng.uniform_u64(0, u64::MAX),
        stamp_ms: rng.uniform_u64(0, 1 << 32) as u32,
    }
}

/// Binary round-trip must be the identity, byte count must be exact,
/// and the transport metadata must survive. Returns the decoded frame.
fn assert_binary_roundtrip(case: usize, frame: &Frame, m: FrameMeta, crc: bool) -> Frame {
    let bytes = codec_v2::encode_frame(frame, m, crc);
    match codec_v2::decode_frame(&bytes) {
        Ok(FrameStatus::Complete {
            frame: decoded,
            meta: dm,
            consumed,
        }) => {
            assert_eq!(&decoded, frame, "case {case}: binary round-trip drifted");
            assert_eq!(dm, m, "case {case}: header metadata drifted");
            assert_eq!(consumed, bytes.len(), "case {case}: length accounting");
            decoded
        }
        other => panic!("case {case}: expected a complete frame, got {other:?}"),
    }
}

#[test]
fn client_frames_agree_across_codecs() {
    let mut rng = SimRng::seed_from_u64(0xC0DE_C001);
    for case in 0..CASES {
        let msg = client_msg(&mut rng);
        let m = meta(&mut rng);
        let crc = rng.chance(0.5);
        assert_binary_roundtrip(case, &Frame::Client(msg.clone()), m, crc);
        let json = codec::decode_client_to_game(&codec::encode_client_to_game(&msg))
            .expect("v1 round-trip");
        assert_eq!(json, msg, "case {case}: the v1 codec disagrees");
    }
}

#[test]
fn server_frames_agree_across_codecs() {
    let mut rng = SimRng::seed_from_u64(0xC0DE_C002);
    for case in 0..CASES {
        let msg = server_msg(&mut rng);
        let m = meta(&mut rng);
        let crc = rng.chance(0.5);
        assert_binary_roundtrip(case, &Frame::Server(msg.clone()), m, crc);
        let json = codec::decode_game_to_client(&codec::encode_game_to_client(&msg))
            .expect("v1 round-trip");
        assert_eq!(json, msg, "case {case}: the v1 codec disagrees");
    }
}

#[test]
fn every_batch_item_shape_survives_both_codecs() {
    // The full optional-field matrix, deliberately: absolute and delta
    // items, entity/ring/velocity present and absent, narrow lattice
    // and wide-escape encodings — one batch per cell combination.
    let mut rng = SimRng::seed_from_u64(0xC0DE_C003);
    for case in 0..CASES * 4 {
        let updates: Vec<BatchItem> = (0..rng.uniform_u64(1, 8))
            .map(|_| batch_item(&mut rng))
            .collect();
        let msg = GameToClient::UpdateBatch {
            updates: updates.clone(),
        };
        assert_binary_roundtrip(case, &Frame::Server(msg.clone()), meta(&mut rng), true);
        let json = codec::decode_game_to_client(&codec::encode_game_to_client(&msg))
            .expect("v1 round-trip");
        assert_eq!(
            json, msg,
            "case {case}: the v1 codec disagrees on {updates:?}"
        );
    }
}

#[test]
fn replica_frames_agree_across_codecs() {
    let mut rng = SimRng::seed_from_u64(0xC0DE_C004);
    for case in 0..CASES {
        let batch = replica_batch(&mut rng);
        let m = meta(&mut rng);
        assert_binary_roundtrip(
            case,
            &Frame::Replica(Box::new(batch.clone())),
            m,
            rng.chance(0.5),
        );
        let json = codec::decode_replica_batch(&codec::encode_replica_batch(&batch))
            .expect("v1 round-trip");
        assert_eq!(json, batch, "case {case}: the v1 codec disagrees");

        let (seq, resync) = (rng.uniform_u64(0, JSON_SAFE_INT), rng.chance(0.5));
        assert_binary_roundtrip(case, &Frame::ReplicaAck { seq, resync }, m, true);
        assert_eq!(
            codec::decode_replica_ack(&codec::encode_replica_ack(seq, resync))
                .expect("v1 round-trip"),
            (seq, resync),
            "case {case}"
        );
    }
}

#[test]
fn stats_and_load_frames_agree_across_codecs() {
    use matrix_middleware::core::codec::StatsFormat;
    let mut rng = SimRng::seed_from_u64(0xC0DE_C005);
    for case in 0..CASES {
        for fmt in [StatsFormat::Json, StatsFormat::Prom] {
            assert_binary_roundtrip(case, &Frame::StatsQuery(fmt), meta(&mut rng), true);
            assert_eq!(
                codec::decode_stats_query(&codec::encode_stats_query(fmt)).expect("v1"),
                fmt
            );
        }

        let nodes: Vec<(ServerId, TelemetrySnapshot)> = (0..rng.uniform_u64(0, 4))
            .map(|i| (ServerId(i as u32 + 1), telemetry(&mut rng)))
            .collect();
        assert_binary_roundtrip(
            case,
            &Frame::StatsReply(nodes.clone()),
            meta(&mut rng),
            rng.chance(0.5),
        );
        let json =
            codec::decode_stats_reply(&codec::encode_stats_reply(&nodes)).expect("v1 round-trip");
        assert_eq!(json, nodes, "case {case}: the v1 codec disagrees");

        let report = load_report(&mut rng);
        assert_binary_roundtrip(
            case,
            &Frame::Load(Box::new(report.clone())),
            meta(&mut rng),
            rng.chance(0.5),
        );
        let json =
            codec::decode_load_report(&codec::encode_load_report(&report)).expect("v1 round-trip");
        assert_eq!(json, report, "case {case}: the v1 codec disagrees");
    }
}

#[test]
fn hello_frames_roundtrip() {
    // Hello is v2-only (its absence *is* the v1 signal), so no
    // differential arm — just identity and metadata.
    let mut rng = SimRng::seed_from_u64(0xC0DE_C006);
    for case in 0..CASES {
        let frame = Frame::Hello {
            version: rng.uniform_u64(0, 256) as u8,
        };
        assert_binary_roundtrip(case, &frame, meta(&mut rng), rng.chance(0.5));
    }
}

#[test]
fn frame_len_predicts_the_encoder_exactly() {
    // The byte-accounting path (`update_batch_frame_len`) never
    // allocates a frame; it must agree with the real encoder on every
    // random batch, with and without the CRC trailer.
    let mut rng = SimRng::seed_from_u64(0xC0DE_C007);
    for case in 0..CASES * 2 {
        let updates: Vec<BatchItem> = (0..rng.uniform_u64(0, 20))
            .map(|_| batch_item(&mut rng))
            .collect();
        for crc in [false, true] {
            let predicted = codec_v2::update_batch_frame_len(&updates, crc);
            let msg = GameToClient::UpdateBatch {
                updates: updates.clone(),
            };
            let actual = codec_v2::encode_server_frame(&msg, FrameMeta::default(), crc).len();
            assert_eq!(predicted, actual, "case {case} crc={crc}: {updates:?}");
        }
        let item_sum: usize = updates.iter().map(codec_v2::batch_item_wire_len).sum();
        // Trace tags ride in a frame-level section (u16 count + fixed
        // entries), not in per-item framing — compose it explicitly.
        let traced = updates.iter().filter(|u| u.trace().is_some()).count();
        let trace_section = if traced > 0 {
            2 + traced * codec_v2::TRACE_ENTRY_BYTES
        } else {
            0
        };
        assert_eq!(
            codec_v2::update_batch_frame_len(&updates, true),
            codec_v2::frame_overhead(true) + item_sum + trace_section,
            "case {case}: per-item lengths must compose"
        );
    }
}

/// The interest layer's modeled byte constants are *measured* truth:
/// each one equals the encoded length of the corresponding canonical
/// binary item (lattice coords, narrow entity, narrow payload length).
#[test]
fn wire_bytes_constants_match_measured_frames() {
    let keyframe = BatchItem::Absolute(UpdateItem {
        origin: Point::new(100.0, -250.5),
        payload_bytes: 64,
        entity: 7,
        ring: 1,
        vx: 0.0,
        vy: 0.0,
        trace: None,
    });
    assert_eq!(
        codec_v2::batch_item_wire_len(&keyframe),
        UpdateItem::WIRE_BYTES,
        "a canonical keyframe item measures UpdateItem::WIRE_BYTES"
    );

    let delta = BatchItem::Delta(DeltaItem {
        dx: 1.5,
        dy: -0.25,
        payload_bytes: 64,
        entity: 7,
        ring: 1,
        vx: 0.0,
        vy: 0.0,
        trace: None,
    });
    assert_eq!(
        codec_v2::batch_item_wire_len(&delta),
        DeltaItem::WIRE_BYTES,
        "a canonical delta item measures DeltaItem::WIRE_BYTES"
    );

    let with_velocity = BatchItem::Delta(DeltaItem {
        dx: 1.5,
        dy: -0.25,
        payload_bytes: 64,
        entity: 7,
        ring: 1,
        vx: 3.5,
        vy: -2.25,
        trace: None,
    });
    assert_eq!(
        codec_v2::batch_item_wire_len(&with_velocity) - codec_v2::batch_item_wire_len(&delta),
        UpdateItem::VELOCITY_WIRE_BYTES,
        "the velocity tag measures VELOCITY_WIRE_BYTES"
    );

    // The per-batch overhead constant is the measured empty frame.
    let empty = codec_v2::encode_server_frame(
        &GameToClient::UpdateBatch { updates: vec![] },
        FrameMeta::default(),
        true,
    );
    assert_eq!(empty.len(), codec_v2::BATCH_OVERHEAD_BYTES);
    assert_eq!(
        codec_v2::frame_overhead(true),
        codec_v2::BATCH_OVERHEAD_BYTES
    );

    // And the item model composes: wire_bytes() (which charges the
    // declared payload on top of the framing) is the measured item
    // length plus that payload, for canonically-encodable items.
    assert_eq!(
        keyframe.wire_bytes(),
        codec_v2::batch_item_wire_len(&keyframe) + keyframe.payload_bytes()
    );
    assert_eq!(
        with_velocity.wire_bytes(),
        codec_v2::batch_item_wire_len(&with_velocity) + with_velocity.payload_bytes()
    );
}

/// Full-width integers are exactly what v1 JSON *cannot* carry (its
/// numbers ride `f64`, exact only to 2^53); the binary codec must carry
/// them bit-for-bit.
#[test]
fn full_u64_values_survive_the_binary_codec() {
    let frames = [
        Frame::Server(GameToClient::Ack { seq: u64::MAX }),
        Frame::ReplicaAck {
            seq: u64::MAX - 1,
            resync: true,
        },
        Frame::Server(GameToClient::UpdateBatch {
            updates: vec![BatchItem::Absolute(UpdateItem {
                origin: Point::new(0.5, -0.5),
                payload_bytes: usize::MAX >> 8,
                entity: u64::MAX,
                ring: 3,
                vx: 1.0,
                vy: -1.0,
                trace: None,
            })],
        }),
        Frame::Replica(Box::new(ReplicaBatch {
            seq: u64::MAX,
            payload: ReplicaPayload::Ops(vec![]),
        })),
    ];
    let m = FrameMeta {
        seq: u64::MAX,
        stamp_ms: u32::MAX,
    };
    for (case, frame) in frames.iter().enumerate() {
        assert_binary_roundtrip(case, frame, m, true);
    }
}
