//! Replication-layer property suites.
//!
//! **Snapshot/restore equivalence**: for any randomly driven game
//! server, `restore(snapshot(node))` must reproduce the region
//! *observably* — the same client set, the same receiver sets, and
//! byte-identical future output: feeding both nodes an identical event
//! stream (including the next flush of whatever was pending at snapshot
//! time) must produce identical action lists, keyframe/delta decisions
//! included.
//!
//! **Codec transparency**: a snapshot that crosses the versioned wire
//! format (`matrix_core::codec`) must restore exactly like one that
//! never left the process.
//!
//! **Op-maintained convergence**: a standby fed the primary's replica
//! stream (one full snapshot, then incremental ops, with the log's
//! interval/lag/ack machinery in the loop) must hold the primary's
//! session state whenever the stream is drained.
//!
//! The companion *failover regression* — a killed node's clients keep
//! receiving updates with zero reconnects — lives next to the harness
//! it drives (`matrix-experiments`, `harness::tests::
//! failover_keeps_clients_connected_without_reconnects`) and in the rt
//! suite (`rt_cluster::killed_node_fails_over_to_its_warm_standby`).
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible).

use matrix_middleware::core::codec;
use matrix_middleware::core::{
    ClientId, ClientToGame, GameAction, GameServerConfig, GameServerNode, ReplicaOp,
};
use matrix_middleware::geometry::{Point, Rect, ServerId};
use matrix_middleware::replication::{ReplicaLog, ReplicaReceiver};
use matrix_middleware::sim::{SimDuration, SimRng, SimTime};

fn world() -> Rect {
    Rect::from_coords(0.0, 0.0, 1000.0, 1000.0)
}

fn node(id: u32) -> GameServerNode {
    let mut g = GameServerNode::new(ServerId(id), GameServerConfig::default()).with_fanout();
    g.register(world(), 80.0);
    g
}

fn random_pos(rng: &mut SimRng) -> Point {
    // Interior positions only: the equivalence drive must not trip the
    // roaming path, whose in-flight `resolving` flag is deliberately
    // not part of a snapshot (an owner query is re-asked after restore).
    Point::new(rng.uniform(50.0, 950.0), rng.uniform(50.0, 950.0))
}

/// One random client event applied to a node, returning the actions.
fn random_event(
    g: &mut GameServerNode,
    rng: &mut SimRng,
    now: SimTime,
    population: &mut Vec<u64>,
    next_id: &mut u64,
) -> Vec<GameAction> {
    let roll = rng.uniform_u64(0, 100);
    if population.is_empty() || roll < 20 {
        let id = *next_id;
        *next_id += 1;
        population.push(id);
        g.on_client(
            now,
            ClientId(id),
            ClientToGame::Join {
                pos: random_pos(rng),
                state_bytes: rng.uniform_u64(0, 4096),
            },
        )
    } else if roll < 30 && population.len() > 1 {
        let idx = rng.uniform_u64(0, population.len() as u64) as usize;
        let id = population.swap_remove(idx);
        g.on_client(now, ClientId(id), ClientToGame::Leave)
    } else {
        let idx = rng.uniform_u64(0, population.len() as u64) as usize;
        let id = population[idx];
        let pos = random_pos(rng);
        if rng.chance(0.5) {
            g.on_client(now, ClientId(id), ClientToGame::Move { pos })
        } else {
            g.on_client(
                now,
                ClientId(id),
                ClientToGame::Action {
                    pos,
                    payload_bytes: rng.uniform_u64(0, 256) as usize,
                },
            )
        }
    }
}

/// Drives a node through a random history of joins/moves/actions/leaves
/// with interleaved flushes, leaving some updates pending.
fn random_drive(g: &mut GameServerNode, rng: &mut SimRng, steps: u32) -> Vec<u64> {
    let mut population = Vec::new();
    let mut next_id = 1u64;
    let mut now = SimTime::ZERO;
    for _ in 0..steps {
        now += SimDuration::from_millis(rng.uniform_u64(1, 40));
        random_event(g, rng, now, &mut population, &mut next_id);
        if rng.chance(0.3) {
            g.on_tick(now, 0.0);
        }
    }
    population
}

/// Feeds both nodes the same post-snapshot script and asserts identical
/// observable output, starting with the flush of pending updates.
fn assert_future_equivalence(
    original: &mut GameServerNode,
    restored: &mut GameServerNode,
    population: &mut Vec<u64>,
    case: usize,
) {
    assert_eq!(
        restored.client_ids(),
        original.client_ids(),
        "case {case}: client set"
    );
    assert_eq!(
        restored.client_positions(),
        original.client_positions(),
        "case {case}: positions"
    );
    assert_eq!(
        restored.delta_streams(),
        original.delta_streams(),
        "case {case}: delta-stream table"
    );
    // The pending flush: same receiver sets, same items, same bytes.
    let now = SimTime::from_secs(100);
    assert_eq!(
        original.flush_updates(now),
        restored.flush_updates(now),
        "case {case}: next flush"
    );
    // And the future stays identical: same events in, same actions out.
    let mut next_id = 100_000;
    for step in 0..40 {
        let now = SimTime::from_secs(101) + SimDuration::from_millis(step * 37);
        let mut rng_a = SimRng::seed_from_u64(case as u64 * 1000 + step);
        let mut rng_b = SimRng::seed_from_u64(case as u64 * 1000 + step);
        let id_before = next_id;
        let mut pop_b = population.clone();
        let a = random_event(original, &mut rng_a, now, population, &mut next_id);
        let mut next_id_b = id_before;
        let b = random_event(restored, &mut rng_b, now, &mut pop_b, &mut next_id_b);
        assert_eq!(a, b, "case {case} step {step}: diverging actions");
        assert_eq!(next_id, next_id_b, "case {case} step {step}: id drift");
        *population = pop_b;
    }
    let flush_a = original.flush_updates(SimTime::from_secs(200));
    let flush_b = restored.flush_updates(SimTime::from_secs(200));
    assert_eq!(flush_a, flush_b, "case {case}: final flush");
}

#[test]
fn restore_of_snapshot_is_observably_equivalent() {
    let mut rng = SimRng::seed_from_u64(0xFA11_0E57);
    for case in 0..25 {
        let mut g = node(1);
        let mut population = random_drive(&mut g, &mut rng, 120);
        let snap = g.snapshot();
        let mut restored =
            GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        restored.restore(snap);
        assert_future_equivalence(&mut g, &mut restored, &mut population, case);
    }
}

#[test]
fn snapshot_survives_the_versioned_wire_format() {
    let mut rng = SimRng::seed_from_u64(0x57AB_1E57);
    for case in 0..25 {
        let mut g = node(1);
        let mut population = random_drive(&mut g, &mut rng, 100);
        let snap = g.snapshot();
        let line = codec::encode_region_snapshot(&snap);
        let decoded = codec::decode_region_snapshot(&line)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{line}"));
        assert_eq!(decoded, snap, "case {case}: codec must be transparent");
        let mut restored =
            GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        restored.restore(decoded);
        assert_future_equivalence(&mut g, &mut restored, &mut population, case);
    }
}

#[test]
fn op_maintained_standby_converges_on_the_primary() {
    let mut rng = SimRng::seed_from_u64(0x5EA_F00D);
    for case in 0..25 {
        let mut g = node(1);
        let mut log: ReplicaLog<ClientId> =
            ReplicaLog::new(SimDuration::from_millis(200), rng.uniform_u64(0, 16) as u32);
        let mut receiver: ReplicaReceiver<ClientId> = ReplicaReceiver::new();
        let mut population = Vec::new();
        let mut next_id = 1u64;
        let mut now = SimTime::ZERO;
        for _ in 0..150 {
            now += SimDuration::from_millis(rng.uniform_u64(1, 60));
            // Mirror the node's own op recording: session events only.
            let before: Vec<u64> = g.client_ids().iter().map(|c| c.0).collect();
            random_event(&mut g, &mut rng, now, &mut population, &mut next_id);
            let after: Vec<u64> = g.client_ids().iter().map(|c| c.0).collect();
            for id in after.iter().filter(|id| !before.contains(id)) {
                log.record(ReplicaOp::Join {
                    client: ClientId(*id),
                    pos: position_of(&g, ClientId(*id)),
                    state_bytes: 0,
                });
            }
            for id in before.iter().filter(|id| !after.contains(id)) {
                log.record(ReplicaOp::Leave {
                    client: ClientId(*id),
                });
            }
            for id in after.iter().filter(|id| before.contains(id)) {
                log.record(ReplicaOp::Move {
                    client: ClientId(*id),
                    pos: position_of(&g, ClientId(*id)),
                });
            }
            // Ship on the log's own schedule, acks looped straight back.
            if log.due(now) {
                let batch = if log.needs_full() {
                    Some(log.ship_full(now, g.snapshot()))
                } else {
                    log.ship_ops(now)
                };
                if let Some(batch) = batch {
                    let ack = receiver.apply(batch);
                    log.ack(ack.seq, ack.resync);
                }
            }
        }
        // Drain the stream, then the standby must hold the primary's
        // session state exactly.
        now += SimDuration::from_secs(10);
        let batch = if log.needs_full() {
            Some(log.ship_full(now, g.snapshot()))
        } else {
            log.ship_ops(now)
        };
        if let Some(batch) = batch {
            let ack = receiver.apply(batch);
            log.ack(ack.seq, ack.resync);
        }
        let mirrored = receiver.snapshot().expect("warm after a full snapshot");
        let truth = g.snapshot();
        // The mirror carries every session at its current position (the
        // manual op feed above does not know join-time state sizes, so
        // only identity and position are compared; the real primary
        // records full Join ops).
        let mirror_sessions: Vec<(ClientId, Point)> =
            mirrored.clients.iter().map(|(c, s)| (*c, s.pos)).collect();
        let truth_sessions: Vec<(ClientId, Point)> =
            truth.clients.iter().map(|(c, s)| (*c, s.pos)).collect();
        assert_eq!(
            mirror_sessions, truth_sessions,
            "case {case}: standby session state diverged"
        );
    }
}

fn position_of(g: &GameServerNode, id: ClientId) -> Point {
    let ids = g.client_ids();
    let positions = g.client_positions();
    ids.iter()
        .position(|c| *c == id)
        .map(|i| positions[i])
        .expect("client present")
}
