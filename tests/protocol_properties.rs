//! Property-based tests of the middleware protocol: routing correctness
//! (Equation 1 end to end) and adaptation-protocol safety over random
//! topologies and packet streams.
//!
//! Randomization is driven by the workspace's own seeded [`SimRng`]
//! (fixed seeds, so failures are reproducible) instead of an external
//! property-testing framework, keeping the build offline-friendly.

use matrix_middleware::core::{
    Action, ClientId, CoordMsg, CoordReply, GamePacket, GameToMatrix, LoadReport, MatrixConfig,
    MatrixServer, PeerMsg, PoolMsg, PoolPurpose, PoolReply, SpatialTag,
};
use matrix_middleware::geometry::{
    build_overlap, Metric, PartitionMap, Point, Rect, ServerId, SplitStrategy,
};
use matrix_middleware::sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

const CASES: usize = 48;

/// Builds a live fleet: every server holds a partition and the matching
/// coordinator tables.
fn fleet(
    script: &[(u8, u8)],
    radius: f64,
    metric: Metric,
) -> (PartitionMap, BTreeMap<ServerId, MatrixServer>) {
    let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let mut map = PartitionMap::new(world, ServerId(1));
    let mut next = 2u32;
    for (victim, sel) in script {
        let servers = map.servers();
        let target = servers[*victim as usize % servers.len()];
        let strategy = match sel % 2 {
            0 => SplitStrategy::SplitToLeft,
            _ => SplitStrategy::LongestAxis,
        };
        if map.split(target, ServerId(next), &strategy, &[]).is_ok() {
            next += 1;
        }
    }
    let overlap = build_overlap(&map, radius, metric);
    let mut servers = BTreeMap::new();
    for (id, rect) in map.iter() {
        let cfg = MatrixConfig {
            metric,
            ..MatrixConfig::default()
        };
        let mut server = MatrixServer::with_range(id, cfg, rect, radius);
        server.on_coord(
            SimTime::ZERO,
            CoordReply::Tables {
                epoch: 1,
                table: overlap.table_for(id).unwrap().clone(),
                extra_tables: vec![],
                map: map.clone(),
            },
        );
        servers.insert(id, server);
    }
    (map, servers)
}

fn split_script(rng: &mut SimRng, max_len: u64, strategies: u64) -> Vec<(u8, u8)> {
    let n = rng.uniform_u64(0, max_len) as usize;
    (0..n)
        .map(|_| {
            (
                rng.uniform_u64(0, 16) as u8,
                rng.uniform_u64(0, strategies) as u8,
            )
        })
        .collect()
}

/// End-to-end routing delivers a packet to every server whose
/// partition is strictly within the radius of its origin — Matrix's
/// localized-consistency guarantee — and each recipient accepts it
/// as relevant.
#[test]
fn updates_reach_every_required_server() {
    let mut rng = SimRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let metric = Metric::Euclidean;
        let script = split_script(&mut rng, 10, 2);
        let radius = rng.uniform(20.0, 250.0);
        let (map, mut servers) = fleet(&script, radius, metric);
        let origin = Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0));
        let owner = map.owner_of(origin).expect("interior");
        let pkt = GamePacket::synthetic(ClientId(1), SpatialTag::at(origin), 64, 0);

        let sender = servers.get_mut(&owner).unwrap();
        let actions = sender.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt));
        let mut delivered_to = Vec::new();
        for action in actions {
            if let Action::ToPeer(peer, PeerMsg::Update(update)) = action {
                // The receiver verifies the packet's range (§3.2.3). The
                // AABB tables over-approximate under Euclidean, so a peer
                // may legitimately drop an update — but only if its
                // partition really is beyond the radius.
                let distance = map.range_of(peer).unwrap().distance_to(origin, metric);
                let recv_actions = servers.get_mut(&peer).unwrap().on_peer(
                    SimTime::ZERO,
                    owner,
                    PeerMsg::Update(update),
                );
                if distance <= radius {
                    assert!(
                        !recv_actions.is_empty(),
                        "case {case}: {peer} (distance {distance} <= {radius}) rejected a relevant update"
                    );
                    delivered_to.push(peer);
                } else {
                    assert!(
                        recv_actions.is_empty(),
                        "case {case}: {peer} (distance {distance} > {radius}) accepted an irrelevant update"
                    );
                }
            }
        }
        // Completeness: every strictly-in-range peer got the update.
        for (peer, rect) in map.iter() {
            if peer != owner && rect.distance_to(origin, metric) < radius {
                assert!(
                    delivered_to.contains(&peer),
                    "case {case}: {peer} (distance {}) missed an update at {origin}",
                    rect.distance_to(origin, metric)
                );
            }
        }
    }
}

/// A split hands off exactly the partition geometry: the pieces tile
/// the parent's previous range and the AdoptPartition message matches
/// what the coordinator is told.
#[test]
fn split_reports_consistent_geometry() {
    let mut rng = SimRng::seed_from_u64(0x517);
    for case in 0..CASES {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let cfg = MatrixConfig {
            overload_clients: 10,
            overload_streak: 1,
            ..MatrixConfig::default()
        };
        let mut server = MatrixServer::with_range(ServerId(1), cfg, world, 50.0);
        let n = rng.uniform_u64(0, 50) as usize;
        let positions: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)))
            .collect();
        let report = LoadReport {
            clients: 100,
            queue_backlog: 0.0,
            positions,
            telemetry: None,
        };
        let t = SimTime::from_secs(1);
        let actions = server.on_game(t, GameToMatrix::Load(report));
        assert!(
            matches!(actions.as_slice(), [Action::ToPool(_)]),
            "case {case}"
        );
        let actions = server.on_pool(
            t,
            PoolReply::Grant {
                server: ServerId(2),
                purpose: PoolPurpose::Split,
            },
        );

        let mut adopted: Option<Rect> = None;
        let mut reported: Option<(Rect, Rect)> = None;
        for action in &actions {
            match action {
                Action::ToPeer(_, PeerMsg::AdoptPartition { range, .. }) => adopted = Some(*range),
                Action::ToCoord(CoordMsg::SplitOccurred {
                    parent_range,
                    child_range,
                    ..
                }) => reported = Some((*parent_range, *child_range)),
                _ => {}
            }
        }
        let adopted = adopted.expect("child must be given a range");
        let (parent_range, child_range) = reported.expect("MC must be told");
        assert_eq!(adopted, child_range, "case {case}");
        assert_eq!(server.range(), Some(parent_range), "case {case}");
        assert_eq!(
            parent_range.merges_with(&child_range),
            Some(world),
            "case {case}"
        );
    }
}

/// Random interleavings of overload/underload reports never produce
/// dangling protocol state: at most one pool request is outstanding
/// and reclaim targets are always current children.
#[test]
fn adaptation_state_stays_consistent() {
    let mut rng = SimRng::seed_from_u64(0xADA);
    for case in 0..CASES {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let cfg = MatrixConfig {
            cooldown: SimDuration::from_millis(100),
            ..MatrixConfig::default()
        };
        let mut server = MatrixServer::with_range(ServerId(1), cfg, world, 50.0);
        let mut next_child = 10u32;
        let mut t = SimTime::ZERO;
        let mut outstanding_pool = 0i32;
        let loads: Vec<u32> = (0..rng.uniform_u64(1, 40))
            .map(|_| rng.uniform_u64(0, 500) as u32)
            .collect();
        for clients in loads {
            t += SimDuration::from_millis(500);
            let actions = server.on_game(
                t,
                GameToMatrix::Load(LoadReport {
                    clients,
                    queue_backlog: 0.0,
                    positions: vec![],
                    telemetry: None,
                }),
            );
            for action in actions {
                match action {
                    Action::ToPool(PoolMsg::Acquire { .. }) => {
                        outstanding_pool += 1;
                        assert!(outstanding_pool <= 1, "case {case}: double pool request");
                        // Grant immediately.
                        let grant_actions = server.on_pool(
                            t,
                            PoolReply::Grant {
                                server: ServerId(next_child),
                                purpose: PoolPurpose::Split,
                            },
                        );
                        next_child += 1;
                        outstanding_pool -= 1;
                        // The split must name a child we just granted.
                        let split_or_release = grant_actions.iter().any(|a| {
                            matches!(
                                a,
                                Action::ToPeer(_, PeerMsg::AdoptPartition { .. })
                                    | Action::ToPool(PoolMsg::Release { .. })
                            )
                        });
                        assert!(split_or_release, "case {case}: grant must split or release");
                    }
                    Action::ToPeer(child, PeerMsg::ReclaimRequest { .. }) => {
                        assert!(
                            server.children().contains(&child),
                            "case {case}: reclaim request to a non-child {child}"
                        );
                        // Deny to keep the topology simple.
                        server.on_peer(t, child, PeerMsg::ReclaimDeny { child });
                    }
                    _ => {}
                }
            }
        }
    }
}
